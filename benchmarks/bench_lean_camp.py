"""Supplementary experiment: CoTS on the 'lean camp' machine (paper §7).

The paper defers the UltraSPARC-T2 evaluation to future work; the
simulator runs it.  The measured shape matches §3.1's TLP-vs-ILP
trade-off exactly:

* the lean machine (64 x 1.2 GHz) keeps scaling with software threads
  long after the fat camp (4 x 2.4 GHz) saturates — its growth from 4 to
  256 threads is much larger;
* on *crossing-heavy* (lower-skew) streams the lean camp wins outright
  at high thread counts: the per-element boundary work parallelizes over
  16x the contexts;
* on *highly skewed* streams the hot element's serialized delegation
  chain bounds throughput, and a serial chain runs at clock speed — the
  fat camp's 2x clock wins.
"""

from __future__ import annotations


def test_lean_camp_tlp_vs_ilp_tradeoff(benchmark, scale, record):
    from repro.experiments import lean_camp

    result = benchmark.pedantic(
        lambda: lean_camp(scale), rounds=1, iterations=1
    )
    record(result)
    low = min(scale.cots_threads)
    high = max(scale.cots_threads)
    labels = sorted(set(result.column_values("machine")))
    fat = [l for l in labels if "fat" in l][0]
    lean = [l for l in labels if "lean" in l][0]

    def seconds(machine, alpha, threads):
        return [
            row["seconds"]
            for row in result.filtered(alpha=alpha, threads=threads)
            if row["machine"] == machine
        ][0]

    low_skew = min(scale.alphas_naive)
    high_skew = max(scale.alphas_naive)
    fat_growth = seconds(fat, high_skew, low) / seconds(fat, high_skew, high)
    lean_growth = seconds(lean, high_skew, low) / seconds(lean, high_skew, high)
    print(f"\n{low}->{high} thread speedup at alpha={high_skew}: "
          f"fat={fat_growth:.1f}x lean={lean_growth:.1f}x")
    if not scale.strict:
        return  # tiny streams don't reach either machine's saturation
    # 64 contexts keep absorbing software threads after 4 cores saturate
    assert lean_growth > fat_growth
    # crossing-heavy work: the lean camp's context count wins
    assert seconds(lean, low_skew, high) < seconds(fat, low_skew, high)
    # serialized hot-chain work: the fat camp's clock wins
    assert seconds(fat, high_skew, high) < seconds(lean, high_skew, high)
