"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and prints
(and archives under ``benchmarks/results/``) the same rows/series the
paper reports.  Select the workload size with ``REPRO_SCALE``:

    REPRO_SCALE=tiny    pytest benchmarks/ --benchmark-only   # smoke
    REPRO_SCALE=default pytest benchmarks/ --benchmark-only   # normal
    REPRO_SCALE=large   pytest benchmarks/ --benchmark-only   # patient
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import ExperimentScale, format_table

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale selected via the REPRO_SCALE env var."""
    name = os.environ.get("REPRO_SCALE", "default")
    presets = {
        "tiny": ExperimentScale.tiny,
        "default": ExperimentScale.default,
        "large": ExperimentScale.large,
    }
    if name not in presets:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(presets)}, got {name!r}"
        )
    return presets[name]()


@pytest.fixture(scope="session")
def record():
    """Print a result table and archive it under benchmarks/results/."""

    def _record(result) -> None:
        text = format_table(result)
        print()
        print(text)
        _RESULTS_DIR.mkdir(exist_ok=True)
        path = _RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(text + "\n")

    return _record
