"""Figure 4: time breakdown of Independent Structures.

Paper shape: counting scales with threads while the periodic merges eat
a growing share of total time as threads are added.
"""

from __future__ import annotations


def test_fig4_merge_share_grows(benchmark, scale, record):
    from repro.experiments import fig4

    result = benchmark.pedantic(lambda: fig4(scale), rounds=1, iterations=1)
    record(result)
    for alpha in scale.alphas_naive:
        rows = sorted(result.filtered(alpha=alpha), key=lambda r: r["threads"])
        merge_shares = [row["merge_pct"] for row in rows]
        # merge share at the largest thread count well above single-thread
        assert merge_shares[-1] > merge_shares[0]
        # percentages sane
        for row in rows:
            total = row["counting_pct"] + row["merge_pct"] + row["rest_pct"]
            assert 99.0 <= total <= 101.0
