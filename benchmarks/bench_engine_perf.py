"""Host-side performance of the discrete-event engine itself.

Unlike the figure benchmarks (which report *simulated* time), these
measure the wall-clock cost of simulating — the events/second the engine
sustains on the host.  They guard against accidental slowdowns of the
hot dispatch loop, which every experiment in the repository multiplies.
"""

from __future__ import annotations

from repro.simcore import (
    AtomicCell,
    Compute,
    CostModel,
    Engine,
    MachineSpec,
    Mutex,
)


def _compute_run(threads: int, effects: int):
    engine = Engine(machine=MachineSpec(cores=4), costs=CostModel())

    def program():
        for _ in range(effects):
            yield Compute(20)

    for _ in range(threads):
        engine.spawn(program())
    return engine.run()


def test_engine_compute_dispatch_rate(benchmark):
    result = benchmark.pedantic(
        lambda: _compute_run(threads=8, effects=2_000),
        rounds=3,
        iterations=1,
    )
    assert result.events == 16_000


def test_engine_atomic_contention_rate(benchmark):
    def run():
        engine = Engine(machine=MachineSpec(cores=4), costs=CostModel())
        cell = AtomicCell(0)

        def program():
            for _ in range(2_000):
                yield cell.add(1)

        for _ in range(8):
            engine.spawn(program())
        return engine.run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.events == 16_000


def test_engine_mutex_blocking_rate(benchmark):
    def run():
        engine = Engine(machine=MachineSpec(cores=4), costs=CostModel())
        mutex = Mutex()

        def program():
            for _ in range(500):
                yield mutex.acquire()
                yield Compute(20)
                yield mutex.release()

        for _ in range(8):
            engine.spawn(program())
        return engine.run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.events >= 12_000
