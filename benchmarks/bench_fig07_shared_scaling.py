"""Figure 7: Shared Structure over input size × threads.

Paper shapes: time increases almost linearly with input length, and
adding threads never improves it at any size.
"""

from __future__ import annotations


def test_fig7_linear_in_size_no_thread_scaling(benchmark, scale, record):
    from repro.experiments import fig7

    result = benchmark.pedantic(lambda: fig7(scale), rounds=1, iterations=1)
    record(result)
    for alpha in scale.alphas_naive:
        # linear-ish in input size at 4 threads: doubling size roughly
        # doubles the time (within a 40% tolerance band)
        rows = sorted(
            result.filtered(alpha=alpha, threads=4),
            key=lambda r: r["multiplier"],
        )
        if len(rows) >= 2:
            first, last = rows[0], rows[-1]
            ratio = last["seconds"] / first["seconds"]
            size_ratio = last["multiplier"] / first["multiplier"]
            assert 0.6 * size_ratio <= ratio <= 1.6 * size_ratio
        # threads never help: the 1-thread run is the fastest at max size
        largest = max(scale.size_multipliers)
        per_thread = {
            row["threads"]: row["seconds"]
            for row in result.filtered(alpha=alpha, multiplier=largest)
        }
        assert per_thread[min(per_thread)] == min(per_thread.values())
