"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's evaluation — these probe the robustness of the
reproduced shapes:

* **lock kind** — §4.3 notes spin locks performed *worse* than mutexes
  for the shared design, because waiters also burn CPU;
* **hybrid** — §4.4 argues the local+global hybrid degenerates toward a
  parent design at either end of the skew spectrum;
* **merge strategy** — §4.1/4.3: hierarchical merge does not beat serial
  merge in practice because of the per-level barriers;
* **cost-model sensitivity** — scaling every cost constant together must
  not change any ordering (the shapes come from structure, not from the
  calibration);
* **lean camp** — a 64-context UltraSPARC-T2-like machine (the paper's
  future work) runs the CoTS framework without protocol issues.
"""

from __future__ import annotations

from repro.cots.framework import CoTSRunConfig, run_cots
from repro.parallel import (
    SchemeConfig,
    run_hybrid,
    run_independent,
    run_sequential,
    run_shared,
)
from repro.simcore import CostModel, MachineSpec
from repro.workloads import zipf_stream


def test_ablation_spin_locks_burn_cpu(benchmark, scale, record):
    """Spin waiters contend for the CPU (§4.3's complaint about spin).

    The paper observed spin locks performing *worse* overall on its
    saturated 4-core box; in the simulator's scaled runs the short
    critical sections let spin win on wall time (the classic
    short-section trade-off), but the paper's underlying mechanism is
    still visible and asserted here: spinning burns strictly more
    aggregate CPU than blocking for the same work.  See EXPERIMENTS.md
    for the recorded deviation.
    """
    stream = zipf_stream(
        scale.profile_stream, scale.alphabet, 2.5, seed=scale.seed
    )

    def run():
        config = SchemeConfig(threads=8, capacity=scale.capacity)
        mutex = run_shared(stream, config, lock_kind="mutex")
        config = SchemeConfig(threads=8, capacity=scale.capacity)
        spin = run_shared(stream, config, lock_kind="spin")
        return mutex, spin

    mutex, spin = benchmark.pedantic(run, rounds=1, iterations=1)

    def busy(result):
        return sum(t.busy_cycles for t in result.execution.threads.values())

    retries = sum(
        t.spin_retries for t in spin.execution.threads.values()
    )
    print(
        f"\nshared mutex={mutex.seconds:.6f}s busy={busy(mutex)}cy  "
        f"spin={spin.seconds:.6f}s busy={busy(spin)}cy retries={retries}"
    )
    assert retries > 0
    assert busy(spin) > busy(mutex)


def test_ablation_hybrid_between_parents(benchmark, scale, record):
    """The hybrid sits near a parent at both skew extremes (§4.4)."""
    results = {}

    def run():
        for alpha in (1.2, 3.0):
            stream = zipf_stream(
                scale.profile_stream, scale.alphabet, alpha, seed=scale.seed
            )
            hybrid = run_hybrid(
                stream, SchemeConfig(threads=4, capacity=scale.capacity)
            )
            shared = run_shared(
                stream, SchemeConfig(threads=4, capacity=scale.capacity)
            )
            results[alpha] = (hybrid.seconds, shared.seconds)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    for alpha, (hybrid_s, shared_s) in results.items():
        print(f"\nalpha={alpha}: hybrid={hybrid_s:.6f}s shared={shared_s:.6f}s")
        # the local cache can only help; it must never be dramatically
        # worse than the lock-based parent
        assert hybrid_s < shared_s * 1.5


def test_ablation_hierarchical_merge_no_better(benchmark, scale, record):
    """Hierarchical merge does not beat serial merge (barrier overhead)."""
    stream = zipf_stream(
        scale.profile_stream, scale.alphabet, 2.5, seed=scale.seed
    )
    interval = scale.query_interval(len(stream))

    def run():
        serial = run_independent(
            stream,
            SchemeConfig(threads=8, capacity=scale.capacity),
            merge_every=interval,
            strategy="serial",
        )
        hierarchical = run_independent(
            stream,
            SchemeConfig(threads=8, capacity=scale.capacity),
            merge_every=interval,
            strategy="hierarchical",
        )
        return serial, hierarchical

    serial, hierarchical = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nserial={serial.seconds:.6f}s hierarchical="
        f"{hierarchical.seconds:.6f}s"
    )
    assert hierarchical.seconds > serial.seconds * 0.6
    # both merges answer identically
    assert [e.element for e in serial.counter.top_k(5)] == [
        e.element for e in hierarchical.counter.top_k(5)
    ]


def test_ablation_cost_scaling_preserves_ordering(benchmark, scale, record):
    """Scaling every cost by 2x must not flip who wins at high skew."""
    stream = zipf_stream(
        scale.fig11_stream, scale.alphabet, 3.0, seed=scale.seed
    )

    def compare(costs: CostModel):
        seq = run_sequential(
            stream, SchemeConfig(capacity=scale.capacity, costs=costs)
        )
        cots = run_cots(
            stream,
            CoTSRunConfig(
                threads=max(scale.cots_threads),
                capacity=scale.capacity,
                costs=costs,
            ),
        )
        return seq.seconds / cots.seconds

    def run():
        return compare(CostModel()), compare(CostModel().scaled(2.0))

    base_win, scaled_win = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncots-vs-seq win: base={base_win:.2f} costs-x2={scaled_win:.2f}")
    if scale.strict:
        assert base_win > 1.0
        assert scaled_win > 1.0
    # the verdict must be stable under uniform cost scaling either way
    assert 0.5 <= scaled_win / base_win <= 2.0


def test_ablation_open_addressing_suffers_under_churn(benchmark, scale, record):
    """§5.2.1's argument, measured: with constant eviction churn, the
    open-addressing search structure accumulates tombstones and pays
    stop-the-world rehashes that the chained table never needs."""
    from repro.cots.open_table import OpenAddressingTable
    from repro.workloads import churn_stream

    stream = churn_stream(scale.profile_stream)

    def run():
        chained = run_cots(
            stream, CoTSRunConfig(threads=8, capacity=16)
        )
        open_run = run_cots(
            stream,
            CoTSRunConfig(threads=8, capacity=16, table_size=64),
            table_cls=OpenAddressingTable,
        )
        return chained, open_run

    chained, open_run = benchmark.pedantic(run, rounds=1, iterations=1)
    table = open_run.extras["framework"].table
    print(
        f"\nchained={chained.seconds:.6f}s  open={open_run.seconds:.6f}s  "
        f"rehashes={table.rehashes} ({table.rehash_cycles} cycles)"
    )
    # the chained table needs no rehash, ever; the open table pays
    # stop-the-world rebuilds whose cost shows directly in its telemetry
    assert table.rehashes > 0
    assert table.rehash_cycles > 0
    # wall-time penalty is visible whenever the search structure is on the
    # critical path; when the minimum-bucket overwrite chain dominates
    # instead, the two come out close — the open design must never win
    # meaningfully
    assert open_run.seconds > chained.seconds * 0.95


def test_ablation_lean_camp_machine(benchmark, scale, record):
    """CoTS on a 64-context 'lean camp' machine stays correct and fast."""
    stream = zipf_stream(
        scale.fig11_stream, scale.alphabet, 2.5, seed=scale.seed
    )

    def run():
        return run_cots(
            stream,
            CoTSRunConfig(
                threads=128,
                capacity=scale.capacity,
                machine=MachineSpec.lean_camp(),
            ),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nlean-camp 128 threads: {result.seconds:.6f}s "
        f"({result.throughput / 1e6:.1f}M elem/s)"
    )
    assert result.counter.summary.total_count == len(stream)
