"""Table 2: best-case absolute times, Sequential vs Shared vs CoTS.

Paper shapes: Shared is an order of magnitude slower than Sequential at
every skew; CoTS trails Sequential at alpha = 2.0 but beats it at 2.5
and 3.0 (the paper reports 2-4x); peak CoTS throughput is tens of
millions of elements per second.
"""

from __future__ import annotations


def test_table2_ordering(benchmark, scale, record):
    from repro.experiments import table2

    result = benchmark.pedantic(lambda: table2(scale), rounds=1, iterations=1)
    record(result)
    by_alpha = {row["alpha"]: row for row in result.rows}
    for alpha, row in by_alpha.items():
        # shared is far worse than sequential everywhere
        assert row["shared_vs_seq"] > 4.0
    alphas = sorted(by_alpha)
    # CoTS loses (or roughly ties) at the lowest skew...
    assert by_alpha[alphas[0]]["cots_speedup_vs_seq"] < 1.3
    # ...and clearly wins at the highest skew (needs full-scale streams
    # for the delegation chains to pay off)
    if scale.strict:
        assert by_alpha[alphas[-1]]["cots_speedup_vs_seq"] > 1.5
    # win factor ordered by skew
    wins = [by_alpha[a]["cots_speedup_vs_seq"] for a in alphas]
    assert wins[-1] >= wins[0]
    # peak throughput in the tens of millions of elements/second
    assert max(row["cots_peak_meps"] for row in result.rows) > 10.0
