"""Figure 11: CoTS scalability with increasing threads (baseline: 4).

Paper shapes: throughput keeps growing with thread count for skewed
streams (alpha >= 2.0); alpha = 1.5 stops scaling around 8-16 threads
but does not collapse, because the cooperation model keeps contention
low.
"""

from __future__ import annotations


def test_fig11_cots_scales_with_threads(benchmark, scale, record):
    from repro.experiments import fig11

    result = benchmark.pedantic(lambda: fig11(scale), rounds=1, iterations=1)
    record(result)
    peak_by_alpha = {}
    for alpha in scale.alphas_cots:
        rows = sorted(result.filtered(alpha=alpha), key=lambda r: r["threads"])
        speedups = [row["speedup"] for row in rows]
        peak_by_alpha[alpha] = max(speedups)
        # growth beyond the 4-thread baseline for every alpha
        assert max(speedups) > 1.5
        if alpha >= 2.0:
            # skewed streams keep improving towards the largest counts
            assert speedups[-1] >= 0.7 * max(speedups)
    # skew pays: the most skewed stream out-scales the least skewed one
    alphas = sorted(peak_by_alpha)
    assert peak_by_alpha[alphas[-1]] > peak_by_alpha[alphas[0]]
