"""Ablations of the CoTS mechanism knobs.

These isolate the causal levers behind Figure 11 and Table 2:

* **sync latency** — the per-element off-core overhead is what
  oversubscription hides; with it removed, thread counts beyond the
  core count stop helping (the growth mechanism disappears);
* **cursor batch** — claiming one element per atomic fetch-add turns the
  shared stream cursor into a serialized hot line; batching amortizes it;
* **counter capacity** — a tighter budget means more Overwrite traffic
  through the minimum bucket, the structure's documented hotspot.
"""

from __future__ import annotations

from repro.cots.framework import CoTSRunConfig, run_cots
from repro.simcore import CostModel
from repro.workloads import zipf_stream


def test_ablation_latency_drives_oversubscription_gains(benchmark, scale, record):
    stream = zipf_stream(
        scale.fig11_stream, scale.alphabet, 2.5, seed=scale.seed
    )

    def run(latency: int):
        costs = CostModel().replace(sync_latency=latency)
        few = run_cots(
            stream, CoTSRunConfig(threads=4, capacity=scale.capacity,
                                  costs=costs)
        )
        many = run_cots(
            stream, CoTSRunConfig(threads=128, capacity=scale.capacity,
                                  costs=costs)
        )
        return few.seconds / many.seconds

    def both():
        return run(CostModel().sync_latency), run(0)

    with_latency, without_latency = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print(f"\n128-vs-4-thread speedup: with latency {with_latency:.2f}x, "
          f"without {without_latency:.2f}x")
    # hiding latency is the growth mechanism: removing it must collapse
    # the oversubscription benefit
    assert with_latency > 2.0
    assert without_latency < with_latency / 2


def test_ablation_cursor_batching(benchmark, scale, record):
    stream = zipf_stream(
        scale.fig11_stream, scale.alphabet, 2.5, seed=scale.seed
    )

    def run(batch: int):
        return run_cots(
            stream,
            CoTSRunConfig(threads=64, capacity=scale.capacity, batch=batch),
        )

    def all_batches():
        return {batch: run(batch) for batch in (1, 32, 256)}

    results = benchmark.pedantic(all_batches, rounds=1, iterations=1)
    times = {batch: r.seconds for batch, r in results.items()}
    events = {batch: r.execution.events for batch, r in results.items()}
    print("\nbatch -> simulated seconds:", times)
    print("batch -> engine events:", events)
    # per-element claiming costs one serialized cursor RMW per element:
    # strictly more engine events than batched claiming, at identical
    # results.  (Over-batching is its own problem — fewer active threads
    # mean fewer delegations and more full-cost crossings — so only the
    # 1-vs-32 comparison is asserted.)
    assert events[1] > events[32]
    top = {b: [e.element for e in r.counter.top_k(3)] for b, r in results.items()}
    assert top[1] == top[32] == top[256]


def test_ablation_capacity_pressure(benchmark, scale, record):
    """A tight counter budget forces min-bucket overwrite traffic."""
    stream = zipf_stream(
        scale.fig11_stream, scale.alphabet, 1.5, seed=scale.seed
    )

    def run(capacity: int):
        result = run_cots(
            stream, CoTSRunConfig(threads=32, capacity=capacity)
        )
        return result

    def both():
        return run(16), run(scale.capacity * 4)

    tight, roomy = benchmark.pedantic(both, rounds=1, iterations=1)
    tight_ovw = tight.extras["stats"].get("overwrites", 0)
    roomy_ovw = roomy.extras["stats"].get("overwrites", 0)
    print(f"\ncapacity 16: {tight.seconds:.6f}s ({tight_ovw} overwrites); "
          f"capacity {scale.capacity * 4}: {roomy.seconds:.6f}s "
          f"({roomy_ovw} overwrites)")
    assert tight_ovw > roomy_ovw
    # both runs stay correct regardless of pressure
    assert tight.counter.summary.total_count == len(stream)
    assert roomy.counter.summary.total_count == len(stream)
