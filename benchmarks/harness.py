#!/usr/bin/env python
"""Standalone entry point for the pinned benchmark suite.

Equivalent to ``PYTHONPATH=src python -m repro bench``; kept here so the
benchmark directory is self-contained::

    python benchmarks/harness.py --scale tiny --output BENCH_core.json

The report schema is documented in docs/benchmarks.md.
"""

from __future__ import annotations

import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))


def main(argv=None) -> int:
    from repro.cli import main as cli_main

    argv = list(sys.argv[1:] if argv is None else argv)
    return cli_main(["bench", *argv])


if __name__ == "__main__":
    raise SystemExit(main())
