"""Figure 6: Independent Structures over input size × threads.

Paper shapes: execution time *increases* with the number of threads
(merges every 1% of the stream dominate), and the penalty is more
noticeable for larger inputs.
"""

from __future__ import annotations


def test_fig6_threads_hurt_more_for_larger_inputs(benchmark, scale, record):
    from repro.experiments import fig6

    result = benchmark.pedantic(lambda: fig6(scale), rounds=1, iterations=1)
    record(result)
    for alpha in scale.alphas_naive:
        largest = max(scale.size_multipliers)
        rows = sorted(
            result.filtered(alpha=alpha, multiplier=largest),
            key=lambda r: r["threads"],
        )
        times = [row["seconds"] for row in rows]
        # many threads are slower than few threads at the largest input
        assert times[-1] > times[0]
        if not scale.strict:
            continue
        # time grows with input size at the largest thread count
        top_threads = max(scale.naive_threads)
        sizes = sorted(
            result.filtered(alpha=alpha, threads=top_threads),
            key=lambda r: r["multiplier"],
        )
        size_times = [row["seconds"] for row in sizes]
        assert size_times == sorted(size_times)
