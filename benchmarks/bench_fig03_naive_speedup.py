"""Figure 3: speedup of the naive parallelization schemes.

Paper shapes: (a) Independent Structures peaks below ~2x and declines as
threads grow (merges dominate); (b) the mutex-synchronized Shared
Structure *degrades* from 1 to 4 threads and stays flat beyond the core
count.  Both are asserted here, on top of regenerating the series.
"""

from __future__ import annotations


def test_fig3a_independent_speedup(benchmark, scale, record):
    from repro.experiments import fig3a

    result = benchmark.pedantic(
        lambda: fig3a(scale), rounds=1, iterations=1
    )
    record(result)
    for alpha in scale.alphas_naive:
        rows = result.filtered(alpha=alpha)
        speedups = [row["speedup"] for row in rows]
        # no useful scaling: the best speedup stays far below linear
        assert max(speedups) < max(scale.naive_threads) / 2
        # adding many threads hurts: the largest config is worse than the best
        assert speedups[-1] <= max(speedups)


def test_fig3b_shared_speedup(benchmark, scale, record):
    from repro.experiments import fig3b

    result = benchmark.pedantic(
        lambda: fig3b(scale), rounds=1, iterations=1
    )
    record(result)
    cores = 4
    for alpha in scale.alphas_naive:
        rows = result.filtered(alpha=alpha)
        speedups = {row["threads"]: row["speedup"] for row in rows}
        # degrades from 1 to 4 threads
        if cores in speedups:
            assert speedups[cores] < 1.0
        # roughly steady beyond the core count (within 3x of each other)
        beyond = [s for t, s in speedups.items() if t >= cores]
        if len(beyond) >= 2:
            assert max(beyond) <= 3 * min(beyond)
