"""Figure 5: time breakdown of the Shared Structure.

Paper shapes: the "Hash Opns" share (element-level blocking) grows with
thread count, and grows *faster* for more skewed streams, because more
threads pile up on the same hot element.
"""

from __future__ import annotations


def test_fig5_hash_share_grows_with_threads_and_skew(benchmark, scale, record):
    from repro.experiments import fig5

    result = benchmark.pedantic(lambda: fig5(scale), rounds=1, iterations=1)
    record(result)
    growths = {}
    for alpha in scale.alphas_naive:
        rows = sorted(result.filtered(alpha=alpha), key=lambda r: r["threads"])
        hash_shares = [row["hash_pct"] for row in rows]
        # hash share grows from 1 thread to the largest thread count
        assert hash_shares[-1] > hash_shares[0]
        growths[alpha] = hash_shares[-1]
        for row in rows:
            total = (
                row["hash_pct"]
                + row["structure_pct"]
                + row["minmax_pct"]
                + row["bucket_pct"]
                + row["rest_pct"]
            )
            assert 99.0 <= total <= 101.0
    # more skew => larger hash (element-level) share at max threads
    alphas = sorted(growths)
    assert growths[alphas[-1]] >= growths[alphas[0]] * 0.8
