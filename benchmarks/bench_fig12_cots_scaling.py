"""Figure 12: CoTS execution time over input size × threads.

Paper shapes: execution time grows linearly with stream length, and the
relative ordering of thread counts is preserved across sizes ("the
scalability remains the same irrespective of the size of the input").
"""

from __future__ import annotations


def test_fig12_linear_in_size_scaling_preserved(benchmark, scale, record):
    from repro.experiments import fig12

    result = benchmark.pedantic(lambda: fig12(scale), rounds=1, iterations=1)
    record(result)
    top_threads = max(scale.cots_threads)
    low_threads = min(scale.cots_threads)
    for alpha in scale.alphas_naive:
        rows = sorted(
            result.filtered(alpha=alpha, threads=top_threads),
            key=lambda r: r["multiplier"],
        )
        times = [row["seconds"] for row in rows]
        # monotone growth in input size
        assert times == sorted(times)
        # roughly linear: time per element within a band across the larger
        # sizes (the smallest sizes give each of the many threads only a
        # handful of elements, so startup dominates there)
        floor = max(scale.size_multipliers) // 4
        per_element = [
            row["seconds"] / row["elements"]
            for row in rows
            if row["multiplier"] >= floor
        ]
        assert max(per_element) <= 2.5 * min(per_element)
        # more threads stay faster than few threads at every size
        for multiplier in scale.size_multipliers:
            many = result.filtered(
                alpha=alpha, threads=top_threads, multiplier=multiplier
            )[0]["seconds"]
            few = result.filtered(
                alpha=alpha, threads=low_threads, multiplier=multiplier
            )[0]["seconds"]
            assert many < few
