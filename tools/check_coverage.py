#!/usr/bin/env python3
"""Line-coverage floor enforcement with nothing but the stdlib.

The CI image deliberately has no ``pytest-cov``/``coverage`` wheel, so
this tool measures line coverage with ``sys.settrace``:

1. a trace function records every executed line of files under the
   ``--target`` directories (installed on all threads, before the test
   session imports the package, so import-time lines count too);
2. ``pytest`` runs in-process on whatever arguments follow ``--``;
3. the executable-line universe per file is derived by compiling the
   source and walking the code-object tree's ``co_lines()`` tables —
   the same line table the tracer reports against;
4. the aggregate percentage is compared against ``--floor``.

Usage::

    python tools/check_coverage.py \
        --target src/repro/cots --target src/repro/simcore \
        --floor 85 -- -x -q tests/cots tests/simcore

Exit code: pytest's own code if the run failed, else 1 when coverage is
below the floor, else 0.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import types
from typing import Dict, List, Set


def executable_lines(path: str) -> Set[int]:
    """Line numbers that carry executable code in ``path``.

    Compiling the module and walking every nested code object gives the
    exact set of lines the interpreter can ever attribute a ``line``
    trace event to (docstrings and constants included, since their
    store executes at import).
    """
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    lines: Set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _start, _end, line in code.co_lines():
            if line is not None:
                lines.add(line)
        for const in code.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    return lines


def python_files(root: str) -> List[str]:
    found = []
    for directory, _subdirs, files in os.walk(root):
        for name in sorted(files):
            if name.endswith(".py"):
                found.append(os.path.join(directory, name))
    return sorted(found)


def make_tracer(targets: List[str], executed: Dict[str, Set[int]]):
    prefixes = tuple(os.path.abspath(t) + os.sep for t in targets)

    def global_trace(frame, event, arg):
        path = frame.f_code.co_filename
        if not path.startswith(prefixes):
            return None  # disable local tracing for foreign frames
        bucket = executed.setdefault(path, set())
        bucket.add(frame.f_lineno)

        def local_trace(frame, event, arg):
            if event == "line":
                bucket.add(frame.f_lineno)
            return local_trace

        return local_trace

    return global_trace


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--" in argv:
        split = argv.index("--")
        argv, pytest_args = argv[:split], argv[split + 1:]
    else:
        pytest_args = []
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--target", action="append", default=[],
        help="directory whose .py files are measured (repeatable; "
        "default: src/repro/cots and src/repro/simcore)",
    )
    parser.add_argument(
        "--floor", type=float, default=0.0,
        help="minimum aggregate line coverage percentage (default: "
        "report only)",
    )
    parser.add_argument(
        "--report", type=int, default=10,
        help="show the N worst-covered files (default 10)",
    )
    args = parser.parse_args(argv)
    targets = args.target or ["src/repro/cots", "src/repro/simcore"]
    targets = [os.path.abspath(target) for target in targets]
    for target in targets:
        if not os.path.isdir(target):
            print(f"check_coverage: no such directory: {target}")
            return 2

    executed: Dict[str, Set[int]] = {}
    tracer = make_tracer(targets, executed)
    # install on all threads *before* pytest imports the package so
    # module-level (import-time) lines are attributed as executed
    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        import pytest

        test_exit = int(pytest.main(pytest_args or ["-x", "-q"]))
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_executable = 0
    total_executed = 0
    per_file = []
    for target in targets:
        for path in python_files(target):
            universe = executable_lines(path)
            hit = executed.get(os.path.abspath(path), set()) & universe
            total_executable += len(universe)
            total_executed += len(hit)
            percent = 100.0 * len(hit) / len(universe) if universe else 100.0
            per_file.append((percent, path, len(hit), len(universe)))

    per_file.sort()
    print()
    print("worst-covered files:")
    for percent, path, hit, universe in per_file[: args.report]:
        rel = os.path.relpath(path)
        print(f"  {percent:6.1f}%  {hit:4d}/{universe:<4d}  {rel}")
    overall = (
        100.0 * total_executed / total_executable if total_executable else 100.0
    )
    print(
        f"coverage: {overall:.1f}% "
        f"({total_executed}/{total_executable} lines, floor {args.floor}%)"
    )
    if test_exit != 0:
        print(f"check_coverage: test run failed (exit {test_exit})")
        return test_exit
    if overall < args.floor:
        print("check_coverage: BELOW FLOOR")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
