#!/usr/bin/env python
"""Hold the metric catalogue (``repro.obs.schema``) against the code.

Metric names drift: an instrumented call site gets renamed, the
catalogue keeps the old spelling, and ``repro report`` starts printing
``?`` units while docs/observability.md documents a metric nobody emits.
This tool catches that from both ends:

1. **Static scan** — every ``.counter("...")`` / ``.gauge("...")`` /
   ``.histogram("...")`` string literal under ``src/repro/`` (f-string
   templates included: their ``{...}`` holes only ever sit in the
   catalogue's ``<i>``/``<tag>``/``<stat>`` placeholder segments) must
   resolve to a :data:`~repro.obs.schema.METRIC_SPECS` entry of the
   same kind.
2. **Recording smoke run** — tiny SpaceSaving / sequential-sim / CoTS /
   multiprocess / scenario-suite runs against real registries; every
   name in the resulting snapshots must resolve, with the recorded
   family matching the spec's kind.

Usage::

    PYTHONPATH=src python tools/check_metrics.py               # both passes
    PYTHONPATH=src python tools/check_metrics.py --static-only # no smoke run

Exit code 0 when every name resolves, 1 with a listing otherwise.  CI
runs this in the ``docs`` job (the catalogue is documentation-as-data).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import List, NamedTuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: a metric-recording call with an inline (possibly f-string) name.
#: ``\s*`` spans newlines, so multi-line call layouts match too.
CALL_RE = re.compile(
    r"\.(counter|gauge|histogram)\(\s*(f?)([\"'])([^\"']+)\3"
)

#: f-string holes; each must land where the catalogue has a placeholder
HOLE_RE = re.compile(r"\{[^{}]*\}")


class Emission(NamedTuple):
    """One metric name the code emits, and where it was seen."""

    name: str        # concrete or hole-substituted metric name
    kind: str        # counter | gauge | histogram
    where: str       # "path:line" for static hits, "runtime" for smoke


def scan_source() -> List[Emission]:
    """Every metric-name literal recorded anywhere under src/repro/."""
    emissions: List[Emission] = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in CALL_RE.finditer(text):
            kind, is_fstring, _, name = match.groups()
            if is_fstring:
                # any concrete stand-in resolves against a placeholder
                # segment; "0" keeps the dotted shape intact
                name = HOLE_RE.sub("0", name)
            line = text.count("\n", 0, match.start()) + 1
            shown = (
                path.relative_to(REPO_ROOT)
                if path.is_relative_to(REPO_ROOT) else path
            )
            where = f"{shown}:{line}"
            emissions.append(Emission(name, kind, where))
    return emissions


def smoke_run() -> List[Emission]:
    """Record from every layer into real registries; return the names."""
    from repro.core.space_saving import SpaceSaving
    from repro.cots import CoTSRunConfig, run_cots
    from repro.mp import MPConfig, run_mp
    from repro.obs import MetricsRegistry
    from repro.parallel import SchemeConfig, run_sequential
    from repro.workloads import zipf_stream

    stream = zipf_stream(2_000, 300, 1.3, seed=7)
    snapshots = []

    registry = MetricsRegistry()
    SpaceSaving(capacity=48, metrics=registry).process_many(stream)
    snapshots.append(("spacesaving", registry.snapshot()))

    registry = MetricsRegistry()
    run_sequential(stream, SchemeConfig(threads=1, capacity=48,
                                        metrics=registry))
    snapshots.append(("sequential", registry.snapshot()))

    registry = MetricsRegistry()
    run_cots(stream, CoTSRunConfig(threads=4, capacity=48,
                                   metrics=registry))
    snapshots.append(("cots", registry.snapshot()))

    registry = MetricsRegistry()
    run_mp(stream, MPConfig(workers=2, capacity=48, chunk_elements=512),
           metrics=registry)
    snapshots.append(("mp", registry.snapshot()))

    from repro.backend import create_backend

    registry = MetricsRegistry()
    backend = create_backend("sketch-cm-vec", epsilon=0.01, delta=0.05,
                             seed=13, metrics=registry)
    try:
        backend.ingest(stream)
        backend.snapshot()
    finally:
        backend.close()
    snapshots.append(("sketch-backend", registry.snapshot()))

    registry = MetricsRegistry()
    run_mp(
        stream,
        MPConfig(workers=2, capacity=48, chunk_elements=512,
                 mode="one_table", sketch_epsilon=0.01,
                 sketch_delta=0.05, sketch_seed=13),
        metrics=registry,
    )
    snapshots.append(("mp-one-table", registry.snapshot()))

    from repro.scenarios import ScenarioParams, fuzz, run_scenario

    registry = MetricsRegistry()
    run_scenario(
        "eviction-poison", "sequential",
        ScenarioParams(length=1_500, alphabet=200, capacity=32, seed=7),
        metrics=registry,
    )
    snapshots.append(("scenario", registry.snapshot()))

    registry = MetricsRegistry()
    fuzz(1, seed=0,
         params=ScenarioParams(length=400, alphabet=100, capacity=16),
         metrics=registry)
    snapshots.append(("scenario-fuzz", registry.snapshot()))

    snapshots.append(("serve", _serve_smoke()))

    emissions: List[Emission] = []
    for run_name, snapshot in snapshots:
        for family, kind in (("counters", "counter"), ("gauges", "gauge"),
                             ("histograms", "histogram")):
            for name in snapshot.get(family, {}):
                emissions.append(
                    Emission(name, kind, f"runtime ({run_name} run)")
                )
    return emissions


def _serve_smoke() -> dict:
    """One tiny serve session (ingest, query, subscribe, reject, error)
    against a real registry, so every ``serve.*`` name is recorded."""
    import asyncio
    import json

    from repro.obs import MetricsRegistry
    from repro.serve import ServeConfig, StreamServer

    registry = MetricsRegistry()

    async def session() -> None:
        config = ServeConfig(
            backend="sequential", capacity=32, batch_events=4,
            batch_interval=0.01, snapshot_interval=0.01,
            max_pending_batches=1,
        )
        async with StreamServer(config, metrics=registry) as server:
            reader, writer = await asyncio.open_connection(
                config.host, server.port
            )

            async def request(payload: dict) -> dict:
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()
                while True:
                    response = json.loads(await reader.readline())
                    if "push" not in response:
                        return response

            await request({"op": "ingest", "events": list(range(4))})
            await request({"op": "flush"})
            await request({"op": "query", "kind": "topk", "k": 3})
            await request({"op": "subscribe",
                           "inner": {"kind": "topk", "k": 1},
                           "period": 0.01})
            await asyncio.sleep(0.03)
            # one oversized frame (protocol error) and one rejected burst
            await request({"op": "nope"})
            await request({"op": "ingest", "events": list(range(64))})
            writer.close()
            await writer.wait_closed()

    asyncio.run(session())
    return registry.snapshot()


def check(emissions: List[Emission]) -> List[str]:
    """Failure messages for emissions the catalogue cannot resolve."""
    from repro.obs.schema import lookup

    failures = []
    for emission in emissions:
        spec = lookup(emission.name)
        if spec is None:
            failures.append(
                f"{emission.where}: {emission.kind} {emission.name!r} "
                "has no METRIC_SPECS entry"
            )
        elif spec.kind != emission.kind:
            failures.append(
                f"{emission.where}: {emission.name!r} recorded as "
                f"{emission.kind} but catalogued as {spec.kind} "
                f"(spec {spec.name!r})"
            )
    return failures


def main(argv: List[str] | None = None) -> int:
    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument(
        "--static-only", action="store_true",
        help="skip the recording smoke run (static scan only)",
    )
    args = cli.parse_args(argv)

    emissions = scan_source()
    static_count = len(emissions)
    if not args.static_only:
        emissions.extend(smoke_run())
    failures = check(emissions)
    if failures:
        print(f"check_metrics: {len(failures)} undocumented metric(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    runtime_count = len(emissions) - static_count
    print(
        f"check_metrics: {static_count} call site(s) and "
        f"{runtime_count} recorded name(s) all resolve against "
        "METRIC_SPECS"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
