#!/usr/bin/env python
"""Hold the metric catalogue (``repro.obs.schema``) against the code.

Metric names drift: an instrumented call site gets renamed, the
catalogue keeps the old spelling, and ``repro report`` starts printing
``?`` units while docs/observability.md documents a metric nobody emits.
This tool catches that from both ends:

1. **Static scan** — every ``.counter("...")`` / ``.gauge("...")`` /
   ``.histogram("...")`` string literal under ``src/repro/`` (f-string
   templates included: their ``{...}`` holes only ever sit in the
   catalogue's ``<i>``/``<tag>``/``<stat>`` placeholder segments) must
   resolve to a :data:`~repro.obs.schema.METRIC_SPECS` entry of the
   same kind.
2. **Recording smoke run** — tiny SpaceSaving / sequential-sim / CoTS /
   multiprocess / scenario-suite runs against real registries; every
   name in the resulting snapshots must resolve, with the recorded
   family matching the spec's kind.
3. **Alert-rule audit** — every :data:`~repro.obs.schema.ALERT_RULES`
   entry must name a catalogued metric whose kind its evaluation mode
   can read (``rate``/``increase`` need a counter, ``gauge`` needs a
   gauge), with unique rule names.
4. **Prometheus exposition audit** — the serve smoke snapshot is
   rendered through :func:`repro.obs.live.render_prometheus` and the
   output is held against the text-format grammar: HELP/TYPE per
   family, ``_total`` on counters, cumulative monotone ``_bucket``
   series ending in ``+Inf`` with matching ``_count``.

Usage::

    PYTHONPATH=src python tools/check_metrics.py               # both passes
    PYTHONPATH=src python tools/check_metrics.py --static-only # no smoke run

Exit code 0 when every name resolves, 1 with a listing otherwise.  CI
runs this in the ``docs`` job (the catalogue is documentation-as-data).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import List, NamedTuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: a metric-recording call with an inline (possibly f-string) name.
#: ``\s*`` spans newlines, so multi-line call layouts match too.
CALL_RE = re.compile(
    r"\.(counter|gauge|histogram)\(\s*(f?)([\"'])([^\"']+)\3"
)

#: f-string holes; each must land where the catalogue has a placeholder
HOLE_RE = re.compile(r"\{[^{}]*\}")


class Emission(NamedTuple):
    """One metric name the code emits, and where it was seen."""

    name: str        # concrete or hole-substituted metric name
    kind: str        # counter | gauge | histogram
    where: str       # "path:line" for static hits, "runtime" for smoke


def scan_source() -> List[Emission]:
    """Every metric-name literal recorded anywhere under src/repro/."""
    emissions: List[Emission] = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in CALL_RE.finditer(text):
            kind, is_fstring, _, name = match.groups()
            if is_fstring:
                # any concrete stand-in resolves against a placeholder
                # segment; "0" keeps the dotted shape intact
                name = HOLE_RE.sub("0", name)
            line = text.count("\n", 0, match.start()) + 1
            shown = (
                path.relative_to(REPO_ROOT)
                if path.is_relative_to(REPO_ROOT) else path
            )
            where = f"{shown}:{line}"
            emissions.append(Emission(name, kind, where))
    return emissions


def smoke_run() -> "tuple[List[Emission], dict]":
    """Record from every layer into real registries.

    Returns the emitted names plus the serve run's snapshot (the
    Prometheus exposition audit renders that one — it spans serve,
    backend and alert series at once)."""
    from repro.core.space_saving import SpaceSaving
    from repro.cots import CoTSRunConfig, run_cots
    from repro.mp import MPConfig, run_mp
    from repro.obs import MetricsRegistry
    from repro.parallel import SchemeConfig, run_sequential
    from repro.workloads import zipf_stream

    stream = zipf_stream(2_000, 300, 1.3, seed=7)
    snapshots = []

    registry = MetricsRegistry()
    SpaceSaving(capacity=48, metrics=registry).process_many(stream)
    snapshots.append(("spacesaving", registry.snapshot()))

    registry = MetricsRegistry()
    run_sequential(stream, SchemeConfig(threads=1, capacity=48,
                                        metrics=registry))
    snapshots.append(("sequential", registry.snapshot()))

    registry = MetricsRegistry()
    run_cots(stream, CoTSRunConfig(threads=4, capacity=48,
                                   metrics=registry))
    snapshots.append(("cots", registry.snapshot()))

    registry = MetricsRegistry()
    run_mp(stream, MPConfig(workers=2, capacity=48, chunk_elements=512),
           metrics=registry)
    snapshots.append(("mp", registry.snapshot()))

    from repro.backend import create_backend

    registry = MetricsRegistry()
    backend = create_backend("sketch-cm-vec", epsilon=0.01, delta=0.05,
                             seed=13, metrics=registry)
    try:
        backend.ingest(stream)
        backend.snapshot()
    finally:
        backend.close()
    snapshots.append(("sketch-backend", registry.snapshot()))

    registry = MetricsRegistry()
    run_mp(
        stream,
        MPConfig(workers=2, capacity=48, chunk_elements=512,
                 mode="one_table", sketch_epsilon=0.01,
                 sketch_delta=0.05, sketch_seed=13),
        metrics=registry,
    )
    snapshots.append(("mp-one-table", registry.snapshot()))

    from repro.scenarios import ScenarioParams, fuzz, run_scenario

    registry = MetricsRegistry()
    run_scenario(
        "eviction-poison", "sequential",
        ScenarioParams(length=1_500, alphabet=200, capacity=32, seed=7),
        metrics=registry,
    )
    snapshots.append(("scenario", registry.snapshot()))

    registry = MetricsRegistry()
    fuzz(1, seed=0,
         params=ScenarioParams(length=400, alphabet=100, capacity=16),
         metrics=registry)
    snapshots.append(("scenario-fuzz", registry.snapshot()))

    serve_snapshot = _serve_smoke()
    snapshots.append(("serve", serve_snapshot))

    emissions: List[Emission] = []
    for run_name, snapshot in snapshots:
        for family, kind in (("counters", "counter"), ("gauges", "gauge"),
                             ("histograms", "histogram")):
            for name in snapshot.get(family, {}):
                emissions.append(
                    Emission(name, kind, f"runtime ({run_name} run)")
                )
    return emissions, serve_snapshot


def _serve_smoke() -> dict:
    """One tiny serve session (ingest, query, subscribe, reject, error)
    against a real registry, so every ``serve.*`` name is recorded."""
    import asyncio
    import json

    from repro.obs import MetricsRegistry
    from repro.serve import ServeConfig, StreamServer

    registry = MetricsRegistry()

    async def session() -> None:
        config = ServeConfig(
            backend="sequential", capacity=32, batch_events=4,
            batch_interval=0.01, snapshot_interval=0.01,
            max_pending_batches=1,
        )
        async with StreamServer(config, metrics=registry) as server:
            reader, writer = await asyncio.open_connection(
                config.host, server.port
            )

            async def request(payload: dict) -> dict:
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()
                while True:
                    response = json.loads(await reader.readline())
                    if "push" not in response:
                        return response

            await request({"op": "ingest", "events": list(range(4))})
            await request({"op": "flush"})
            await request({"op": "query", "kind": "topk", "k": 3})
            await request({"op": "subscribe",
                           "inner": {"kind": "topk", "k": 1},
                           "period": 0.01})
            await asyncio.sleep(0.03)
            # one oversized frame (protocol error) and one rejected burst
            await request({"op": "nope"})
            await request({"op": "ingest", "events": list(range(64))})
            writer.close()
            await writer.wait_closed()

    asyncio.run(session())
    return registry.snapshot()


def check_alert_rules() -> List[str]:
    """Failure messages for alert rules that drifted from the catalogue."""
    from repro.obs.schema import ALERT_RULES, lookup

    readable_by = {"rate": "counter", "increase": "counter",
                   "gauge": "gauge"}
    failures: List[str] = []
    seen = set()
    for rule in ALERT_RULES:
        if rule.name in seen:
            failures.append(f"alert rule {rule.name!r} is defined twice")
        seen.add(rule.name)
        spec = lookup(rule.metric)
        if spec is None:
            failures.append(
                f"alert rule {rule.name!r} watches {rule.metric!r}, "
                "which has no METRIC_SPECS entry"
            )
            continue
        wanted = readable_by.get(rule.kind)
        if wanted is None:
            failures.append(
                f"alert rule {rule.name!r} has unknown kind {rule.kind!r}"
            )
        elif spec.kind != wanted:
            failures.append(
                f"alert rule {rule.name!r} ({rule.kind}) needs a {wanted} "
                f"but {rule.metric!r} is catalogued as a {spec.kind}"
            )
    return failures


#: one exposition sample line: name{labels} value
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+\-]+|NaN|[+-]Inf)$"
)


def check_prometheus(snapshot: dict, text: str | None = None) -> List[str]:
    """Hold ``render_prometheus`` output against the text format.

    ``text`` overrides the rendered exposition (tests feed malformed
    documents through the same audit).
    """
    failures: List[str] = []
    if text is None:
        from repro.obs.live import render_prometheus

        text = render_prometheus(snapshot)
    if text and not text.endswith("\n"):
        failures.append("prometheus: output must end with a newline")
    helped, typed = set(), {}
    samples: dict = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            failures.append(f"prometheus:{lineno}: blank line")
        elif line.startswith("# HELP "):
            helped.add(line.split()[2])
        elif line.startswith("# TYPE "):
            parts = line.split()
            typed[parts[2]] = parts[3]
        elif line.startswith("#"):
            failures.append(f"prometheus:{lineno}: unknown comment {line!r}")
        else:
            match = SAMPLE_RE.match(line)
            if match is None:
                failures.append(f"prometheus:{lineno}: bad sample {line!r}")
                continue
            samples.setdefault(match.group(1), []).append(
                (match.group(2) or "", float(match.group(3)))
            )
    for family, kind in typed.items():
        if family not in helped:
            failures.append(f"prometheus: family {family!r} has no HELP")
        if kind == "counter" and not family.endswith("_total"):
            failures.append(
                f"prometheus: counter family {family!r} lacks _total"
            )
        if kind == "histogram":
            buckets = samples.get(f"{family}_bucket", [])
            if not any('le="+Inf"' in labels for labels, _ in buckets):
                failures.append(
                    f"prometheus: histogram {family!r} has no +Inf bucket"
                )
            values = [value for _, value in buckets]
            if values != sorted(values):
                failures.append(
                    f"prometheus: histogram {family!r} buckets are not "
                    "cumulative"
                )
            counts = samples.get(f"{family}_count", [])
            if values and counts and counts[0][1] != values[-1]:
                failures.append(
                    f"prometheus: histogram {family!r} _count "
                    f"{counts[0][1]} != +Inf bucket {values[-1]}"
                )
    for family in samples:
        base = re.sub(r"_(bucket|sum|count)$", "", family)
        if family not in typed and base not in typed:
            failures.append(
                f"prometheus: family {family!r} has samples but no TYPE"
            )
    return failures


def check(emissions: List[Emission]) -> List[str]:
    """Failure messages for emissions the catalogue cannot resolve."""
    from repro.obs.schema import lookup

    failures = []
    for emission in emissions:
        spec = lookup(emission.name)
        if spec is None:
            failures.append(
                f"{emission.where}: {emission.kind} {emission.name!r} "
                "has no METRIC_SPECS entry"
            )
        elif spec.kind != emission.kind:
            failures.append(
                f"{emission.where}: {emission.name!r} recorded as "
                f"{emission.kind} but catalogued as {spec.kind} "
                f"(spec {spec.name!r})"
            )
    return failures


def main(argv: List[str] | None = None) -> int:
    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument(
        "--static-only", action="store_true",
        help="skip the recording smoke run (static scan only)",
    )
    args = cli.parse_args(argv)

    emissions = scan_source()
    static_count = len(emissions)
    serve_snapshot = None
    if not args.static_only:
        runtime, serve_snapshot = smoke_run()
        emissions.extend(runtime)
    failures = check(emissions)
    failures += check_alert_rules()
    if serve_snapshot is not None:
        failures += check_prometheus(serve_snapshot)
    if failures:
        print(f"check_metrics: {len(failures)} failure(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    runtime_count = len(emissions) - static_count
    from repro.obs.schema import ALERT_RULES

    print(
        f"check_metrics: {static_count} call site(s) and "
        f"{runtime_count} recorded name(s) all resolve against "
        f"METRIC_SPECS; {len(ALERT_RULES)} alert rule(s) and the "
        "Prometheus exposition check out"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
