#!/usr/bin/env python
"""Validate every ``python -m repro ...`` example in the documentation.

Docs rot when flags change.  This tool extracts every fenced ``bash``
code block from README.md and docs/*.md, finds the lines that invoke
``python -m repro ...``, and *parses* each one against the real CLI
parser (``repro.cli._build_parser``).  Parse-only validation catches
renamed/removed subcommands, dropped flags and invalid choice values
without running anything expensive.

Plain ``json`` fences are treated as **serve wire-protocol examples**
(one NDJSON frame per line, exactly the on-the-wire format): every
line must parse as JSON, and every object carrying an ``op`` key —
i.e. every request frame — must additionally decode through
``repro.serve.protocol.decode_request``, so docs/serve.md can never
show a request the server would reject.  (Annotated pretty-printed
JSON keeps using ``jsonc`` fences, which are not checked.)

Usage::

    PYTHONPATH=src python tools/check_docs.py            # repo root
    PYTHONPATH=src python tools/check_docs.py README.md docs/foo.md

Exit code 0 when every example parses, 1 with a listing of failures
otherwise.  CI runs this as the ``docs`` job.
"""

from __future__ import annotations

import argparse
import io
import json
import pathlib
import re
import shlex
import sys
from contextlib import redirect_stderr, redirect_stdout
from typing import Iterator, List, NamedTuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: fenced code blocks we scan (only bash/sh/shell fences hold commands)
FENCE_RE = re.compile(
    r"^```(?:bash|sh|shell)\s*$(.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)

#: fenced blocks holding serve wire-protocol frames (one per line)
JSON_FENCE_RE = re.compile(
    r"^```json\s*$(.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)

#: request frames embedded in shell examples (single-quoted, as they
#: would be passed to printf/echo and piped into nc)
INLINE_FRAME_RE = re.compile(r"'(\{\"op\"[^']*\})'")

#: environment-variable prefixes and invocation wrappers to strip
ENV_ASSIGNMENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=\S+$")


class Example(NamedTuple):
    """One ``python -m repro`` invocation found in the docs."""

    path: pathlib.Path
    line: int            # 1-based line of the command in the file
    text: str            # the logical (continuation-joined) command
    argv: List[str]      # what we hand to the parser


def default_doc_files() -> List[pathlib.Path]:
    """README.md plus every markdown page under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def _logical_lines(block: str, first_line: int) -> Iterator[tuple]:
    """Join trailing-backslash continuations; yield (line_no, text)."""
    pending = ""
    pending_start = first_line
    for offset, raw in enumerate(block.splitlines()):
        line = raw.rstrip()
        if not pending:
            pending_start = first_line + offset
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        yield pending_start, (pending + line).strip()
        pending = ""
    if pending:
        yield pending_start, pending.strip()


def _extract_argv(command: str) -> List[str] | None:
    """The ``repro`` argv of a doc command line, or None if not one.

    Strips leading env assignments (``PYTHONPATH=src``), comments and
    shell redirections (``> out.json``, ``| head``) — none of those
    affect what argparse sees.
    """
    if "#" in command:
        command = command.split("#", 1)[0].strip()
    if not command:
        return None
    try:
        tokens = shlex.split(command)
    except ValueError:
        return None
    while tokens and ENV_ASSIGNMENT_RE.match(tokens[0]):
        tokens = tokens[1:]
    # cut at the first redirection / pipe / chain operator
    for index, token in enumerate(tokens):
        if token in (">", ">>", "<", "|", "&", "&&", "||", ";") or (
            token.startswith((">", "<")) and len(token) > 1
        ):
            tokens = tokens[:index]
            break
    if tokens[:3] != ["python", "-m", "repro"]:
        return None
    return tokens[3:]


def extract_examples(path: pathlib.Path) -> List[Example]:
    """Every ``python -m repro`` example in one markdown file."""
    text = path.read_text(encoding="utf-8")
    examples: List[Example] = []
    for match in FENCE_RE.finditer(text):
        block_first_line = text.count("\n", 0, match.start(1)) + 1
        for line_no, command in _logical_lines(match.group(1), block_first_line):
            argv = _extract_argv(command)
            if argv is not None:
                examples.append(Example(path, line_no, command, argv))
    return examples


class Frame(NamedTuple):
    """One wire-protocol frame found in a ``json`` fence."""

    path: pathlib.Path
    line: int
    text: str


def extract_frames(path: pathlib.Path) -> List[Frame]:
    """Every NDJSON frame line inside plain ``json`` fences."""
    text = path.read_text(encoding="utf-8")
    frames: List[Frame] = []
    for match in JSON_FENCE_RE.finditer(text):
        block_first_line = text.count("\n", 0, match.start(1)) + 1
        for offset, raw in enumerate(match.group(1).splitlines()):
            line = raw.strip()
            if line:
                frames.append(Frame(path, block_first_line + offset, line))
    for match in FENCE_RE.finditer(text):
        block_start = match.start(1)
        for inline in INLINE_FRAME_RE.finditer(match.group(1)):
            line_no = text.count("\n", 0, block_start + inline.start()) + 1
            frames.append(Frame(path, line_no, inline.group(1)))
    return frames


def validate_frame(frame: Frame) -> str | None:
    """Check one frame line; return an error message or None."""
    from repro.serve.protocol import WireProtocolError, decode_request

    try:
        obj = json.loads(frame.text)
    except json.JSONDecodeError as exc:
        return f"not valid JSON: {exc}"
    if isinstance(obj, dict) and "op" in obj:
        try:
            decode_request(frame.text)
        except WireProtocolError as exc:
            return f"invalid request ({exc.code}): {exc}"
    return None


def validate(example: Example, parser: argparse.ArgumentParser) -> str | None:
    """Parse one example; return an error message or None when valid."""
    sink = io.StringIO()
    try:
        with redirect_stdout(sink), redirect_stderr(sink):
            parser.parse_args(example.argv)
    except SystemExit as exc:
        # --help/--version exit 0: those examples are valid by definition
        if exc.code not in (0, None):
            return sink.getvalue().strip().splitlines()[-1] if sink.getvalue() else "parse error"
    return None


def main(argv: List[str] | None = None) -> int:
    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument(
        "files", nargs="*", type=pathlib.Path,
        help="markdown files to check (default: README.md + docs/*.md)",
    )
    args = cli.parse_args(argv)

    from repro.cli import _build_parser

    parser = _build_parser()
    files = args.files or default_doc_files()
    examples: List[Example] = []
    frames: List[Frame] = []
    for path in files:
        examples.extend(extract_examples(path))
        frames.extend(extract_frames(path))
    failures = []
    for example in examples:
        error = validate(example, parser)
        if error is not None:
            failures.append((example, error))
    for frame in frames:
        error = validate_frame(frame)
        if error is not None:
            failures.append((frame, error))
    rel = lambda p: p.relative_to(REPO_ROOT) if p.is_relative_to(REPO_ROOT) else p  # noqa: E731
    if failures:
        print(f"check_docs: {len(failures)} stale example(s):")
        for example, error in failures:
            print(f"  {rel(example.path)}:{example.line}: {example.text}")
            print(f"      {error}")
        return 1
    print(
        f"check_docs: {len(examples)} `python -m repro` example(s) and "
        f"{len(frames)} protocol frame(s) across {len(files)} file(s) "
        f"all parse"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
