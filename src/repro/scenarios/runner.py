"""Run any registered scenario against any counting backend.

One entry point, :func:`run_scenario`, ties the pieces together: build
the seeded stream, count it with the chosen backend (sequential batched,
simulated CoTS, or the real multiprocess backend on either transport),
score the result against exact ground truth, and record the
``scenario.*`` metrics into an optional registry.

:func:`audit.selfcheck` runs before every scenario, so a corrupted
scoring helper fails the suite loudly rather than mis-scoring quietly.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Optional, Tuple

from repro.core.space_saving import SpaceSaving
from repro.cots.framework import CoTSRunConfig, run_cots
from repro.errors import ConfigurationError
from repro.mp.config import MPConfig
from repro.mp.driver import run_mp
from repro.obs.registry import MetricsRegistry
from repro.scenarios.audit import (
    AccuracyReport,
    score_accuracy,
    score_sketch_accuracy,
    selfcheck,
)
from repro.scenarios.registry import (
    ScenarioParams,
    Stream,
    get_scenario,
)
from repro.schedcheck.auditor import exact_counts

#: every backend the scenario matrix exercises
BACKENDS = (
    "sequential",
    "cots",
    "mp-shm",
    "mp-pickle",
    "mp-one-table",
    "sketch-cm-vec",
)

#: backends whose summaries are Count-Min table reads: scored with the
#: one-sided sketch contract (overestimate bounds), not Space Saving's
#: recall guarantee — the adversary suite runs against them too
SKETCH_BACKENDS = ("mp-one-table", "sketch-cm-vec")


@dataclasses.dataclass(frozen=True)
class ScenarioRun:
    """Everything one scenario x backend cell produced."""

    scenario: str
    scenario_kind: str
    backend: str
    elements: int               #: stream length counted
    distinct: int               #: distinct elements in the stream
    wall_seconds: float
    accuracy: AccuracyReport
    counter: SpaceSaving        #: the queryable merged/final summary
    metrics: Dict[str, Dict]    #: registry snapshot ({} when disabled)

    @property
    def throughput_eps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.elements / self.wall_seconds


def run_backend(
    stream: Stream,
    backend: str,
    capacity: int,
    threads: int = 4,
    workers: int = 2,
    chunk_elements: int = 0,
    timeout: float = 120.0,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[SpaceSaving, float]:
    """Count ``stream`` with one backend; return (summary, wall seconds).

    ``mp-*`` backends return the hierarchically merged shard summary —
    callers must score it with ``merged=True`` (merge truncation may
    drop a borderline heavy hitter; the error bounds still hold).
    """
    if backend == "sequential":
        started = time.perf_counter()
        counter = SpaceSaving(capacity=capacity, metrics=metrics)
        counter.process_many(stream)
        return counter, time.perf_counter() - started
    if backend == "cots":
        started = time.perf_counter()
        result = run_cots(
            stream,
            CoTSRunConfig(
                threads=threads,
                capacity=capacity,
                preaggregate=True,
                batch=128,
                metrics=metrics,
            ),
        )
        return result.counter, time.perf_counter() - started
    if backend in ("mp-shm", "mp-pickle", "mp-one-table"):
        chunk = chunk_elements or min(
            32_768, max(256, len(stream) // (workers * 4) or 256)
        )
        config = MPConfig(
            workers=workers,
            capacity=capacity,
            chunk_elements=chunk,
            transport="pickle" if backend == "mp-pickle" else "shm",
            mode="one_table" if backend == "mp-one-table" else "sharded",
            timeout=timeout,
        )
        result = run_mp(stream, config, metrics=metrics)
        return result.counter, result.wall_seconds
    if backend == "sketch-cm-vec":
        from repro.backend.adapters import SketchCMVecBackend

        adapter = SketchCMVecBackend(capacity=capacity, metrics=metrics)
        try:
            started = time.perf_counter()
            for index in range(0, len(stream), 8192):
                adapter.ingest(stream[index:index + 8192])
            snap = adapter.snapshot()
            wall = time.perf_counter() - started
        finally:
            adapter.close()
        counter = SpaceSaving.from_entries(
            capacity, snap.entries, snap.processed
        )
        return counter, wall
    raise ConfigurationError(
        f"unknown backend {backend!r} (known: {', '.join(BACKENDS)})"
    )


def run_scenario(
    name: str,
    backend: str = "sequential",
    params: Optional[ScenarioParams] = None,
    k: int = 10,
    threads: int = 4,
    workers: int = 2,
    chunk_elements: int = 0,
    timeout: float = 120.0,
    metrics: Optional[MetricsRegistry] = None,
) -> ScenarioRun:
    """Build, count and score one scenario on one backend."""
    selfcheck()
    scenario = get_scenario(name)
    params = params or ScenarioParams()
    stream = scenario.build(params)
    truth = exact_counts(stream)
    counter, wall = run_backend(
        stream,
        backend,
        capacity=params.capacity,
        threads=threads,
        workers=workers,
        chunk_elements=chunk_elements,
        timeout=timeout,
        metrics=metrics,
    )
    if backend in SKETCH_BACKENDS:
        report = score_sketch_accuracy(counter, truth, k=k)
    else:
        report = score_accuracy(
            counter, truth, k=k, merged=backend.startswith("mp-")
        )
    snapshot: Dict[str, Dict] = {}
    if metrics is not None:
        metrics.counter("scenario.stream.elements").inc(len(stream))
        metrics.gauge("scenario.stream.distinct").set(len(truth))
        metrics.gauge("scenario.accuracy.recall_at_k").set(
            report.recall_at_k
        )
        metrics.gauge("scenario.accuracy.precision_at_k").set(
            report.precision_at_k
        )
        metrics.gauge("scenario.accuracy.max_overestimate").set(
            report.max_overestimate
        )
        metrics.gauge("scenario.accuracy.max_underestimate").set(
            report.max_underestimate
        )
        metrics.gauge("scenario.accuracy.error_bound").set(
            report.error_bound
        )
        metrics.gauge("scenario.accuracy.bound_excess").set(
            report.bound_excess
        )
        if report.guarantee_violations:
            metrics.counter("scenario.accuracy.guarantee_violations").inc(
                report.guarantee_violations
            )
        snapshot = metrics.snapshot()
    return ScenarioRun(
        scenario=name,
        scenario_kind=scenario.kind,
        backend=backend,
        elements=len(stream),
        distinct=len(truth),
        wall_seconds=wall,
        accuracy=report,
        counter=counter,
        metrics=snapshot,
    )
