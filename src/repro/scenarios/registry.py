"""The scenario registry: named, seeded, deterministic stream builders.

Every scenario maps one frozen :class:`ScenarioParams` to a concrete
stream (``List`` of hashable elements).  Benign scenarios model realistic
non-stationarity (drift, flash crowds, hot-set churn); adversarial ones
are white-box attacks on Space Saving's eviction policy (see
:mod:`repro.scenarios.adversaries`).  Determinism is load-bearing: the
bench matrix, the CI gate and the fuzzer's shrunk reproducers all rely
on ``build(params)`` returning the identical stream for identical params.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Hashable, List

from repro.errors import ConfigurationError, StreamError
from repro.scenarios.adversaries import (
    eviction_poison_stream,
    hot_key_flood_stream,
)
from repro.workloads.generators import (
    drift_stream,
    flash_crowd_stream,
    hot_set_churn_stream,
)
from repro.workloads.zipf import zipf_stream

Stream = List[Hashable]


@dataclasses.dataclass(frozen=True)
class ScenarioParams:
    """Shared knobs every scenario understands.

    ``capacity`` is the summary budget the stream will be counted with —
    the adversaries need it (they are white-box attacks), and benign
    scenarios scale their churn to it.
    """

    length: int = 20_000
    alphabet: int = 2_000
    capacity: int = 128
    seed: int = 7

    def __post_init__(self) -> None:
        if self.length < 0:
            raise StreamError(f"length must be >= 0, got {self.length}")
        if self.alphabet < 1:
            raise StreamError(f"alphabet must be >= 1, got {self.alphabet}")
        if self.capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {self.capacity}"
            )


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One named scenario: metadata plus a params -> stream builder."""

    name: str
    kind: str           #: "benign" | "adversarial"
    description: str
    build: Callable[[ScenarioParams], Stream]


def _stationary_zipf(p: ScenarioParams) -> Stream:
    return zipf_stream(p.length, p.alphabet, 1.25, seed=p.seed)


def _skew_drift(p: ScenarioParams) -> Stream:
    return drift_stream(
        p.length, p.alphabet, alpha_start=2.0, alpha_end=0.4,
        segments=16, seed=p.seed,
    )


def _flash_crowd(p: ScenarioParams) -> Stream:
    return flash_crowd_stream(
        p.length, p.alphabet, crowds=4, peak_fraction=0.9, seed=p.seed
    )


def _hot_set_churn(p: ScenarioParams) -> Stream:
    return hot_set_churn_stream(
        p.length, p.alphabet, hot_size=8, hot_fraction=0.7,
        rotate_every=max(1, p.length // 16), seed=p.seed,
    )


def _hot_key_flood(p: ScenarioParams) -> Stream:
    return hot_key_flood_stream(
        p.length, p.alphabet, p.capacity, seed=p.seed
    )


def _eviction_poison(p: ScenarioParams) -> Stream:
    return eviction_poison_stream(p.length, p.capacity, seed=p.seed)


#: insertion order is the bench/CLI presentation order
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            "stationary-zipf", "benign",
            "the paper's workload: stationary zipf, alpha = 1.25",
            _stationary_zipf,
        ),
        Scenario(
            "skew-drift", "benign",
            "zipf skew drifting from alpha 2.0 to 0.4 over 16 segments",
            _skew_drift,
        ),
        Scenario(
            "flash-crowd", "benign",
            "uniform background with 4 flash crowds on previously "
            "unseen keys at 90% of traffic",
            _flash_crowd,
        ),
        Scenario(
            "hot-set-churn", "benign",
            "8-key hot set at 70% of traffic, oldest hot key rotating "
            "out 16 times over the stream",
            _hot_set_churn,
        ),
        Scenario(
            "hot-key-flood", "adversarial",
            "legitimate zipf prefix, then capacity/2 attacker keys "
            "flooded to crowd real hitters out of the reported top-k",
            _hot_key_flood,
        ),
        Scenario(
            "eviction-poison", "adversarial",
            "shadow-guided min-bucket poisoning: singleton flood pumps "
            "min_freq while evicted victims are re-probed to saturate "
            "the eps*N over-estimate",
            _eviction_poison,
        ),
    ]
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name; unknown names raise ConfigurationError."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(
            f"unknown scenario {name!r} (known: {known})"
        ) from None


def build_stream(name: str, params: ScenarioParams) -> Stream:
    """Build the named scenario's stream for ``params``."""
    return get_scenario(name).build(params)
