"""Scenario fuzzer: random compositions, lane differentials, ddmin.

Each fuzz iteration composes 2-4 registered scenarios under a derived
seed (``"{seed}:{iteration}"`` hashed exactly like schedcheck's
sub-seeds, so every iteration is replayable in isolation), glues them by
concatenation or round-robin interleave, then pushes the composite
stream through :func:`check_stream`: three independent SpaceSaving lanes
(per-element reference, batched ``process_many``, pre-aggregated
``process_weighted``) that must agree via the mp backend's
interval-intersection equivalence, each also passing the hard-guarantee
accuracy audit against exact counts.

Any :class:`~repro.errors.ReproError` escaping a check hands the raw
element list to :func:`repro.schedcheck.shrink.ddmin`, which replays
``check_stream`` on subsets until 1-minimal — a shrunk reproducer small
enough to paste into a regression test.  The ``patch`` hook (a context
manager factory, mirroring schedcheck's mutation plumbing) lets tests
inject a bug into a production lane and assert the whole
detect -> shrink -> render pipeline fires end to end.
"""

from __future__ import annotations

import collections
import dataclasses
import random
from typing import Callable, ContextManager, List, Optional, Sequence, Tuple

from repro.core.space_saving import SpaceSaving
from repro.errors import AuditError, ConfigurationError, ReproError
from repro.mp.driver import summaries_equivalent
from repro.obs.registry import MetricsRegistry
from repro.scenarios.audit import score_accuracy
from repro.scenarios.registry import (
    SCENARIOS,
    ScenarioParams,
    Stream,
)
from repro.schedcheck.explorer import _stable_int
from repro.schedcheck.shrink import ddmin
from repro.workloads.generators import interleave

#: the in-process counting lanes the differential exercises
LANES = ("per-element", "batched", "weighted")

#: pre-aggregation block for the weighted lane (mirrors the shm plane's
#: per-segment weighted updates at a size small enough to shrink nicely)
_WEIGHTED_BLOCK = 512


def _lane_counter(stream: Stream, capacity: int, lane: str) -> SpaceSaving:
    """Count ``stream`` through one lane of the SpaceSaving surface."""
    counter = SpaceSaving(capacity=capacity)
    if lane == "per-element":
        for element in stream:
            counter.process(element)
    elif lane == "batched":
        counter.process_many(stream)
    elif lane == "weighted":
        for start in range(0, len(stream), _WEIGHTED_BLOCK):
            block = stream[start:start + _WEIGHTED_BLOCK]
            counter.process_weighted(
                list(collections.Counter(block).items())
            )
    else:
        raise ConfigurationError(
            f"unknown lane {lane!r} (known: {', '.join(LANES)})"
        )
    return counter


def check_stream(
    stream: Stream,
    capacity: int,
    k: int = 8,
    lanes: Sequence[str] = LANES,
) -> None:
    """Run the lane differential + accuracy audit; raise AuditError on
    any violation or cross-lane divergence."""
    truth = collections.Counter(stream)
    reference = _lane_counter(stream, capacity, lanes[0])
    report = score_accuracy(reference, truth, k=k)
    if not report.ok:
        raise AuditError(
            f"lane {lanes[0]!r}: {report.guarantee_violations} guarantee "
            f"violation(s) (max_over={report.max_overestimate}, "
            f"bound={report.error_bound:.2f})"
        )
    for lane in lanes[1:]:
        candidate = _lane_counter(stream, capacity, lane)
        lane_report = score_accuracy(candidate, truth, k=k)
        if not lane_report.ok:
            raise AuditError(
                f"lane {lane!r}: {lane_report.guarantee_violations} "
                "guarantee violation(s)"
            )
        if candidate.processed != reference.processed:
            raise AuditError(
                f"lane {lane!r} consumed {candidate.processed} "
                f"occurrences, reference consumed {reference.processed}"
            )
        if not summaries_equivalent(reference, candidate, k=k):
            raise AuditError(
                f"lane {lane!r} diverged from the per-element reference "
                "(interval-intersection equivalence failed)"
            )


@dataclasses.dataclass(frozen=True)
class FuzzFailure:
    """One failing composition, shrunk to a minimal reproducer."""

    iteration: int
    seed_key: str               #: the derived sub-seed ("{seed}:{i}")
    recipe: Tuple[str, ...]     #: scenario names composed, plus the glue
    error: str                  #: the original failure message
    original_length: int
    minimal_stream: Tuple       #: 1-minimal element list (ddmin output)
    shrink_replays: int         #: check_stream calls ddmin spent

    def render(self) -> str:
        preview = ", ".join(repr(e) for e in self.minimal_stream[:24])
        if len(self.minimal_stream) > 24:
            preview += ", ..."
        return "\n".join([
            "=== scenario fuzzer reproducer ===",
            f"iteration : {self.iteration} (sub-seed {self.seed_key!r})",
            f"recipe    : {' + '.join(self.recipe)}",
            f"failure   : {self.error}",
            f"shrunk    : {self.original_length} -> "
            f"{len(self.minimal_stream)} elements "
            f"({self.shrink_replays} replays)",
            f"stream    : [{preview}]",
        ])


@dataclasses.dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    iterations: int
    seed: int
    failures: Tuple[FuzzFailure, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_line(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"fuzz: {self.iterations} composition(s), seed {self.seed}: "
            f"{status}"
        )


def fuzz(
    iterations: int,
    seed: int = 0,
    params: Optional[ScenarioParams] = None,
    k: int = 8,
    lanes: Sequence[str] = LANES,
    patch: Optional[Callable[[], ContextManager]] = None,
    max_shrink_tests: int = 300,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``iterations`` random scenario compositions (see module doc).

    ``params`` sets the per-segment scale (default: a small fast
    ``ScenarioParams(length=2000, alphabet=400, capacity=48)``).
    ``patch`` wraps every check (including shrink replays) — the
    injected-bug integration seam.
    """
    if iterations < 0:
        raise ConfigurationError(
            f"iterations must be >= 0, got {iterations}"
        )
    params = params or ScenarioParams(
        length=2_000, alphabet=400, capacity=48
    )
    names = sorted(SCENARIOS)

    def run_check(stream: Stream) -> None:
        if patch is not None:
            with patch():
                check_stream(stream, params.capacity, k=k, lanes=lanes)
        else:
            check_stream(stream, params.capacity, k=k, lanes=lanes)

    failures: List[FuzzFailure] = []
    for i in range(iterations):
        seed_key = f"{seed}:{i}"
        rng = random.Random(_stable_int(seed_key))
        chosen = [
            names[rng.randrange(len(names))]
            for _ in range(rng.randint(2, 4))
        ]
        segments = []
        for j, name in enumerate(chosen):
            sub_seed = _stable_int(f"{seed_key}:{j}")
            segments.append(
                SCENARIOS[name].build(
                    dataclasses.replace(params, seed=sub_seed)
                )
            )
        glue = rng.choice(("concat", "interleave"))
        if glue == "interleave":
            stream = interleave(segments)
        else:
            stream = [element for segment in segments for element in segment]
        recipe = tuple(chosen) + (glue,)
        if metrics is not None:
            metrics.counter("scenario.fuzz.compositions").inc()
        try:
            run_check(stream)
        except ReproError as exc:
            replays = 0

            def still_fails(subset: Sequence) -> bool:
                nonlocal replays
                replays += 1
                try:
                    run_check(list(subset))
                except ReproError:
                    return True
                return False

            minimal = ddmin(stream, still_fails, max_tests=max_shrink_tests)
            failure = FuzzFailure(
                iteration=i,
                seed_key=seed_key,
                recipe=recipe,
                error=f"{type(exc).__name__}: {exc}",
                original_length=len(stream),
                minimal_stream=tuple(minimal),
                shrink_replays=replays,
            )
            failures.append(failure)
            if metrics is not None:
                metrics.counter("scenario.fuzz.failures").inc()
            if progress is not None:
                progress(failure.render())
        else:
            if progress is not None:
                progress(
                    f"iteration {i} ({' + '.join(recipe)}): "
                    f"{len(stream)} elements ok"
                )
    return FuzzReport(
        iterations=iterations, seed=seed, failures=tuple(failures)
    )
