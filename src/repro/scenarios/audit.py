"""Per-scenario accuracy auditing against exact ground truth.

:func:`score_accuracy` compares a (possibly merged) SpaceSaving summary
with exact counts and folds the result into one frozen
:class:`AccuracyReport`: recall/precision of the reported top-k against
the exact top-k, the worst over/under-estimate, the ε·N error bound the
summary promised (``processed / capacity``), and a count of hard
guarantee violations.  A violation is any of

* an estimate *below* the true count (Space Saving estimates are upper
  bounds — this must never happen),
* a guaranteed floor (``count - error``) *above* the true count,
* an over-estimate exceeding the ε·N bound,
* a true heavy hitter (frequency > ε·N) missing from the summary —
  skipped when ``merged=True``, because merging k shard summaries then
  truncating back to ``capacity`` entries may legitimately drop a
  borderline hitter (the merged bound maths still hold: with hash
  partitioning each shard sees a sub-stream of N_i elements, so the
  summed min frequencies stay ≤ Σ N_i / capacity = N / capacity).

:func:`selfcheck` re-derives a small hand-computed case and raises
:class:`~repro.errors.AuditError` on any mismatch.  The scenario runner
calls it before every run, so an off-by-one slipped into the scoring
helpers (see the mutation canary in ``tests/scenarios``) turns the whole
suite red instead of silently mis-scoring.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Hashable, List, Mapping, Sequence

from repro.core.space_saving import SpaceSaving
from repro.errors import AuditError


@dataclasses.dataclass(frozen=True)
class AccuracyReport:
    """Accuracy of one summary against exact ground truth."""

    k: int                      #: the top-k depth scored
    recall_at_k: float          #: |answer ∩ exact top-k| / |exact top-k|
    precision_at_k: float       #: |answer ∩ exact top-k| / |answer|
    max_overestimate: int       #: worst (estimate - truth) over monitored
    max_underestimate: int      #: worst (truth - estimate); must stay 0
    error_bound: float          #: the promised ε·N bound (N / capacity)
    bound_excess: float         #: max(0, max_overestimate - error_bound)
    guarantee_violations: int   #: hard guarantee breaches (0 = healthy)
    monitored: int              #: entries held by the summary
    processed: int              #: stream occurrences the summary consumed

    @property
    def ok(self) -> bool:
        return self.guarantee_violations == 0


def true_top_k(truth: Mapping[Hashable, int], k: int) -> List[Hashable]:
    """The exact top-k elements, ties broken by ``str(element)``."""
    ranked = sorted(truth.items(), key=lambda kv: (-kv[1], str(kv[0])))
    return [element for element, count in ranked[:k] if count > 0]


def hits_at_k(
    answer: Sequence[Hashable], exact: Sequence[Hashable]
) -> int:
    """How many of the reported elements appear in the exact top-k.

    Kept as a module-level seam on purpose: the mutation canary patches
    this with an off-by-one and asserts :func:`selfcheck` goes red.
    """
    return len(set(answer) & set(exact))


def score_accuracy(
    counter: SpaceSaving,
    truth: Mapping[Hashable, int],
    k: int = 10,
    merged: bool = False,
) -> AccuracyReport:
    """Score ``counter`` against exact ``truth`` counts (see module doc)."""
    processed = counter.processed
    capacity = counter.capacity
    bound = processed / capacity
    entries = counter.entries()
    answer = [entry.element for entry in entries[:k]]
    exact = true_top_k(truth, k)
    hits = hits_at_k(answer, exact)
    recall = hits / len(exact) if exact else 1.0
    precision = hits / len(answer) if answer else 1.0
    violations = 0
    max_over = 0
    max_under = 0
    for entry in entries:
        true_count = truth.get(entry.element, 0)
        over = entry.count - true_count
        if over > max_over:
            max_over = over
        if -over > max_under:
            max_under = -over
        if entry.count < true_count:
            violations += 1          # estimate must upper-bound truth
        if entry.count - entry.error > true_count:
            violations += 1          # guaranteed floor must lower-bound
        if over > bound + 1e-9:
            violations += 1          # per-element error beyond ε·N
    if not merged:
        monitored = {entry.element for entry in entries}
        for element, count in truth.items():
            if count > bound and element not in monitored:
                violations += 1      # true heavy hitter unmonitored
    return AccuracyReport(
        k=k,
        recall_at_k=recall,
        precision_at_k=precision,
        max_overestimate=max_over,
        max_underestimate=max_under,
        error_bound=bound,
        bound_excess=max(0.0, max_over - bound),
        guarantee_violations=violations,
        monitored=len(entries),
        processed=processed,
    )


def score_sketch_accuracy(
    counter: SpaceSaving,
    truth: Mapping[Hashable, int],
    k: int = 10,
) -> AccuracyReport:
    """Score a *sketch-backed* summary (Count-Min reads, widened bounds).

    Sketch backends (``mp-one-table``, ``sketch-cm-vec``) report
    candidates whose counts are Count-Min table reads and whose
    ``error`` fields carry the widened ε·N bound the backend promised
    (band sharing and staleness already charged).  The contract audited
    here is therefore one-sided and per-entry:

    * an estimate below the true count is a violation (CM never
      under-estimates),
    * a guaranteed floor (``count - error``) above the true count is a
      violation,
    * an over-estimate beyond the entry's own advertised bound is a
      violation.

    Recall against the exact top-k is *reported but not enforced*: the
    candidate identifier is best-effort by design (the table cannot
    enumerate keys), so a missing borderline hitter is not a guarantee
    breach the way it is for Space Saving.  Adversaries that poison
    Space Saving's eviction order (``eviction-poison``) are scored on
    exactly these overestimate bounds.
    """
    processed = counter.processed
    entries = counter.entries()
    bound = float(max((entry.error for entry in entries), default=0))
    answer = [entry.element for entry in entries[:k]]
    exact = true_top_k(truth, k)
    hits = hits_at_k(answer, exact)
    recall = hits / len(exact) if exact else 1.0
    precision = hits / len(answer) if answer else 1.0
    violations = 0
    max_over = 0
    max_under = 0
    for entry in entries:
        true_count = truth.get(entry.element, 0)
        over = entry.count - true_count
        if over > max_over:
            max_over = over
        if -over > max_under:
            max_under = -over
        if entry.count < true_count:
            violations += 1          # CM estimates upper-bound truth
        if entry.count - entry.error > true_count:
            violations += 1          # guaranteed floor must lower-bound
        if over > entry.error + 1e-9:
            violations += 1          # over-estimate beyond widened ε·N
    return AccuracyReport(
        k=k,
        recall_at_k=recall,
        precision_at_k=precision,
        max_overestimate=max_over,
        max_underestimate=max_under,
        error_bound=bound,
        bound_excess=max(0.0, max_over - bound),
        guarantee_violations=violations,
        monitored=len(entries),
        processed=processed,
    )


#: the hand-computed selfcheck case: stream aaaa bb c d at capacity 3.
#: The summary holds a:4(err 0), b:2(err 0), d:2(err 1); the exact top-3
#: is {a, b, c} (c beats d on the str tie-break), so recall = precision
#: = 2/3, the worst over-estimate is d's 2-1 = 1, and the bound is 8/3.
_SELFCHECK_STREAM = ["a", "a", "a", "a", "b", "b", "c", "d"]
_SELFCHECK_EXPECTED = dict(
    k=3,
    recall_at_k=2 / 3,
    precision_at_k=2 / 3,
    max_overestimate=1,
    max_underestimate=0,
    error_bound=8 / 3,
    bound_excess=0.0,
    guarantee_violations=0,
    monitored=3,
    processed=8,
)


def selfcheck() -> None:
    """Re-score the hand-computed case; raise AuditError on any drift."""
    counter = SpaceSaving(capacity=3)
    truth: Dict[Hashable, int] = {}
    for element in _SELFCHECK_STREAM:
        counter.process(element)
        truth[element] = truth.get(element, 0) + 1
    report = score_accuracy(counter, truth, k=3)
    for field, expected in _SELFCHECK_EXPECTED.items():
        actual = getattr(report, field)
        matches = (
            math.isclose(actual, expected, rel_tol=1e-12, abs_tol=1e-12)
            if isinstance(expected, float)
            else actual == expected
        )
        if not matches:
            raise AuditError(
                "accuracy auditor selfcheck failed: "
                f"{field} = {actual!r}, expected {expected!r} "
                "(the scoring helpers have drifted — do not trust this "
                "suite's accuracy numbers)"
            )
