"""Scenario & adversary suite: accuracy under drift, bursts and attacks.

The registry (:mod:`repro.scenarios.registry`) names seeded,
deterministic stream scenarios — benign non-stationarity and white-box
adversaries against Space Saving's eviction policy.  The runner
(:mod:`repro.scenarios.runner`) counts any scenario on any backend and
scores it against exact ground truth; the fuzzer
(:mod:`repro.scenarios.fuzzer`) composes scenarios randomly under seeds
and shrinks any failure to a minimal reproducer with schedcheck's ddmin.

See docs/scenarios.md for the full tour.
"""

from repro.scenarios.adversaries import (
    ATTACK_KEY_BASE,
    eviction_poison_stream,
    hot_key_flood_stream,
)
from repro.scenarios.audit import (
    AccuracyReport,
    hits_at_k,
    score_accuracy,
    score_sketch_accuracy,
    selfcheck,
    true_top_k,
)
from repro.scenarios.fuzzer import (
    LANES,
    FuzzFailure,
    FuzzReport,
    check_stream,
    fuzz,
)
from repro.scenarios.registry import (
    SCENARIOS,
    Scenario,
    ScenarioParams,
    build_stream,
    get_scenario,
)
from repro.scenarios.runner import (
    BACKENDS,
    SKETCH_BACKENDS,
    ScenarioRun,
    run_backend,
    run_scenario,
)

__all__ = [
    "ATTACK_KEY_BASE",
    "AccuracyReport",
    "BACKENDS",
    "FuzzFailure",
    "FuzzReport",
    "LANES",
    "SCENARIOS",
    "SKETCH_BACKENDS",
    "Scenario",
    "ScenarioParams",
    "ScenarioRun",
    "build_stream",
    "check_stream",
    "eviction_poison_stream",
    "fuzz",
    "get_scenario",
    "hits_at_k",
    "hot_key_flood_stream",
    "run_backend",
    "run_scenario",
    "score_accuracy",
    "score_sketch_accuracy",
    "selfcheck",
    "true_top_k",
]
