"""Adversarial stream constructions against Space Saving.

Two white-box attackers, both deterministic under a seed:

``hot_key_flood_stream``
    Lets a legitimate zipfian prefix establish the true hot set, then
    floods a block of fresh attacker keys hard enough to push them into
    the summary's top-k, crowding real heavy hitters out of reported
    answers (a recall/precision attack, not a bound attack).

``eviction_poison_stream``
    Targets the min bucket directly.  A never-repeating singleton flood
    forces an Overwrite per step, pumping ``min_freq`` — the cached
    per-element error bound — toward its ceiling ``N/capacity``.  A
    shadow SpaceSaving (same capacity: the white-box part) watches which
    "victim" keys have been evicted and probes exactly those, so each
    probe re-inserts a nearly-unseen key with count ``min+1`` and error
    ``min``: the summary then reports near-``ε·N`` over-estimates for
    keys that barely occurred.  Space Saving's guarantees still hold —
    this adversary *saturates* the ε·N bound, it cannot break it — which
    is precisely what the accuracy audit pins.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.space_saving import SpaceSaving
from repro.errors import StreamError
from repro.workloads.zipf import zipf_stream

#: attacker keys live far above any scenario alphabet
ATTACK_KEY_BASE = 1_000_000


def hot_key_flood_stream(
    length: int,
    alphabet: int,
    capacity: int,
    flood_keys: int = 0,
    flood_fraction: float = 0.5,
    alpha: float = 1.2,
    seed: int = 0,
) -> List[int]:
    """Legitimate zipf prefix, then a flood of attacker keys.

    The flood phase cycles ``flood_keys`` fresh keys (default: half the
    summary capacity) for ``flood_fraction`` of the stream, with a thin
    uniform background so legitimate traffic never fully stops.
    """
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    if alphabet < 1:
        raise StreamError(f"alphabet must be >= 1, got {alphabet}")
    if capacity < 1:
        raise StreamError(f"capacity must be >= 1, got {capacity}")
    if not 0 <= flood_fraction <= 1:
        raise StreamError(
            f"flood_fraction must be in [0, 1], got {flood_fraction}"
        )
    if flood_keys < 0:
        raise StreamError(f"flood_keys must be >= 0, got {flood_keys}")
    keys = flood_keys or max(1, capacity // 2)
    flood_len = int(length * flood_fraction)
    legit_len = length - flood_len
    stream = zipf_stream(legit_len, alphabet, alpha, seed=seed)
    rng = random.Random(seed)
    for i in range(flood_len):
        if rng.random() < 0.25:
            stream.append(rng.randrange(alphabet))
        else:
            stream.append(ATTACK_KEY_BASE + i % keys)
    return stream


def eviction_poison_stream(
    length: int,
    capacity: int,
    victims: int = 8,
    probe_every: int = 24,
    seed: int = 0,
) -> List[int]:
    """Shadow-guided min-bucket poisoning (see module docstring).

    Keys ``0 .. victims-1`` are the victims: each appears once up front,
    then only when the shadow summary confirms it has been evicted —
    every probe therefore lands an Overwrite that inherits the current
    ``min_freq`` as error.  All other elements are fresh singletons
    (``ATTACK_KEY_BASE`` upward) that keep the min bucket climbing.
    """
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    if capacity < 1:
        raise StreamError(f"capacity must be >= 1, got {capacity}")
    if victims < 1:
        raise StreamError(f"victims must be >= 1, got {victims}")
    if probe_every < 0:
        raise StreamError(f"probe_every must be >= 0, got {probe_every}")
    shadow = SpaceSaving(capacity=capacity)
    rng = random.Random(seed)
    victim_keys = list(range(victims))
    out: List[int] = []
    for victim in victim_keys:
        if len(out) >= length:
            return out
        shadow.process(victim)
        out.append(victim)
    fresh = ATTACK_KEY_BASE
    step = 0
    while len(out) < length:
        step += 1
        key = None
        if probe_every and step % probe_every == 0:
            evicted = [v for v in victim_keys if v not in shadow]
            if evicted:
                key = evicted[rng.randrange(len(evicted))]
        if key is None:
            key = fresh
            fresh += 1
        shadow.process(key)
        out.append(key)
    return out
