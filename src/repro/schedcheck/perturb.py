"""Seeded scheduling perturbations for the deterministic engine.

The engine's default schedule is a pure function of the thread programs:
FIFO core hand-off, quantum-based preemption, fixed cycle costs.  That
determinism is great for reproducibility but means every test run
explores exactly *one* interleaving.  :class:`SchedulePerturber` widens
the explored space while keeping each individual schedule reproducible:

* **Ready-queue reordering** — when several threads wait for a core, the
  next one to run may be picked from inside the queue instead of the
  head;
* **Forced preemption** — a thread may lose its core right after an
  atomic or queue/structure effect even though its quantum has cycles
  left, which is exactly where delegation-protocol races hide;
* **Jittered cost tables** — :func:`jittered_costs` derives a cost model
  whose relative costs are randomly scaled, shifting every timing
  relationship between threads.

Every perturbation is drawn from a seeded RNG and recorded as a
:class:`Decision` keyed by its *opportunity index* (the how-many-th time
the engine offered that kind of choice).  A recorded decision list can
be **replayed** — in full, to reproduce a failing schedule exactly, or
as a subset, which is what the :mod:`shrinker <repro.schedcheck.shrink>`
exploits to minimize a failing schedule.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.simcore.costs import CostModel
from repro.simcore.effects import AtomicOp, Effect

#: effect tags around which forced preemption is interesting — the
#: delegation queues, the hash-entry claim counters, and the summary
#: structure mutations (plus any AtomicOp regardless of tag)
PREEMPT_TAGS = frozenset(("bucket", "hash", "structure", "minmax"))

#: decision kinds
PICK = "pick"          #: run the waiter at `arg` (offset from queue head)
PREEMPT = "preempt"    #: preempt the current thread at this boundary


@dataclasses.dataclass(frozen=True)
class Decision:
    """One non-default scheduling choice at one opportunity point."""

    kind: str      #: PICK or PREEMPT
    index: int     #: opportunity counter for that kind (0-based)
    arg: int = 0   #: PICK: offset into the waiter queue; PREEMPT: unused

    def __str__(self) -> str:
        if self.kind == PICK:
            return f"pick[{self.index}] -> waiter+{self.arg}"
        return f"preempt[{self.index}]"


class SchedulePerturber:
    """Engine ``sched_policy`` that perturbs, records and replays.

    In *generate* mode (``replay=None``) each opportunity consults the
    seeded RNG; every non-default choice is appended to
    :attr:`decisions`.  In *replay* mode the RNG is never consulted:
    only the supplied decisions are applied (at their recorded
    opportunity indices) and everything else takes the default path.
    Replaying the full recorded list of a generate run reproduces that
    run's schedule exactly; replaying a subset yields a new — still
    deterministic — schedule, which is what shrinking relies on.
    """

    def __init__(
        self,
        seed: int | str = 0,
        reorder_p: float = 0.25,
        preempt_p: float = 0.10,
        replay: Optional[Sequence[Decision]] = None,
    ) -> None:
        if not 0 <= reorder_p <= 1:
            raise ConfigurationError(
                f"reorder_p must be in [0, 1], got {reorder_p}"
            )
        if not 0 <= preempt_p <= 1:
            raise ConfigurationError(
                f"preempt_p must be in [0, 1], got {preempt_p}"
            )
        self.seed = seed
        self.reorder_p = reorder_p
        self.preempt_p = preempt_p
        self._rng = random.Random(f"schedcheck:{seed}")
        self._counts: Dict[str, int] = {PICK: 0, PREEMPT: 0}
        self.decisions: List[Decision] = []
        self._replay: Optional[Dict[Tuple[str, int], int]] = None
        if replay is not None:
            self._replay = {(d.kind, d.index): d.arg for d in replay}

    # -- engine callbacks ------------------------------------------------
    def pick_waiter(self, pending: int) -> int:
        """Offset (0 = FIFO head) of the waiter to run next."""
        index = self._counts[PICK]
        self._counts[PICK] = index + 1
        if self._replay is not None:
            offset = self._replay.get((PICK, index), 0)
            # a shrunk replay may reach this opportunity with a shorter
            # queue than the recording had; clamp instead of failing
            return min(offset, pending - 1)
        if self._rng.random() < self.reorder_p:
            offset = self._rng.randrange(1, pending)
            self.decisions.append(Decision(PICK, index, offset))
            return offset
        return 0

    def force_preempt(self, effect: Effect) -> bool:
        """Preempt the thread that just completed ``effect``?"""
        if not (isinstance(effect, AtomicOp) or effect.tag in PREEMPT_TAGS):
            return False
        index = self._counts[PREEMPT]
        self._counts[PREEMPT] = index + 1
        if self._replay is not None:
            return (PREEMPT, index) in self._replay
        if self._rng.random() < self.preempt_p:
            self.decisions.append(Decision(PREEMPT, index))
            return True
        return False

    # -- inspection ------------------------------------------------------
    @property
    def opportunities(self) -> Dict[str, int]:
        """How many choice points of each kind the run offered."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "replay" if self._replay is not None else "generate"
        return (
            f"SchedulePerturber(seed={self.seed!r}, mode={mode}, "
            f"decisions={len(self.decisions)})"
        )


def jittered_costs(
    base: CostModel, seed: int | str, spread: float = 0.3
) -> CostModel:
    """A cost model with every cost scaled by a seeded random factor.

    Each cost field is independently multiplied by a factor drawn
    uniformly from ``[1 - spread, 1 + spread]`` (never below 1 cycle),
    so the *relative timing* of hash probes, queue operations, line
    transfers and context switches differs between schedules — shaking
    loose races that a single calibration would always order the same
    way.  The same ``(base, seed, spread)`` always yields the same model.
    """
    if not 0 <= spread < 1:
        raise ConfigurationError(f"spread must be in [0, 1), got {spread}")
    if spread == 0:
        return base
    rng = random.Random(f"schedcheck-jitter:{seed}")
    updates = {}
    for field in dataclasses.fields(base):
        factor = 1.0 + rng.uniform(-spread, spread)
        updates[field.name] = max(1, round(getattr(base, field.name) * factor))
    return base.replace(**updates)
