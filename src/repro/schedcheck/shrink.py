"""Shrinking a failing schedule to a minimal reproducer.

A failing exploration run carries the full list of non-default
scheduling decisions the perturber made.  Because replaying any
*subset* of those decisions still yields a deterministic schedule (the
unselected opportunities simply take the default path), the classic
delta-debugging algorithm (ddmin, Zeller & Hildebrandt 2002) applies
directly: keep removing chunks of decisions while the audit still
fails, until the list is 1-minimal — removing any single remaining
decision makes the failure disappear.

The result renders as a human-readable reproducer: the seed, the
surviving decisions in engine order, the audit error, and the ASCII
core timeline of the minimal schedule (via
:class:`~repro.simcore.trace.TraceRecorder`).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Optional, Sequence

from repro.core.counters import Element
from repro.schedcheck.adapters import SchemeSpec
from repro.schedcheck.explorer import (
    ExploreConfig,
    ScheduleOutcome,
    run_schedule,
)
from repro.schedcheck.perturb import Decision


@dataclasses.dataclass
class ShrinkResult:
    """A minimized failing schedule."""

    original: ScheduleOutcome
    minimal: ScheduleOutcome
    runs: int                      #: replays spent shrinking
    timeline: str = ""             #: ASCII core chart of the minimal run
    #: the trace of the minimal replay (a :class:`~repro.simcore.trace.
    #: TraceRecorder`), kept so callers can export the reproducer as a
    #: Chrome trace (``schedcheck --trace-dir``)
    recorder: Optional[Any] = None

    def write_chrome_trace(self, path: str) -> int:
        """Export the minimal replay's trace as Chrome trace-event JSON.

        Returns the number of exported spans.  The recorder's truncation
        count propagates into the artifact's ``otherData.truncated``.
        """
        from repro.obs.export import write_chrome_trace
        from repro.obs.tracing import spans_from_sim_trace

        if self.recorder is None:
            raise ValueError("shrink result carries no trace recorder")
        spans, dropped = spans_from_sim_trace(self.recorder)
        write_chrome_trace(
            path, spans, scale=1.0, truncated=dropped,
            meta={
                "mode": "schedcheck",
                "scheme": self.minimal.scheme,
                "seed_key": self.minimal.seed_key,
                "violation": f"{self.minimal.error_type}: {self.minimal.error}",
                "decisions": [str(d) for d in self.decisions],
            },
        )
        return len(spans)

    @property
    def decisions(self) -> List[Decision]:
        return self.minimal.decisions

    def render(self) -> str:
        """The human-readable reproducer."""
        lines = [
            f"=== schedcheck reproducer: {self.minimal.scheme} ===",
            f"seed key : {self.minimal.seed_key}",
            f"trace    : {self.minimal.trace_hash}",
            f"violation: {self.minimal.error_type}: {self.minimal.error}",
            f"shrunk   : {len(self.original.decisions)} -> "
            f"{len(self.decisions)} scheduling decisions "
            f"({self.runs} replays)",
        ]
        if self.decisions:
            lines.append("decisions (replay in this order):")
            for decision in self.decisions:
                lines.append(f"  - {decision}")
        else:
            lines.append("decisions: none (fails under the default schedule)")
        if self.timeline:
            lines.append(self.timeline)
        return "\n".join(lines)


def ddmin(
    items: Sequence[Any],
    still_fails: Callable[[List[Any]], bool],
    max_tests: int = 400,
) -> List[Any]:
    """Classic delta debugging: a 1-minimal failing subset of ``items``.

    ``still_fails(subset)`` must be deterministic.  The caller is
    responsible for ``still_fails(list(items))`` being true.  Stops
    early (returning the best-so-far) when ``max_tests`` replays have
    been spent; the result is then small but possibly not 1-minimal.
    """
    current = list(items)
    if not current:
        return current
    # cheapest possible outcome first: no decision needed at all (the
    # failure reproduces under the default schedule)
    if still_fails([]):
        return []
    tests = 1
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            complement = current[:start] + current[start + chunk:]
            tests += 1
            if tests > max_tests:
                return current
            if still_fails(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def shrink_outcome(
    spec: SchemeSpec,
    stream: Sequence[Element],
    config: ExploreConfig,
    failing: ScheduleOutcome,
    patch: Optional[Callable[[], Any]] = None,
    max_tests: int = 400,
) -> ShrinkResult:
    """Minimize ``failing``'s decision list via ddmin.

    ``patch`` must match whatever was active when the failure was found
    (the mutation self-test passes its mutation here).  The minimal
    schedule is replayed once more with tracing to render the timeline.
    """
    runs = 0

    def replay(decisions: List[Decision]) -> ScheduleOutcome:
        nonlocal runs
        runs += 1
        return run_schedule(
            spec,
            stream,
            config,
            failing.seed_key,
            index=failing.index,
            replay=decisions,
            patch=patch,
        )

    def still_fails(decisions: List[Decision]) -> bool:
        return not replay(decisions).ok

    # Sanity: the full decision list must reproduce the failure (replay
    # is exact, so anything else means the harness itself is broken).
    original_replay = replay(list(failing.decisions))
    if original_replay.ok:
        raise AssertionError(
            f"schedule {failing.seed_key} did not reproduce under full "
            "replay; the perturber's replay mode is broken"
        )
    minimal_decisions = ddmin(
        failing.decisions, still_fails, max_tests=max_tests
    )
    minimal = replay(minimal_decisions)
    recorder = replay_trace(
        spec, stream, config, failing, minimal_decisions, patch=patch
    )
    return ShrinkResult(
        original=failing,
        minimal=minimal,
        runs=runs,
        timeline=recorder.timeline(width=72),
        recorder=recorder,
    )


def render_timeline(
    spec: SchemeSpec,
    stream: Sequence[Element],
    config: ExploreConfig,
    failing: ScheduleOutcome,
    decisions: Sequence[Decision],
    patch: Optional[Callable[[], Any]] = None,
    width: int = 72,
) -> str:
    """Replay a decision list once more and chart who ran where, when."""
    recorder = replay_trace(
        spec, stream, config, failing, decisions, patch=patch
    )
    return recorder.timeline(width=width)


def replay_trace(
    spec: SchemeSpec,
    stream: Sequence[Element],
    config: ExploreConfig,
    failing: ScheduleOutcome,
    decisions: Sequence[Decision],
    patch: Optional[Callable[[], Any]] = None,
):
    """Replay a decision list with tracing; returns the TraceRecorder.

    The recorder feeds both the ASCII reproducer timeline and the
    Chrome-trace export (:meth:`ShrinkResult.write_chrome_trace`).
    """
    from repro.schedcheck.explorer import AuditProbe  # noqa: F401 (doc link)
    from repro.schedcheck.perturb import SchedulePerturber, jittered_costs
    from repro.simcore.engine import Engine
    from repro.simcore.trace import TraceRecorder
    from repro.schedcheck.adapters import HarnessParams

    tracer = TraceRecorder()
    costs = jittered_costs(config.costs, failing.seed_key, config.jitter)
    perturber = SchedulePerturber(
        failing.seed_key, config.reorder_p, config.preempt_p,
        replay=list(decisions),
    )
    params = HarnessParams(
        threads=config.threads,
        capacity=config.capacity,
        machine=config.machine(),
        costs=costs,
        engine_factory=lambda machine, costs_: Engine(
            machine=machine, costs=costs_, tracer=tracer,
            sched_policy=perturber,
        ),
        audit_binder=None,
    )
    try:
        if patch is not None:
            with patch():
                spec.run(stream, params)
        else:
            spec.run(stream, params)
    except Exception:
        pass  # the failure is the point; we only want the trace
    return tracer
