"""Scheme adapters: run any driver under a schedcheck harness.

Each :class:`SchemeSpec` knows how to build the right driver config for
one scheme, how lax its Space Saving guarantees are
(:class:`~repro.schedcheck.auditor.Tolerance`), and which of the
driver's live structures the mid-run auditor should watch.  The specs
plug the harness's ``engine_factory`` / ``audit_binder`` hooks into the
unmodified drivers — schedcheck never duplicates driver logic.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional, Sequence

from repro.core.counters import Element
from repro.errors import ConfigurationError
from repro.parallel.base import SchemeConfig, SchemeResult
from repro.schedcheck.auditor import EXACT, HYBRID, MERGED, Tolerance
from repro.simcore.costs import CostModel
from repro.simcore.machine import MachineSpec


@dataclasses.dataclass(frozen=True)
class HarnessParams:
    """Everything one perturbed run needs besides the stream."""

    threads: int = 4
    capacity: int = 64
    machine: MachineSpec = dataclasses.field(default_factory=MachineSpec)
    costs: CostModel = dataclasses.field(default_factory=CostModel)
    engine_factory: Optional[Callable[..., Any]] = None
    audit_binder: Optional[Callable[..., None]] = None

    def scheme_config(self, config_cls=SchemeConfig, **extra: Any):
        return config_cls(
            threads=self.threads,
            capacity=self.capacity,
            machine=self.machine,
            costs=self.costs,
            engine_factory=self.engine_factory,
            audit_binder=self.audit_binder,
            **extra,
        )


def _run_cots(
    stream: Sequence[Element], params: HarnessParams, preaggregate: bool
) -> SchemeResult:
    from repro.cots.framework import CoTSRunConfig, run_cots

    # batch=4: small cursor claims maximize cross-thread interleaving on
    # the delegation protocol, which is what schedcheck is probing (the
    # default 32 optimizes throughput, not schedule diversity)
    config = params.scheme_config(
        CoTSRunConfig, preaggregate=preaggregate, batch=4
    )
    # check=False: the schedcheck auditor is the single judge, so that a
    # violation surfaces as an AuditError naming the broken invariant
    # rather than the driver's own post-run assertion
    return run_cots(stream, config, check=False)


def _run_shared(stream: Sequence[Element], params: HarnessParams) -> SchemeResult:
    from repro.parallel.shared import run_shared

    return run_shared(stream, params.scheme_config())


def _run_hybrid(stream: Sequence[Element], params: HarnessParams) -> SchemeResult:
    from repro.parallel.hybrid import run_hybrid

    return run_hybrid(stream, params.scheme_config(), flush_every=128)


def _run_independent(
    stream: Sequence[Element], params: HarnessParams
) -> SchemeResult:
    from repro.parallel.independent import run_independent

    return run_independent(
        stream, params.scheme_config(), merge_every=max(1, len(stream) // 4)
    )


def _run_sequential(
    stream: Sequence[Element], params: HarnessParams
) -> SchemeResult:
    from repro.parallel.sequential import run_sequential

    return run_sequential(stream, params.scheme_config())


@dataclasses.dataclass(frozen=True)
class SchemeSpec:
    """One explorable scheme: driver entry point plus audit posture."""

    name: str
    runner: Callable[[Sequence[Element], HarnessParams], SchemeResult]
    tolerance: Tolerance = EXACT
    #: does bind_audit expose a ConcurrentStreamSummary as ``summary``?
    concurrent_summary: bool = False

    def run(
        self, stream: Sequence[Element], params: HarnessParams
    ) -> SchemeResult:
        return self.runner(stream, params)


SCHEMES: Dict[str, SchemeSpec] = {
    spec.name: spec
    for spec in (
        SchemeSpec(
            "cots",
            lambda stream, params: _run_cots(stream, params, False),
            EXACT,
            concurrent_summary=True,
        ),
        # the batched fast lane (pre-aggregated bulk delegations) must
        # stay observationally equivalent to per-element delegation
        SchemeSpec(
            "cots-pre",
            lambda stream, params: _run_cots(stream, params, True),
            EXACT,
            concurrent_summary=True,
        ),
        SchemeSpec("shared", _run_shared, EXACT),
        SchemeSpec("hybrid", _run_hybrid, HYBRID),
        SchemeSpec("independent", _run_independent, MERGED),
        SchemeSpec("sequential", _run_sequential, EXACT),
    )
}


def get_scheme(name: str) -> SchemeSpec:
    """Look up a scheme by name (raise a helpful error otherwise)."""
    try:
        return SCHEMES[name]
    except KeyError:
        known = ", ".join(sorted(SCHEMES))
        raise ConfigurationError(
            f"unknown scheme {name!r}; known schemes: {known}"
        ) from None
