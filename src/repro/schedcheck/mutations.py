"""Deliberate protocol bugs for testing the harness itself.

A fuzzing harness that never catches anything proves nothing.  Each
mutation here is a context manager that monkey-patches one step of the
:class:`~repro.cots.summary.ConcurrentStreamSummary` delegation
protocol with a realistic concurrency bug — the kind a reviewer might
plausibly let through.  The schedcheck self-test (and the
``--mutate`` CLI flag) runs the explorer under a mutation and demands
that (a) at least one schedule fails its audit and (b) the shrinker
reduces the failure to a small decision list.

The patched methods are verbatim copies of the originals with one
marked line changed, so the injected bug is exactly the delta.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator

from repro.cots.summary import (
    ConcurrentStreamSummary,
    TAG_BUCKET,
    TAG_HASH,
    TAG_STRUCTURE,
)
from repro.cots.requests import IncrementRequest
from repro.errors import ConfigurationError, ProtocolError
from repro.simcore.effects import Compute


def _complete_element_double(self, entry, ctx) -> Iterator:
    """complete_element with the relinquish off-by-one: the occurrence
    that re-armed the counter is counted *again* in the bulk increment,
    duplicating delegated requests."""
    if self.costs.relinquish_check:
        yield Compute(self.costs.relinquish_check, TAG_HASH)
    released = yield entry.count.cas(1, 0, TAG_HASH)
    if released:
        return
    logged = yield entry.count.swap(1, TAG_HASH)
    amount = logged  # BUG: should be logged - 1
    node = entry.node
    if node is None or node.bucket is None:
        raise ProtocolError(
            f"relinquish of {entry.element!r} without a placed node"
        )
    self.stats["relinquish_bulk"] += 1
    yield from self.deliver(IncrementRequest(node, amount), node.bucket, ctx)


def _retire_min_dropping(self, bucket, ctx) -> Iterator:
    """_retire_min that clears the retired bucket's queue without
    transferring it to the new minimum: every request still pending at
    retirement (and the element counts it carries) is silently lost."""
    costs = self.costs
    new_min = bucket.next
    hops = 1
    while new_min is not None and new_min.gc_marked:
        new_min = new_min.next
        hops += 1
    self.min_bucket = new_min
    yield Compute(costs.pointer_chase * hops, TAG_STRUCTURE)
    if bucket.queue:
        yield Compute(costs.queue_enqueue * len(bucket.queue), TAG_BUCKET)
        bucket.queue.clear()  # BUG: requests must move to the new minimum
        self.stats["queue_transfers"] += 1
    if bucket.size == 0:
        bucket.gc_marked = True
        self.stats["gc_buckets"] += 1


def _drain_skipping_gc(self, bucket, ctx) -> Iterator:
    """drain that releases an emptied non-min bucket without marking it
    for garbage collection, leaving an empty bucket reachable forever."""
    costs = self.costs
    if bucket.gc_marked:
        yield bucket.owner.store(0, TAG_BUCKET)
        return
    while True:
        while bucket.queue:
            pending = len(bucket.queue)
            yield Compute(costs.queue_dequeue * pending, TAG_BUCKET)
            if pending > 1:
                self.stats["bulk_drains"] += 1
                self.stats["bulk_drained_requests"] += pending
            for _ in range(pending):
                if not bucket.queue:
                    break
                request = bucket.queue.popleft()
                yield from self._process(request, bucket, ctx)
                if bucket.gc_marked:
                    yield bucket.owner.store(0, TAG_BUCKET)
                    return
        if (
            bucket.size == 0
            and not bucket.queue
            and bucket is not self.min_bucket
        ):
            # BUG: forgot `bucket.gc_marked = True` before releasing
            self.stats["gc_buckets"] += 1
            yield bucket.owner.store(0, TAG_BUCKET)
            return
        yield bucket.owner.store(0, TAG_BUCKET)
        if bucket.queue and not bucket.gc_marked:
            reacquired = yield bucket.owner.cas(0, 1, TAG_BUCKET)
            if reacquired:
                if bucket.gc_marked:
                    yield bucket.owner.store(0, TAG_BUCKET)
                    return
                continue
        return


@contextlib.contextmanager
def _patched(attribute: str, replacement):
    original = getattr(ConcurrentStreamSummary, attribute)
    setattr(ConcurrentStreamSummary, attribute, replacement)
    try:
        yield
    finally:
        setattr(ConcurrentStreamSummary, attribute, original)


def double_relinquish():
    """Counts delegated occurrences twice on bulk relinquish."""
    return _patched("complete_element", _complete_element_double)


def drop_queue_transfer():
    """Loses the pending queue when the minimum bucket retires."""
    return _patched("_retire_min", _retire_min_dropping)


def skip_empty_gc():
    """Never garbage-marks emptied buckets during drains."""
    return _patched("drain", _drain_skipping_gc)


#: name -> context-manager factory, for the CLI's ``--mutate`` flag
MUTATIONS: Dict[str, Callable] = {
    "double-relinquish": double_relinquish,
    "drop-queue-transfer": drop_queue_transfer,
    "skip-empty-gc": skip_empty_gc,
}


def get_mutation(name: str) -> Callable:
    try:
        return MUTATIONS[name]
    except KeyError:
        known = ", ".join(sorted(MUTATIONS))
        raise ConfigurationError(
            f"unknown mutation {name!r}; known mutations: {known}"
        ) from None
