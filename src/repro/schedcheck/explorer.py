"""The schedule explorer: N perturbed runs, each fully audited.

One :func:`explore` call takes a scheme list and a schedule budget and,
per scheme, runs the *same* thread program under many distinct but
individually reproducible schedules: schedule ``i`` derives its own
sub-seed from ``(seed, scheme, i)``, which feeds both the scheduling
perturber and the cost-table jitter.  Every run is traced; a sha256 hash
over the trace identifies the schedule, so distinctness is measured on
what actually executed, not on what was randomized.

Each run is audited three ways:

* **mid-run** — an engine probe re-checks the structural invariants of
  the live summary every ``check_every`` engine events;
* **quiescent** — structure, conservation, epsilon bound, per-element
  error bounds, heavy-hitter presence (see
  :mod:`repro.schedcheck.auditor`);
* **differential** — the run's counter against a sequential Space
  Saving pass over the same stream, within the paper's error bounds.

Failures carry the recorded scheduling decisions, ready for
:mod:`repro.schedcheck.shrink` to minimize.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.counters import Element
from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError, ReproError
from repro.schedcheck.adapters import HarnessParams, SchemeSpec, get_scheme
from repro.schedcheck.auditor import (
    audit_concurrent_summary,
    audit_counts,
    audit_differential,
    audit_space_saving,
    exact_counts,
)
from repro.schedcheck.perturb import Decision, SchedulePerturber, jittered_costs
from repro.simcore.costs import CostModel
from repro.simcore.engine import Engine
from repro.simcore.machine import MachineSpec
from repro.simcore.trace import TraceRecorder


@dataclasses.dataclass(frozen=True)
class ExploreConfig:
    """Knobs for one exploration campaign."""

    schedules: int = 50        #: perturbed runs per scheme
    seed: int | str = 0        #: campaign master seed
    length: int = 1500         #: stream length
    alphabet: int = 300        #: distinct elements
    alpha: float = 1.3         #: zipf skew
    threads: int = 4
    capacity: int = 64
    #: fewer cores than threads on purpose: scheduling choices (which
    #: waiter runs next, forced preemption) only exist under
    #: oversubscription, so an undersubscribed machine would leave the
    #: perturber with nothing to perturb
    cores: int = 2
    check_every: int = 512     #: mid-run audit stride in engine events (0=off)
    jitter: float = 0.3        #: cost-table jitter spread
    reorder_p: float = 0.25    #: ready-queue reorder probability
    preempt_p: float = 0.10    #: forced-preemption probability
    costs: CostModel = dataclasses.field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.schedules < 1:
            raise ConfigurationError(
                f"schedules must be >= 1, got {self.schedules}"
            )
        if self.length < 1:
            raise ConfigurationError(f"length must be >= 1, got {self.length}")
        if self.check_every < 0:
            raise ConfigurationError(
                f"check_every must be >= 0, got {self.check_every}"
            )

    def machine(self) -> MachineSpec:
        return MachineSpec(cores=self.cores)

    def make_stream(self) -> List[Element]:
        from repro.workloads import zipf_stream

        return list(
            zipf_stream(
                self.length,
                self.alphabet,
                self.alpha,
                seed=_stable_int(f"{self.seed}:stream"),
            )
        )

    def sub_seed(self, scheme: str, index: int) -> str:
        """The reproducible per-schedule seed key."""
        return f"{self.seed}:{scheme}:{index}"


def _stable_int(key: str) -> int:
    """A stable small integer derived from a string key."""
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:4], "big")


def trace_hash(tracer: TraceRecorder) -> str:
    """Schedule identity: sha256 over the executed-event sequence."""
    digest = hashlib.sha256()
    for event in tracer.events:
        digest.update(
            f"{event.thread}|{event.core}|{event.effect}|{event.tag}|"
            f"{event.start}|{event.end}\n".encode()
        )
    return digest.hexdigest()


class AuditProbe:
    """Engine probe running mid-run structural audits at a stride."""

    __slots__ = ("spec", "targets", "stride", "_countdown")

    def __init__(self, spec: SchemeSpec, targets: Dict[str, Any], stride: int):
        self.spec = spec
        self.targets = targets
        self.stride = stride
        self._countdown = stride

    def __call__(self, engine: Engine) -> None:
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.stride
        summary = self.targets.get("summary")
        if summary is not None:
            audit_concurrent_summary(
                summary, mid_run=True, scheme=self.spec.name
            )
        merged = self.spec.tolerance.kind == "merged"
        counter = self.targets.get("counter")
        if counter is not None:
            audit_space_saving(counter, self.spec.name, merged=merged)
        for local in self.targets.get("locals") or ():
            audit_space_saving(local, self.spec.name)


@dataclasses.dataclass
class ScheduleOutcome:
    """Verdict of one perturbed run."""

    scheme: str
    index: int
    seed_key: str
    trace_hash: str
    decisions: List[Decision]
    ok: bool
    error: Optional[str] = None          #: failure message (audit or crash)
    error_type: Optional[str] = None     #: exception class name

    def __str__(self) -> str:
        state = "ok" if self.ok else f"FAIL ({self.error_type}: {self.error})"
        return (
            f"{self.scheme}#{self.index} [{self.trace_hash[:12]}] "
            f"{len(self.decisions)} decisions: {state}"
        )


@dataclasses.dataclass
class SchemeReport:
    """All outcomes of one scheme's exploration."""

    scheme: str
    outcomes: List[ScheduleOutcome]

    @property
    def distinct_schedules(self) -> int:
        return len({outcome.trace_hash for outcome in self.outcomes})

    @property
    def failures(self) -> List[ScheduleOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def summary_line(self) -> str:
        return (
            f"{self.scheme}: {len(self.outcomes)} schedules, "
            f"{self.distinct_schedules} distinct, "
            f"{len(self.failures)} violations"
        )


def run_schedule(
    spec: SchemeSpec,
    stream: Sequence[Element],
    config: ExploreConfig,
    seed_key: str,
    index: int = 0,
    replay: Optional[Sequence[Decision]] = None,
    patch: Optional[Callable[[], Any]] = None,
    truth: Optional[Dict[Element, int]] = None,
    reference: Optional[SpaceSaving] = None,
) -> ScheduleOutcome:
    """Run ``spec`` once under the schedule derived from ``seed_key``.

    ``replay`` switches the perturber to replay mode (used by the
    shrinker); ``patch`` is an optional context-manager factory applied
    around the run (used by mutation self-tests).  ``truth`` and
    ``reference`` amortize the exact count and the sequential reference
    run across schedules of the same stream.
    """
    costs = jittered_costs(config.costs, seed_key, config.jitter)
    perturber = SchedulePerturber(
        seed_key, config.reorder_p, config.preempt_p, replay=replay
    )
    tracer = TraceRecorder()

    def engine_factory(machine: MachineSpec, costs_: CostModel) -> Engine:
        return Engine(
            machine=machine, costs=costs_, tracer=tracer,
            sched_policy=perturber,
        )

    def audit_binder(engine: Engine, targets: Dict[str, Any]) -> None:
        if config.check_every > 0:
            engine.probe = AuditProbe(spec, targets, config.check_every)

    params = HarnessParams(
        threads=config.threads,
        capacity=config.capacity,
        machine=config.machine(),
        costs=costs,
        engine_factory=engine_factory,
        audit_binder=audit_binder,
    )
    error: Optional[str] = None
    error_type: Optional[str] = None
    try:
        if patch is not None:
            with patch():
                result = spec.run(stream, params)
        else:
            result = spec.run(stream, params)
        _quiescent_audit(spec, result, stream, truth, reference)
    except ReproError as exc:
        error = str(exc)
        error_type = type(exc).__name__
    return ScheduleOutcome(
        scheme=spec.name,
        index=index,
        seed_key=seed_key,
        trace_hash=trace_hash(tracer),
        decisions=list(perturber.decisions) if replay is None else list(replay),
        ok=error is None,
        error=error,
        error_type=error_type,
    )


def _quiescent_audit(
    spec: SchemeSpec,
    result,
    stream: Sequence[Element],
    truth: Optional[Dict[Element, int]],
    reference: Optional[SpaceSaving],
) -> None:
    framework = result.extras.get("framework") if result.extras else None
    if spec.concurrent_summary and framework is not None:
        audit_concurrent_summary(framework.summary, scheme=spec.name)
    counter = result.counter
    audit_space_saving(counter, spec.name, merged=spec.tolerance.kind == "merged")
    audit_counts(counter, stream, spec.name, spec.tolerance, truth=truth)
    audit_differential(
        counter, stream, spec.name, spec.tolerance, reference=reference
    )


def explore(
    schemes: Sequence[str],
    config: Optional[ExploreConfig] = None,
    patch: Optional[Callable[[], Any]] = None,
    progress: Optional[Callable[[ScheduleOutcome], None]] = None,
) -> Dict[str, SchemeReport]:
    """Explore ``config.schedules`` perturbed schedules per scheme.

    This is the package's main entry point (the engine behind
    ``python -m repro schedcheck``).  For each name in ``schemes``
    (resolved via :func:`~repro.schedcheck.adapters.get_scheme`:
    ``cots``, ``cots-pre``, ``shared``, ``hybrid``, ``independent``,
    ``sequential``) it runs the *unmodified* driver
    ``config.schedules`` times on the same seeded stream, each time
    under a differently perturbed scheduler — ready-queue reordering,
    forced preemption around atomic/queue effects, jittered cost
    tables — and audits every run for structural soundness, count
    conservation, the Space Saving error bounds, and differential
    equivalence against a sequential reference.

    Everything is deterministic per ``(config.seed, scheme, index)``:
    a failing schedule's decision trace replays exactly, which is what
    makes :func:`~repro.schedcheck.shrink.shrink_outcome` able to
    delta-debug it down to a minimal reproducer.  Schedule
    *distinctness* is verified by trace hash, so N schedules are N
    genuinely different interleavings, not N reruns.

    Returns one :class:`SchemeReport` per scheme name (in input
    order); ``report.failures`` holds the violating
    :class:`ScheduleOutcome` objects, ``report.summary_line()`` the
    one-line verdict.  ``patch`` (a context-manager factory) wraps
    every run — the mutation self-test uses it to verify the harness
    actually catches injected protocol bugs.  ``progress`` is called
    with each finished outcome (the CLI's ``--verbose``).
    """
    config = config if config is not None else ExploreConfig()
    stream = config.make_stream()
    truth = exact_counts(stream)
    reports: Dict[str, SchemeReport] = {}
    for name in schemes:
        spec = get_scheme(name)
        reference = SpaceSaving(capacity=config.capacity)
        reference.process_many(stream)
        outcomes: List[ScheduleOutcome] = []
        for index in range(config.schedules):
            outcome = run_schedule(
                spec,
                stream,
                config,
                config.sub_seed(name, index),
                index=index,
                patch=patch,
                truth=truth,
                reference=reference,
            )
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        reports[name] = SchemeReport(scheme=name, outcomes=outcomes)
    return reports
