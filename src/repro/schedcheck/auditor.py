"""Invariant audits shared by schedcheck, the drivers and the tests.

Two families of checks live here:

* **Structural** — the summary's internal wiring is sound.  For
  :class:`~repro.cots.summary.ConcurrentStreamSummary` this is the
  promoted (and strengthened) ``check_invariants``; it comes in a
  *mid-run* flavour safe to evaluate at any engine yield point and a
  *quiescent* flavour that additionally demands drained queues, no
  empty un-GC'd buckets and the capacity bound.
* **Semantic** — at quiescence the produced counts respect the Space
  Saving guarantees against the exact truth of the stream: conservation
  (``total == N``), the epsilon bound (``min_freq <= N/m``),
  per-element error bounds and heavy-hitter presence, with per-scheme
  tolerances (a merged summary may undercount within its error; the
  hybrid's local caches inflate estimates beyond the sequential bound).

Every violation raises :class:`~repro.errors.AuditError` with a message
that names the scheme, the element and the numbers involved.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.counters import Element
from repro.core.space_saving import SpaceSaving
from repro.errors import AuditError, ReproError


def _fail(scheme: str, message: str) -> None:
    raise AuditError(f"[{scheme}] {message}")


# ======================================================================
# Structural audits
# ======================================================================
def audit_concurrent_summary(
    summary, mid_run: bool = False, scheme: str = "cots"
) -> None:
    """Structural soundness of a ``ConcurrentStreamSummary``.

    ``mid_run=True`` relaxes to what must hold at *every* engine yield
    point: live bucket frequencies strictly ascending, owner flags in
    {0, 1}, member back-pointers consistent, and retired buckets truly
    empty.  The quiescent form additionally requires every queue
    drained, the capacity bound (when the summary enforces one), and —
    the strengthened check — that no empty bucket is still reachable
    without being GC-marked: the drain protocol retires a bucket the
    moment its last member leaves, so an empty live bucket at
    quiescence means a lost retirement.
    """
    last_freq = 0
    pending = 0
    bucket = summary.min_bucket
    while bucket is not None:
        owner = bucket.owner.peek()
        if owner not in (0, 1):
            _fail(scheme, f"bucket {bucket.freq} owner flag {owner} not in {{0, 1}}")
        if bucket.gc_marked:
            # a retired bucket must have been empty at retirement and can
            # never regain members or requests
            if bucket.members:
                _fail(
                    scheme,
                    f"retired bucket {bucket.freq} still has "
                    f"{len(bucket.members)} members",
                )
            if bucket.queue:
                _fail(
                    scheme,
                    f"retired bucket {bucket.freq} still has "
                    f"{len(bucket.queue)} queued requests",
                )
            bucket = bucket.next
            continue
        if bucket.freq <= last_freq:
            _fail(
                scheme,
                f"bucket frequencies not ascending: {bucket.freq} after "
                f"{last_freq}",
            )
        last_freq = bucket.freq
        pending += len(bucket.queue)
        if not mid_run and not bucket.members:
            _fail(
                scheme,
                f"empty bucket {bucket.freq} reachable from the min pointer "
                "but not GC-marked",
            )
        for node in bucket.members:
            if node.bucket is not bucket:
                _fail(scheme, f"node {node.element!r} has a stale bucket pointer")
            if node.freq != bucket.freq:
                _fail(
                    scheme,
                    f"node {node.element!r} freq {node.freq} != bucket "
                    f"{bucket.freq}",
                )
        bucket = bucket.next
    if not mid_run:
        if pending:
            _fail(scheme, f"{pending} requests left undrained")
        if summary.enforce_capacity and summary.monitored() > summary.capacity:
            _fail(
                scheme,
                f"{summary.monitored()} monitored > capacity "
                f"{summary.capacity}",
            )


def audit_stream_summary(summary, scheme: str = "sequential") -> None:
    """Structural soundness of a plain ``StreamSummary`` (re-raised as
    :class:`AuditError` so all audits fail uniformly)."""
    try:
        summary.check_invariants()
    except ReproError as exc:
        _fail(scheme, f"stream summary structure: {exc}")


def audit_space_saving(
    counter: SpaceSaving, scheme: str, merged: bool = False
) -> None:
    """Structural soundness of a ``SpaceSaving`` counter.

    For a directly-built counter every entry's error is bounded by its
    count (the error is set once, at replacement time, to the count it
    inherited).  A *merged* summary widens errors by the min-frequency
    of full parts the element was absent from, which can legitimately
    exceed the element's own count — so the upper bound is skipped.
    """
    audit_stream_summary(counter.summary, scheme)
    for entry in counter.entries():
        if entry.error < 0 or (not merged and entry.error > entry.count):
            _fail(
                scheme,
                f"entry {entry.element!r} error {entry.error} outside "
                f"[0, count={entry.count}]",
            )


# ======================================================================
# Semantic audits (quiescent)
# ======================================================================
@dataclasses.dataclass(frozen=True)
class Tolerance:
    """Per-scheme slack on the Space Saving guarantees.

    All factors are in units of ``N/m`` (the paper's epsilon·N).  For
    each monitored element, with ``est`` / ``err`` the entry's count and
    recorded error and ``true`` the exact count:

    * ``true - est <= band + under_factor * N/m`` where ``band`` is
      ``err`` for ``kind="merged"`` (a merged summary may legitimately
      undercount within its widened error) and 0 for ``kind="upper"``;
    * ``(est - err) - true <= guaranteed_factor * N/m`` — the guaranteed
      count may only overshoot the truth by mass the structure could
      not record in its error fields (the hybrid's local inflation);
    * ``est - true <= over_factor * N/m`` — the absolute overcount.

    ``presence_factor`` scales the heavy-hitter presence threshold: any
    element with true count above ``presence_factor * N/m`` (plus 1)
    must be monitored.  ``conserve`` demands ``total == N`` exactly.
    """

    kind: str = "upper"
    under_factor: float = 0.0
    guaranteed_factor: float = 0.0
    over_factor: float = 1.0
    presence_factor: float = 1.0
    conserve: bool = True


#: sequential-equivalent schemes: the paper bounds hold exactly
EXACT = Tolerance()
#: merged independent summaries: symmetric error band; truncating the
#: union to ``m`` entries drops mass (no conservation) and an element
#: can hide just under ``N_i/m`` in every part, so presence needs
#: double the threshold (then its merged count exceeds ``N/m`` and the
#: top-``m`` truncation must keep it)
MERGED = Tolerance(kind="merged", presence_factor=2.0, conserve=False)
#: hybrid local caches (capacity m/4) re-attribute evicted occurrences
#: before flushing, so per-element flows leak by up to N/(m/4) = 4N/m
#: in either direction without showing up in any error field; totals
#: still conserve (every local flushes its exact processed mass) and an
#: element needs true count > (4+1)·N/m before its flushed mass is
#: guaranteed past the global monitoring threshold
HYBRID = Tolerance(
    under_factor=4.0,
    guaranteed_factor=4.0,
    over_factor=4.0,
    presence_factor=5.0,
)


def exact_counts(stream: Sequence[Element]) -> Dict[Element, int]:
    """The ground-truth frequency table of a buffered stream."""
    return collections.Counter(stream)


def audit_counts(
    counter: SpaceSaving,
    stream: Sequence[Element],
    scheme: str,
    tolerance: Tolerance = EXACT,
    truth: Optional[Dict[Element, int]] = None,
) -> None:
    """Semantic audit of a finished run's counter against the stream.

    Checks, in order: conservation, the epsilon bound on the minimum
    frequency, per-element estimate bounds vs the exact truth, and
    heavy-hitter presence.  ``truth`` may be supplied to amortize the
    exact count across audits of the same stream.
    """
    n = len(stream)
    m = counter.capacity
    if truth is None:
        truth = exact_counts(stream)
    total = sum(entry.count for entry in counter.entries())
    if tolerance.conserve and total != n:
        _fail(scheme, f"count conservation: monitored total {total} != N={n}")
    if total > n:
        _fail(scheme, f"monitored total {total} exceeds stream length {n}")
    # epsilon bound: with m counters over N elements the minimum count
    # cannot exceed N/m (total <= N pigeonholed into m counters)
    if len(counter.summary) == m and m > 0:
        min_freq = counter.summary.min_freq
        if min_freq > n / m:
            _fail(
                scheme,
                f"epsilon bound: min count {min_freq} > N/m = {n}/{m}",
            )
    nm = n / m if m else 0.0
    for entry in counter.entries():
        true = truth.get(entry.element, 0)
        band = entry.error if tolerance.kind == "merged" else 0
        if true - entry.count > band + tolerance.under_factor * nm:
            _fail(
                scheme,
                f"undercount: {entry.element!r} estimated {entry.count} "
                f"(+band {band + tolerance.under_factor * nm:.1f}) "
                f"< true {true}",
            )
        if (
            (entry.count - entry.error) - true
            > tolerance.guaranteed_factor * nm
        ):
            _fail(
                scheme,
                f"error bound: {entry.element!r} guaranteed "
                f"{entry.count - entry.error} > true {true} "
                f"(+{tolerance.guaranteed_factor}*N/m)",
            )
        if entry.count - true > tolerance.over_factor * nm:
            _fail(
                scheme,
                f"overcount: {entry.element!r} estimated {entry.count} > "
                f"true {true} + {tolerance.over_factor}*N/m "
                f"({tolerance.over_factor * nm:.1f})",
            )
    # heavy-hitter presence (the paper's no-false-negative guarantee)
    threshold = tolerance.presence_factor * n / m if m else float("inf")
    for element, true in truth.items():
        if true > threshold + 1 and element not in counter:
            _fail(
                scheme,
                f"missing heavy hitter: {element!r} with true count {true} "
                f"> {threshold:.1f} is not monitored",
            )


def audit_differential(
    counter: SpaceSaving,
    stream: Sequence[Element],
    scheme: str,
    tolerance: Tolerance = EXACT,
    reference: Optional[SpaceSaving] = None,
) -> None:
    """Differential equivalence vs a sequential Space Saving run.

    Both counters bound the same truth, so their estimates for any
    element may differ by at most the sum of the two over-estimation
    budgets.  ``reference`` may be supplied to amortize the sequential
    run; it must have processed exactly ``stream``.
    """
    n = len(stream)
    m = counter.capacity
    if reference is None:
        reference = SpaceSaving(capacity=m)
        reference.process_many(stream)
    slack = (tolerance.over_factor + 1.0) * n / m if m else 0.0
    truth = exact_counts(stream)
    for element in truth:
        ours = counter.estimate(element)
        theirs = reference.estimate(element)
        # an unmonitored element reads 0; its true count is below the
        # presence threshold, so only compare when both monitor it
        if ours == 0 or theirs == 0:
            continue
        if abs(ours - theirs) > slack + counter.error(element) + reference.error(element):
            _fail(
                scheme,
                f"differential: {element!r} estimated {ours} here vs "
                f"{theirs} sequentially (slack {slack:.1f})",
            )
