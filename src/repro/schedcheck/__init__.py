"""Schedule exploration over the deterministic simulation engine.

The simulated schemes are deterministic: one configuration yields one
schedule.  This package turns that single data point into a fuzzing
campaign while keeping every run individually reproducible:

* :mod:`~repro.schedcheck.perturb` — seeded scheduling perturbations
  (ready-queue reordering, forced preemption around atomic/queue
  effects, jittered cost tables), recorded as replayable decisions;
* :mod:`~repro.schedcheck.auditor` — the shared invariant audits:
  structural soundness (mid-run and quiescent), count conservation,
  the Space Saving error bounds, and differential equivalence against
  a sequential reference;
* :mod:`~repro.schedcheck.adapters` — scheme registry plugging the
  harness's engine/audit hooks into the unmodified drivers;
* :mod:`~repro.schedcheck.explorer` — runs N distinct schedules per
  scheme (distinctness verified by trace hash) and audits each;
* :mod:`~repro.schedcheck.shrink` — delta-debugs a failing schedule's
  decision list down to a minimal, human-readable reproducer;
* :mod:`~repro.schedcheck.mutations` — deliberate protocol bugs that
  the harness must catch (its own regression tests).

CLI entry point: ``python -m repro schedcheck --schemes cots,shared
--schedules 200 --seed 42``.
"""

from repro.schedcheck.adapters import SCHEMES, HarnessParams, get_scheme
from repro.schedcheck.auditor import (
    EXACT,
    HYBRID,
    MERGED,
    Tolerance,
    audit_concurrent_summary,
    audit_counts,
    audit_differential,
    audit_space_saving,
    audit_stream_summary,
)
from repro.schedcheck.explorer import (
    ExploreConfig,
    ScheduleOutcome,
    SchemeReport,
    explore,
    run_schedule,
    trace_hash,
)
from repro.schedcheck.mutations import MUTATIONS, get_mutation
from repro.schedcheck.perturb import (
    Decision,
    SchedulePerturber,
    jittered_costs,
)
from repro.schedcheck.shrink import ShrinkResult, ddmin, shrink_outcome

__all__ = [
    "SCHEMES",
    "MUTATIONS",
    "EXACT",
    "HYBRID",
    "MERGED",
    "Decision",
    "ExploreConfig",
    "HarnessParams",
    "ScheduleOutcome",
    "SchedulePerturber",
    "SchemeReport",
    "ShrinkResult",
    "Tolerance",
    "audit_concurrent_summary",
    "audit_counts",
    "audit_differential",
    "audit_space_saving",
    "audit_stream_summary",
    "ddmin",
    "explore",
    "get_mutation",
    "get_scheme",
    "jittered_costs",
    "run_schedule",
    "shrink_outcome",
    "trace_hash",
]
