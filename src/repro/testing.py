"""Test-infrastructure helpers shared by the suite and CI.

Kept inside the package (rather than in ``tests/``) so conftest files,
parametrized test modules and documentation all import one canonical
implementation.
"""

from __future__ import annotations

import os
from typing import List

#: environment variable holding the comma-separated seed matrix
SEEDS_ENV = "REPRO_TEST_SEEDS"


def seed_matrix(*defaults: int) -> List[int]:
    """Seeds to parametrize randomized tests over.

    By default returns ``defaults`` unchanged (the fast path: one run
    per test, identical to a non-parametrized suite).  Setting
    ``REPRO_TEST_SEEDS=0,1,2,...`` widens every seed-parametrized test
    and fixture to the listed seeds — the nightly/with-budget way to
    sweep the same suite across many random universes::

        REPRO_TEST_SEEDS=11,12,13 python -m pytest tests/cots -q
    """
    raw = os.environ.get(SEEDS_ENV, "").strip()
    if not raw:
        return list(defaults)
    seeds = [int(token) for token in raw.split(",") if token.strip()]
    return seeds if seeds else list(defaults)
