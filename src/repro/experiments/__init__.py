"""Reproduction drivers: one function per table/figure of the paper."""

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import (
    ALL_EXPERIMENTS,
    fig3a,
    fig3b,
    fig4,
    fig5,
    fig6,
    fig7,
    fig11,
    fig12,
    lean_camp,
    run_all,
    table2,
)
from repro.experiments.reporting import (
    ascii_chart,
    format_series,
    format_table,
    print_result,
)
from repro.experiments.runner import STREAMS, ExperimentResult, StreamCache

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "ExperimentScale",
    "STREAMS",
    "StreamCache",
    "ascii_chart",
    "fig11",
    "fig12",
    "fig3a",
    "fig3b",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "format_series",
    "format_table",
    "lean_camp",
    "print_result",
    "run_all",
    "table2",
]
