"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers format :class:`~repro.experiments.runner.ExperimentResult`
objects as aligned ASCII tables and per-alpha series.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.experiments.runner import ExperimentResult


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.0001:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render a result as an aligned ASCII table with a title line."""
    headers = result.columns
    body = [
        [_format_cell(row.get(column)) for column in headers]
        for row in result.rows
    ]
    widths = [
        max(len(header), *(len(line[i]) for line in body)) if body else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [result.title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def format_series(
    result: ExperimentResult,
    x: str,
    y: str,
    group_by: str = "alpha",
) -> str:
    """Render one line per group (e.g. one speedup series per alpha)."""
    groups: Dict[Any, List[str]] = {}
    xs: Dict[Any, List[str]] = {}
    for row in result.rows:
        key = row.get(group_by)
        groups.setdefault(key, []).append(_format_cell(row.get(y)))
        xs.setdefault(key, []).append(_format_cell(row.get(x)))
    lines = [result.title]
    for key in sorted(groups):
        axis = ", ".join(xs[key])
        values = ", ".join(groups[key])
        lines.append(f"  {group_by}={key}: {x}=[{axis}] {y}=[{values}]")
    return "\n".join(lines)


def ascii_chart(
    result: ExperimentResult,
    x: str,
    y: str,
    group_by: str = "alpha",
    width: int = 48,
    height: int = 12,
) -> str:
    """A crude terminal scatter/line chart of ``y`` against ``x``.

    One symbol per group (``a`` for the first group, ``b`` for the
    second, ...); axes are linear; collisions show the later group.
    Good enough to eyeball a speedup curve from the CLI.
    """
    points: Dict[Any, List[Any]] = {}
    for row in result.rows:
        points.setdefault(row.get(group_by), []).append(
            (float(row.get(x)), float(row.get(y)))
        )
    if not points or width < 2 or height < 2:
        return "(nothing to plot)"
    all_x = [px for series in points.values() for px, _ in series]
    all_y = [py for series in points.values() for _, py in series]
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    symbols = "abcdefghijklmnopqrstuvwxyz"
    legend = []
    for index, key in enumerate(sorted(points)):
        symbol = symbols[index % len(symbols)]
        legend.append(f"{symbol}={group_by}:{key}")
        for px, py in points[key]:
            column = round((px - x_min) / x_span * (width - 1))
            row_i = height - 1 - round((py - y_min) / y_span * (height - 1))
            grid[row_i][column] = symbol
    lines = [f"{result.title}  [{', '.join(legend)}]"]
    for row_cells in grid:
        lines.append("|" + "".join(row_cells))
    lines.append("+" + "-" * width)
    lines.append(
        f" {x}: {_format_cell(x_min)} .. {_format_cell(x_max)}   "
        f"{y}: {_format_cell(y_min)} .. {_format_cell(y_max)}"
    )
    return "\n".join(lines)


def print_result(result: ExperimentResult) -> None:
    """Print the full table for a result."""
    print(format_table(result))
    print()
