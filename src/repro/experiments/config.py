"""Experiment scales.

The paper's workloads (streams of 1M-100M elements over a 5M alphabet)
are far beyond what a pure-Python discrete-event simulation can replay,
so every experiment is shrunk by a preset *scale* that keeps the ratios
the paper's effects depend on:

* query/merge interval stays at 1% of the stream (50000 of 5M);
* the size sweep keeps the paper's ×1, ×2, ×4, ×8, ×16 multipliers;
* the alphabet tracks the base stream length (paper: 5M alphabet for a
  5M-element profiling stream);
* counter capacity keeps roughly the paper-scale churn behaviour.

``tiny`` exists for the test-suite (seconds), ``default`` regenerates
every figure in a few minutes, ``large`` is closer to the paper's sweep
granularity for patient runs.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class ExperimentScale:
    """All knobs that size the reproduction experiments."""

    name: str
    profile_stream: int            #: Figs 3-5 stream length (paper: 5M)
    sweep_base: int                #: Figs 6/7/12 base length (paper: 1M)
    fig11_stream: int              #: Fig 11 stream length (paper: 1M)
    table2_stream: int             #: Table 2 stream length (paper: 16M)
    capacity: int                  #: Space Saving counter budget
    naive_threads: Tuple[int, ...]     #: Figs 3-7 thread sweep (paper: 1-32)
    cots_threads: Tuple[int, ...]      #: Figs 11/12 sweep (paper: 4-256)
    size_multipliers: Tuple[int, ...] = (1, 2, 4, 8, 16)
    alphas_naive: Tuple[float, ...] = (2.0, 2.5, 3.0)
    alphas_cots: Tuple[float, ...] = (1.5, 2.0, 2.5, 3.0)
    query_fraction: float = 0.01   #: queries every 1% of the stream
    seed: int = 7
    #: tiny smoke runs are too short for some asymptotic shapes (e.g. the
    #: CoTS-beats-sequential crossover needs enough stream for delegation
    #: chains to form); benches skip those assertions when not strict
    strict: bool = True

    def __post_init__(self) -> None:
        for field in ("profile_stream", "sweep_base", "fig11_stream",
                      "table2_stream", "capacity"):
            if getattr(self, field) < 1:
                raise ConfigurationError(f"{field} must be >= 1")
        if not 0 < self.query_fraction <= 1:
            raise ConfigurationError(
                f"query_fraction must be in (0, 1], got {self.query_fraction}"
            )

    @property
    def alphabet(self) -> int:
        """Alphabet size (tracks the profiling stream, like the paper)."""
        return self.profile_stream

    def query_interval(self, stream_length: int) -> int:
        """The query/merge interval for a given stream length."""
        return max(1, int(stream_length * self.query_fraction))

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def tiny() -> "ExperimentScale":
        """Seconds-fast preset for the test-suite."""
        return ExperimentScale(
            name="tiny",
            profile_stream=1_500,
            sweep_base=600,
            fig11_stream=2_000,
            table2_stream=4_000,
            capacity=64,
            naive_threads=(1, 2, 4, 8),
            cots_threads=(4, 16, 64),
            size_multipliers=(1, 2, 4),
            alphas_naive=(2.0, 3.0),
            alphas_cots=(1.5, 2.0, 3.0),
            strict=False,
        )

    @staticmethod
    def default() -> "ExperimentScale":
        """Regenerates every figure in minutes; the benchmark preset."""
        return ExperimentScale(
            name="default",
            profile_stream=6_000,
            sweep_base=1_500,
            fig11_stream=12_000,
            table2_stream=24_000,
            capacity=128,
            naive_threads=(1, 2, 4, 8, 16, 32),
            cots_threads=(4, 8, 16, 32, 64, 128, 256),
        )

    @staticmethod
    def large() -> "ExperimentScale":
        """Closer to the paper's sweep granularity (tens of minutes)."""
        return ExperimentScale(
            name="large",
            profile_stream=20_000,
            sweep_base=4_000,
            fig11_stream=20_000,
            table2_stream=64_000,
            capacity=200,
            naive_threads=(1, 2, 4, 8, 16, 32),
            cots_threads=(4, 8, 16, 32, 64, 128, 256),
        )
