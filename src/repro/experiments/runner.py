"""Shared experiment plumbing: stream caching and result records."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Tuple

from repro.workloads.zipf import ZipfStreamSpec


@dataclasses.dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment_id: str              #: e.g. "fig3a", "table2"
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]]
    notes: str = ""

    def column_values(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def filtered(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows matching all the given column=value criteria."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]


class StreamCache:
    """Materialized zipfian streams, keyed by their spec.

    Experiments reuse the same stream across thread counts (like the
    paper re-running one data set), so caching saves most of the
    generation time in sweeps.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, int, float, int], List[int]] = {}

    def get(
        self, length: int, alphabet: int, alpha: float, seed: int
    ) -> List[int]:
        """Fetch (or generate) the stream for these parameters."""
        key = (length, alphabet, alpha, seed)
        stream = self._cache.get(key)
        if stream is None:
            stream = ZipfStreamSpec(
                length=length, alphabet=alphabet, alpha=alpha, seed=seed
            ).elements()
            self._cache[key] = stream
        return stream

    def clear(self) -> None:
        """Drop all cached streams."""
        self._cache.clear()


#: module-level cache shared by all experiment drivers
STREAMS = StreamCache()
