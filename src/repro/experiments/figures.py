"""One driver per table/figure of the paper's evaluation.

Every function takes an :class:`~repro.experiments.config.
ExperimentScale` and returns an :class:`~repro.experiments.runner.
ExperimentResult` whose rows carry the same quantities the paper plots
(speedups, execution times, percentage breakdowns).  Absolute numbers
are simulated seconds — the *shapes* are the reproduction target
(see EXPERIMENTS.md for the paper-vs-measured record).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.profiling import (
    as_percentages,
    independent_profile,
    shared_profile,
)
from repro.cots.framework import CoTSRunConfig, run_cots
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import STREAMS, ExperimentResult
from repro.parallel.base import SchemeConfig
from repro.parallel.independent import run_independent
from repro.parallel.sequential import run_sequential
from repro.parallel.shared import run_shared
from repro.simcore.costs import CostModel
from repro.simcore.machine import MachineSpec


def _scheme_config(scale: ExperimentScale, threads: int) -> SchemeConfig:
    return SchemeConfig(
        threads=threads,
        capacity=scale.capacity,
        machine=MachineSpec(),
        costs=CostModel(),
    )


def _cots_config(scale: ExperimentScale, threads: int) -> CoTSRunConfig:
    return CoTSRunConfig(
        threads=threads,
        capacity=scale.capacity,
        machine=MachineSpec(),
        costs=CostModel(),
    )


# ----------------------------------------------------------------------
# Figure 3(a): Independent Structures speedup (query every 1% of stream)
# ----------------------------------------------------------------------
def fig3a(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """Speedup of Independent Structures vs threads, serial merge."""
    scale = scale or ExperimentScale.default()
    length = scale.profile_stream
    interval = scale.query_interval(length)
    rows: List[Dict] = []
    for alpha in scale.alphas_naive:
        stream = STREAMS.get(length, scale.alphabet, alpha, scale.seed)
        single = None
        for threads in scale.naive_threads:
            result = run_independent(
                stream,
                _scheme_config(scale, threads),
                merge_every=interval,
                strategy="serial",
            )
            if single is None:
                single = result.seconds
            rows.append(
                {
                    "alpha": alpha,
                    "threads": threads,
                    "seconds": result.seconds,
                    "speedup": single / result.seconds,
                }
            )
    return ExperimentResult(
        experiment_id="fig3a",
        title=(
            "Figure 3(a): Independent Structures speedup "
            f"(N={length}, query every {interval})"
        ),
        columns=["alpha", "threads", "seconds", "speedup"],
        rows=rows,
        notes="Speedup relative to the scheme's own 1-thread run.",
    )


# ----------------------------------------------------------------------
# Figure 3(b): Shared Structure speedup (pthread-style mutexes)
# ----------------------------------------------------------------------
def fig3b(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """Speedup of the mutex-synchronized Shared Structure vs threads."""
    scale = scale or ExperimentScale.default()
    length = scale.profile_stream
    rows: List[Dict] = []
    for alpha in scale.alphas_naive:
        stream = STREAMS.get(length, scale.alphabet, alpha, scale.seed)
        single = None
        for threads in scale.naive_threads:
            result = run_shared(
                stream, _scheme_config(scale, threads), lock_kind="mutex"
            )
            if single is None:
                single = result.seconds
            rows.append(
                {
                    "alpha": alpha,
                    "threads": threads,
                    "seconds": result.seconds,
                    "speedup": single / result.seconds,
                }
            )
    return ExperimentResult(
        experiment_id="fig3b",
        title=f"Figure 3(b): Shared Structure speedup (N={length}, mutex)",
        columns=["alpha", "threads", "seconds", "speedup"],
        rows=rows,
        notes="Speedup relative to the scheme's own 1-thread run.",
    )


# ----------------------------------------------------------------------
# Figure 4: profiling of Independent Structures (Counting vs Merge)
# ----------------------------------------------------------------------
def fig4(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """% time in Counting vs Merge for the Independent design."""
    scale = scale or ExperimentScale.default()
    length = scale.profile_stream
    interval = scale.query_interval(length)
    rows: List[Dict] = []
    for alpha in scale.alphas_naive:
        stream = STREAMS.get(length, scale.alphabet, alpha, scale.seed)
        for threads in scale.naive_threads:
            result = run_independent(
                stream,
                _scheme_config(scale, threads),
                merge_every=interval,
                strategy="serial",
            )
            profile = as_percentages(independent_profile(result.breakdown()))
            rows.append(
                {
                    "alpha": alpha,
                    "threads": threads,
                    "counting_pct": profile.get("Counting", 0.0),
                    "merge_pct": profile.get("Merge", 0.0),
                    "rest_pct": profile.get("Rest", 0.0),
                }
            )
    return ExperimentResult(
        experiment_id="fig4",
        title=(
            "Figure 4: Independent Structures time breakdown "
            f"(N={length}, query every {interval})"
        ),
        columns=["alpha", "threads", "counting_pct", "merge_pct", "rest_pct"],
        rows=rows,
        notes="Merge share grows with the number of threads.",
    )


# ----------------------------------------------------------------------
# Figure 5: profiling of the Shared Structure
# ----------------------------------------------------------------------
def fig5(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """% time per synchronization category for the Shared design."""
    scale = scale or ExperimentScale.default()
    length = scale.profile_stream
    rows: List[Dict] = []
    for alpha in scale.alphas_naive:
        stream = STREAMS.get(length, scale.alphabet, alpha, scale.seed)
        for threads in scale.naive_threads:
            result = run_shared(
                stream, _scheme_config(scale, threads), lock_kind="mutex"
            )
            profile = as_percentages(shared_profile(result.breakdown()))
            rows.append(
                {
                    "alpha": alpha,
                    "threads": threads,
                    "hash_pct": profile.get("Hash Opns", 0.0),
                    "structure_pct": profile.get("Structure Opns", 0.0),
                    "minmax_pct": profile.get("Min-Max Locks", 0.0),
                    "bucket_pct": profile.get("Bucket Locks", 0.0),
                    "rest_pct": profile.get("Rest", 0.0),
                }
            )
    return ExperimentResult(
        experiment_id="fig5",
        title=f"Figure 5: Shared Structure time breakdown (N={length})",
        columns=[
            "alpha",
            "threads",
            "hash_pct",
            "structure_pct",
            "minmax_pct",
            "bucket_pct",
            "rest_pct",
        ],
        rows=rows,
        notes=(
            "Hash (element-level blocking) share grows with threads, and "
            "faster for more skewed streams."
        ),
    )


# ----------------------------------------------------------------------
# Figures 6 and 7: execution-time surfaces over input size x threads
# ----------------------------------------------------------------------
def _size_sweep(
    scale: ExperimentScale, scheme: str
) -> List[Dict]:
    # The paper keeps the query interval at an absolute 50000 elements
    # while the stream grows 1M -> 16M, so larger inputs need *more*
    # merges; the scaled equivalent is 1% of the profiling stream.
    interval = scale.query_interval(scale.profile_stream)
    rows: List[Dict] = []
    for alpha in scale.alphas_naive:
        for multiplier in scale.size_multipliers:
            length = scale.sweep_base * multiplier
            stream = STREAMS.get(length, scale.alphabet, alpha, scale.seed)
            for threads in scale.naive_threads:
                config = _scheme_config(scale, threads)
                if scheme == "independent":
                    result = run_independent(
                        stream,
                        config,
                        merge_every=interval,
                        strategy="serial",
                    )
                else:
                    result = run_shared(stream, config, lock_kind="mutex")
                rows.append(
                    {
                        "alpha": alpha,
                        "multiplier": multiplier,
                        "elements": length,
                        "threads": threads,
                        "seconds": result.seconds,
                        "avg_thread_completion": (
                            result.execution.average_completion()
                            / result.execution.clock_hz
                        ),
                    }
                )
    return rows


def fig6(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """Independent Structures: time over input size × threads."""
    scale = scale or ExperimentScale.default()
    rows = _size_sweep(scale, "independent")
    return ExperimentResult(
        experiment_id="fig6",
        title=(
            "Figure 6: Independent Structures execution time over "
            f"size (x{scale.sweep_base}) and threads, query every 1%"
        ),
        columns=[
            "alpha",
            "multiplier",
            "elements",
            "threads",
            "seconds",
            "avg_thread_completion",
        ],
        rows=rows,
        notes="Time grows with threads; worse for larger inputs.",
    )


def fig7(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """Shared Structure: time over input size × threads."""
    scale = scale or ExperimentScale.default()
    rows = _size_sweep(scale, "shared")
    return ExperimentResult(
        experiment_id="fig7",
        title=(
            "Figure 7: Shared Structure execution time over "
            f"size (x{scale.sweep_base}) and threads"
        ),
        columns=[
            "alpha",
            "multiplier",
            "elements",
            "threads",
            "seconds",
            "avg_thread_completion",
        ],
        rows=rows,
        notes="Time linear in input size; no improvement from threads.",
    )


# ----------------------------------------------------------------------
# Figure 11: CoTS speedup with increasing threads (baseline: 4 threads)
# ----------------------------------------------------------------------
def fig11(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """CoTS speedup vs threads, relative to the 4-thread run."""
    scale = scale or ExperimentScale.default()
    length = scale.fig11_stream
    rows: List[Dict] = []
    for alpha in scale.alphas_cots:
        stream = STREAMS.get(length, scale.alphabet, alpha, scale.seed)
        base = None
        for threads in scale.cots_threads:
            result = run_cots(stream, _cots_config(scale, threads))
            if base is None:
                base = result.seconds
            rows.append(
                {
                    "alpha": alpha,
                    "threads": threads,
                    "seconds": result.seconds,
                    "speedup": base / result.seconds,
                    "throughput_meps": result.throughput / 1e6,
                }
            )
    return ExperimentResult(
        experiment_id="fig11",
        title=f"Figure 11: CoTS scalability (N={length}, baseline 4 threads)",
        columns=["alpha", "threads", "seconds", "speedup", "throughput_meps"],
        rows=rows,
        notes=(
            "Near-monotone growth for skewed streams; alpha=1.5 saturates "
            "around 8-16 threads (limited by the summary structure)."
        ),
    )


# ----------------------------------------------------------------------
# Figure 12: CoTS execution time over input size x threads
# ----------------------------------------------------------------------
def fig12(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """CoTS: time over input size × threads (skewed alphas only)."""
    scale = scale or ExperimentScale.default()
    rows: List[Dict] = []
    for alpha in scale.alphas_naive:
        for multiplier in scale.size_multipliers:
            length = scale.sweep_base * multiplier
            stream = STREAMS.get(length, scale.alphabet, alpha, scale.seed)
            for threads in scale.cots_threads:
                result = run_cots(stream, _cots_config(scale, threads))
                rows.append(
                    {
                        "alpha": alpha,
                        "multiplier": multiplier,
                        "elements": length,
                        "threads": threads,
                        "seconds": result.seconds,
                    }
                )
    return ExperimentResult(
        experiment_id="fig12",
        title=(
            "Figure 12: CoTS execution time over "
            f"size (x{scale.sweep_base}) and threads"
        ),
        columns=["alpha", "multiplier", "elements", "threads", "seconds"],
        rows=rows,
        notes="Time linear in input length; scaling independent of size.",
    )


# ----------------------------------------------------------------------
# Table 2: best-case absolute times, Sequential vs Shared vs CoTS
# ----------------------------------------------------------------------
def table2(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """Best-case execution times of Sequential, Shared and CoTS."""
    scale = scale or ExperimentScale.default()
    length = scale.table2_stream
    # "best case" among genuinely parallel shared configurations — with a
    # single thread the shared design degenerates to sequential-plus-lock
    # overhead, which is not the design the paper benchmarks
    shared_threads = [t for t in scale.naive_threads if 2 <= t <= 4] or [
        max(scale.naive_threads)
    ]
    cots_threads = list(scale.cots_threads)[-2:]
    rows: List[Dict] = []
    for alpha in scale.alphas_naive:
        stream = STREAMS.get(length, scale.alphabet, alpha, scale.seed)
        sequential = run_sequential(stream, _scheme_config(scale, 1))
        shared_best = min(
            run_shared(
                stream, _scheme_config(scale, threads), lock_kind="mutex"
            ).seconds
            for threads in shared_threads
        )
        cots_runs = {
            threads: run_cots(stream, _cots_config(scale, threads))
            for threads in cots_threads
        }
        cots_best_threads = min(cots_runs, key=lambda t: cots_runs[t].seconds)
        cots_best = cots_runs[cots_best_threads]
        rows.append(
            {
                "alpha": alpha,
                "sequential_s": sequential.seconds,
                "shared_s": shared_best,
                "cots_s": cots_best.seconds,
                "cots_threads": cots_best_threads,
                "shared_vs_seq": shared_best / sequential.seconds,
                "cots_speedup_vs_seq": sequential.seconds / cots_best.seconds,
                "cots_peak_meps": cots_best.throughput / 1e6,
            }
        )
    return ExperimentResult(
        experiment_id="table2",
        title=f"Table 2: best-case execution time comparison (N={length})",
        columns=[
            "alpha",
            "sequential_s",
            "shared_s",
            "cots_s",
            "cots_threads",
            "shared_vs_seq",
            "cots_speedup_vs_seq",
            "cots_peak_meps",
        ],
        rows=rows,
        notes=(
            "Shared is an order of magnitude worse than Sequential; CoTS "
            "trails Sequential at alpha=2.0 and beats it at 2.5/3.0."
        ),
    )


# ----------------------------------------------------------------------
# Supplementary: the paper's §7 future work — CoTS on a "lean camp" CMP
# ----------------------------------------------------------------------
def lean_camp(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """CoTS scalability on an UltraSPARC-T2-like machine (64 contexts).

    The paper defers this evaluation to future work ("we plan to analyze
    the performance of the CoTS framework on the 'lean camp' CMP
    architectures"); the simulator can run it today.  The lean machine
    trades clock speed (1.2 vs 2.4 GHz) for 16x the hardware contexts,
    so the latency-hiding that needed heavy oversubscription on the fat
    camp is natively covered by hardware threads.
    """
    scale = scale or ExperimentScale.default()
    length = scale.fig11_stream
    machines = {
        "fat-camp (4x2.4GHz)": MachineSpec.fat_camp(),
        "lean-camp (64x1.2GHz)": MachineSpec.lean_camp(),
    }
    rows: List[Dict] = []
    for alpha in scale.alphas_naive:
        stream = STREAMS.get(length, scale.alphabet, alpha, scale.seed)
        for label, machine in machines.items():
            for threads in scale.cots_threads:
                config = CoTSRunConfig(
                    threads=threads,
                    capacity=scale.capacity,
                    machine=machine,
                    costs=CostModel(),
                )
                result = run_cots(stream, config)
                rows.append(
                    {
                        "alpha": alpha,
                        "machine": label,
                        "threads": threads,
                        "seconds": result.seconds,
                        "throughput_meps": result.throughput / 1e6,
                    }
                )
    return ExperimentResult(
        experiment_id="lean_camp",
        title=(
            "Supplementary (paper §7 future work): CoTS on fat- vs "
            f"lean-camp machines (N={length})"
        ),
        columns=["alpha", "machine", "threads", "seconds", "throughput_meps"],
        rows=rows,
        notes=(
            "The lean camp reaches its peak at far lower software-thread "
            "counts: 64 hardware contexts natively hide the per-element "
            "latency that the fat camp needs oversubscription for."
        ),
    )


#: every reproduced experiment, keyed by id
ALL_EXPERIMENTS = {
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig11": fig11,
    "fig12": fig12,
    "table2": table2,
    "lean_camp": lean_camp,
}


def run_all(scale: Optional[ExperimentScale] = None) -> Dict[str, ExperimentResult]:
    """Regenerate every table and figure; returns id → result."""
    scale = scale or ExperimentScale.default()
    return {name: fn(scale) for name, fn in ALL_EXPERIMENTS.items()}
