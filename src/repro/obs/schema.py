"""The metric catalogue: every name the stack emits, with unit + layer.

This is documentation-as-data: ``repro report`` annotates known names
with their unit and owning layer, docs/observability.md renders from the
same table, and the tests assert that instrumented code only emits
names matching a spec (exactly or by the documented ``<i>``/``<tag>``
placeholders).

Naming convention: ``<layer>.<subsystem>.<metric>``.  Dynamic segments
(worker indices, simulator tags, CoTS stat keys) are written as
placeholders here; :func:`lookup` resolves a concrete name to its spec.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """One documented metric: its kind, unit and owning layer.

    ``worse`` and ``tolerance`` drive the ``report --diff`` regression
    gate (:mod:`repro.obs.diff`): ``worse="up"`` means an increase is a
    regression, ``worse="down"`` means a decrease is, and ``None`` (the
    default) keeps the metric informational — its deltas are reported
    but never fail a comparison.  ``tolerance`` is the relative change
    allowed before a gated metric flags.
    """

    name: str       #: dotted name, may contain <i>/<tag>/<stat> placeholders
    kind: str       #: counter | gauge | histogram
    unit: str       #: what one unit of the value means
    layer: str      #: owning package (core, cots, mp, sim, bench)
    help: str       #: one-line description
    worse: Optional[str] = None   #: 'up' | 'down' | None (informational)
    tolerance: float = 0.25       #: relative slack before a gated flag


def _spec(
    name: str,
    kind: str,
    unit: str,
    layer: str,
    help: str,
    worse: Optional[str] = None,
    tolerance: float = 0.25,
) -> MetricSpec:
    return MetricSpec(
        name=name, kind=kind, unit=unit, layer=layer, help=help,
        worse=worse, tolerance=tolerance,
    )


#: every documented metric, keyed by (possibly placeholder) name
METRIC_SPECS: Dict[str, MetricSpec] = {
    spec.name: spec
    for spec in [
        # ------------------------------------------------------ core
        _spec("core.spacesaving.occurrences", "counter", "elements", "core",
              "stream occurrences consumed by this Space Saving instance"),
        _spec("core.spacesaving.increments", "counter", "ops", "core",
              "IncrementCounter operations (element already monitored)"),
        _spec("core.spacesaving.inserts", "counter", "ops", "core",
              "AddElementToBucket operations (free counter slot taken)"),
        _spec("core.spacesaving.overwrites", "counter", "ops", "core",
              "Overwrite operations (minimum-frequency victim evicted)"),
        _spec("core.spacesaving.min_bucket_hits", "counter", "ops", "core",
              "increments whose element sat in the minimum bucket — the "
              "bucket CoTS contends on"),
        # ------------------------------------------------------ cots
        _spec("cots.stats.<stat>", "counter", "events", "cots",
              "per-run CoTS protocol counter (delegations, overwrites, "
              "gc_buckets, bulk_increments, bulk_total, queue_transfers, "
              "relinquish_bulk, ... — every WorkerContext/summary stat)"),
        _spec("cots.queue.depth", "histogram", "requests", "cots",
              "delegation-queue length observed at each request delivery"),
        _spec("cots.scheduler.parks", "counter", "events", "cots",
              "workers put to sleep by the sigma threshold (5.2.3)"),
        _spec("cots.scheduler.wakes", "counter", "events", "cots",
              "workers/helpers woken by the rho threshold (5.2.3)"),
        _spec("cots.scheduler.helper_drains", "counter", "events", "cots",
              "congested buckets drained by woken pool helpers"),
        _spec("cots.scheduler.sigma", "gauge", "requests", "cots",
              "the sigma (sleep) queue-length threshold of this run"),
        _spec("cots.scheduler.rho", "gauge", "requests", "cots",
              "the rho (wake) queue-length threshold of this run"),
        # -------------------------------------------------------- mp
        _spec("mp.dispatched.items", "counter", "elements", "mp",
              "stream elements dispatched to the worker pool"),
        _spec("mp.dispatched.batches", "counter", "batches", "mp",
              "non-empty batches shipped to workers (pickled batches or "
              "shm ring segments, per the configured transport)"),
        _spec("mp.worker.<i>.items", "counter", "elements", "mp",
              "stream elements routed to worker shard <i>"),
        _spec("mp.worker.<i>.items_per_sec", "gauge", "elements/s", "mp",
              "worker <i>'s share of the stream over the run's wall clock"),
        _spec("mp.queue.occupancy", "histogram", "batches", "mp",
              "task-queue depth sampled right before each dispatch put"),
        _spec("mp.snapshot.seconds", "histogram", "seconds", "mp",
              "wall-clock latency of one all-shard snapshot"),
        _spec("mp.merge.seconds", "histogram", "seconds", "mp",
              "wall-clock latency of one hierarchical merge of shards"),
        _spec("mp.replies.discarded", "counter", "messages", "mp",
              "stale non-error replies swallowed by error/shutdown "
              "sweeps of the reply queue (surfaced in crash details)"),
        _spec("mp.shm.bytes", "counter", "bytes", "mp",
              "payload bytes written into shared-memory ring segments"),
        _spec("mp.shm.ring_occupancy", "histogram", "segments", "mp",
              "busy ring segments observed right before each shm dispatch"),
        _spec("mp.shm.ring_stalls", "counter", "events", "mp",
              "dispatches that found their target ring segment still "
              "busy (shm backpressure from a slow worker)"),
        _spec("mp.shm.stall_seconds", "histogram", "seconds", "mp",
              "wall-clock time dispatch spent waiting for a busy ring "
              "segment to free"),
        # --------------------------------------------------- backend
        _spec("backend.ingest.items", "counter", "elements", "backend",
              "stream elements accepted through Backend.ingest"),
        _spec("backend.ingest.batches", "counter", "batches", "backend",
              "ingest calls (batches) accepted by the backend adapter"),
        _spec("backend.snapshot.seconds", "histogram", "seconds", "backend",
              "wall-clock latency of one Backend.snapshot materialization"),
        _spec("backend.merge_avoided.bytes", "counter", "bytes", "backend",
              "serialized summary bytes the one-table mode did NOT have "
              "to ship and merge (what the sharded path would move per "
              "snapshot)"),
        # ---------------------------------------------------- sketch
        _spec("sketch.updates", "counter", "updates", "sketch",
              "weighted updates applied to the sketch table (distinct "
              "keys per pre-aggregated batch, not raw occurrences)"),
        _spec("sketch.cells_touched", "counter", "cells", "sketch",
              "table cells written by sketch updates (depth rows per "
              "distinct key for plain update; masked subset under "
              "conservative update)"),
        _spec("sketch.table.occupancy", "gauge", "fraction", "sketch",
              "fraction of sketch table cells that are non-zero"),
        _spec("sketch.flush.seconds", "histogram", "seconds", "sketch",
              "wall-clock latency of one one-table flush barrier "
              "(token dispatch until every worker acknowledges)"),
        # -------------------------------------------------- scenario
        _spec("scenario.stream.elements", "counter", "elements", "scenario",
              "stream occurrences counted by the scenario run"),
        _spec("scenario.stream.distinct", "gauge", "elements", "scenario",
              "distinct elements in the scenario stream"),
        _spec("scenario.accuracy.recall_at_k", "gauge", "fraction",
              "scenario",
              "fraction of the exact top-k present in the reported top-k",
              worse="down", tolerance=0.25),
        _spec("scenario.accuracy.precision_at_k", "gauge", "fraction",
              "scenario",
              "fraction of the reported top-k that is exactly top-k",
              worse="down", tolerance=0.25),
        _spec("scenario.accuracy.max_overestimate", "gauge", "elements",
              "scenario",
              "worst (estimate - true count) over monitored elements"),
        _spec("scenario.accuracy.max_underestimate", "gauge", "elements",
              "scenario",
              "worst (true count - estimate); any value > 0 breaks the "
              "upper-bound guarantee"),
        _spec("scenario.accuracy.error_bound", "gauge", "elements",
              "scenario",
              "the promised eps*N over-estimation bound (N / capacity)"),
        _spec("scenario.accuracy.bound_excess", "gauge", "elements",
              "scenario",
              "how far the worst over-estimate exceeds the eps*N bound "
              "(must stay 0)"),
        _spec("scenario.accuracy.guarantee_violations", "counter",
              "violations", "scenario",
              "hard guarantee breaches found by the accuracy audit "
              "(under-estimates, floor breaches, bound excesses, "
              "unmonitored heavy hitters)",
              worse="up", tolerance=0.0),
        _spec("scenario.fuzz.compositions", "counter", "streams",
              "scenario",
              "composite streams generated by the scenario fuzzer"),
        _spec("scenario.fuzz.failures", "counter", "failures", "scenario",
              "fuzzed compositions whose differential or audit failed "
              "(each is shrunk to a minimal reproducer)",
              worse="up", tolerance=0.0),
        # ----------------------------------------------------- serve
        _spec("serve.connections.accepted", "counter", "connections",
              "serve",
              "TCP connections accepted by the serve tier"),
        _spec("serve.connections.active", "gauge", "connections", "serve",
              "currently open client connections"),
        _spec("serve.connections.dropped_slow", "counter", "connections",
              "serve",
              "subscribers disconnected because their socket write "
              "buffer exceeded max_buffer_bytes (slow-reader protection)"),
        _spec("serve.ingest.events", "counter", "elements", "serve",
              "stream events accepted off the wire (acked to clients)"),
        _spec("serve.ingest.frames", "counter", "frames", "serve",
              "accepted ingest frames"),
        _spec("serve.ingest.rejected", "counter", "elements", "serve",
              "events refused with the backpressure error code (the "
              "client retries; never silently dropped)"),
        _spec("serve.batch.fill", "histogram", "elements", "serve",
              "micro-batch sizes handed to the flusher (full batches at "
              "batch_events; partial tails from the ticker and flush)"),
        _spec("serve.batch.flush_seconds", "histogram", "seconds", "serve",
              "wall-clock latency of one backend.ingest micro-batch"),
        _spec("serve.batch.flush_failures", "counter", "batches", "serve",
              "micro-batches dropped because backend.ingest raised "
              "(the flusher survives; the batch's events are lost "
              "from the counts, so processed < accepted_events)",
              worse="up", tolerance=0.0),
        _spec("serve.queue.depth", "gauge", "batches", "serve",
              "pending micro-batches awaiting the flusher (bounded by "
              "max_pending_batches — the backpressure budget)"),
        _spec("serve.snapshot.refreshes", "counter", "refreshes", "serve",
              "query-view rebuilds (skipped when no new events arrived)"),
        _spec("serve.snapshot.seconds", "histogram", "seconds", "serve",
              "wall-clock latency of one query-view rebuild"),
        _spec("serve.snapshot.staleness_seconds", "histogram", "seconds",
              "serve",
              "view age reported with each query answer (bounded by "
              "batch_interval + snapshot_interval)"),
        _spec("serve.query.requests", "counter", "queries", "serve",
              "one-shot queries answered (point/set/topk and the "
              "first answer of interval registrations)"),
        _spec("serve.query.seconds", "histogram", "seconds", "serve",
              "in-server evaluation latency of one query (excludes "
              "network and loop scheduling)"),
        _spec("serve.subscriptions.active", "gauge", "subscriptions",
              "serve",
              "live interval + continuous query registrations"),
        _spec("serve.subscriptions.pushes", "counter", "frames", "serve",
              "push frames sent to interval/continuous subscribers"),
        _spec("serve.protocol.errors", "counter", "errors", "serve",
              "malformed frames and failed requests (excludes "
              "backpressure, which is flow control)",
              worse="up", tolerance=0.0),
        _spec("serve.snapshot.staleness", "gauge", "seconds", "serve",
              "current query-view age, sampled by the live-telemetry "
              "watchdog each tick (the histogram sibling only observes "
              "on query answers)"),
        _spec("serve.accuracy.tracked_keys", "gauge", "keys", "serve",
              "keys tracked by the shadow-truth accuracy probe (the "
              "first probe_keys distinct keys seen, so their true "
              "counts are exact from stream start)"),
        _spec("serve.accuracy.max_overestimate", "gauge", "elements",
              "serve",
              "worst (estimate - shadow truth) over probe keys at the "
              "last watchdog tick"),
        _spec("serve.accuracy.error_bound", "gauge", "elements", "serve",
              "the promised eps*N over-estimation bound at the last "
              "watchdog tick (N = processed events)"),
        _spec("serve.accuracy.bound_excess", "gauge", "elements", "serve",
              "how far the probe's worst over-estimate exceeds eps*N "
              "(must stay 0; drives the accuracy-drift alert)",
              worse="up", tolerance=0.0),
        _spec("serve.alerts.firing", "gauge", "alerts", "serve",
              "SLO watchdog rules currently in the firing state"),
        _spec("serve.alerts.transitions", "counter", "events", "serve",
              "firing/resolved alert transitions emitted as NDJSON "
              "events by the watchdog"),
        _spec("mp.beacon.<i>.processed", "counter", "elements", "mp",
              "elements worker <i> reports processed via its periodic "
              "telemetry beacon (worker-side truth, vs the parent-side "
              "mp.worker.<i>.items routing counter)"),
        _spec("mp.beacon.<i>.batches", "counter", "batches", "mp",
              "batches/segments worker <i> reports consumed via its "
              "telemetry beacon"),
        _spec("mp.beacon.<i>.ring_busy", "gauge", "segments", "mp",
              "busy segments worker <i> observed in its shm ring at "
              "beacon time (live occupancy; 0 for pickled transport)"),
        _spec("mp.beacons.received", "counter", "beacons", "mp",
              "worker telemetry beacons folded by the parent pool"),
        # ------------------------------------------------------- sim
        _spec("sim.makespan_cycles", "gauge", "cycles", "sim",
              "simulated makespan of the run",
              worse="up", tolerance=0.25),
        _spec("sim.seconds", "gauge", "seconds", "sim",
              "simulated wall-clock duration (makespan / clock_hz)",
              worse="up", tolerance=0.25),
        _spec("sim.events", "counter", "events", "sim",
              "engine events processed during the run"),
        _spec("sim.busy_cycles.<tag>", "counter", "cycles", "sim",
              "busy cycles attributed to one cost tag across all threads"),
        _spec("sim.wait_cycles.<tag>", "counter", "cycles", "sim",
              "waiting cycles attributed to one cost tag across all threads"),
        _spec("sim.core_utilization.<i>", "gauge", "fraction", "sim",
              "busy fraction of simulated core <i> over the makespan"),
    ]
}


@dataclasses.dataclass(frozen=True)
class AlertRule:
    """One declarative SLO rule, evaluated over a rolling window.

    ``kind`` selects the evaluation: ``"rate"`` (per-second counter
    rate over the trailing ``window`` seconds), ``"increase"`` (counter
    delta over the window) or ``"gauge"`` (latest sampled value;
    ``window`` is ignored).  The rule fires while the evaluated value
    exceeds ``threshold``.  Thresholds here are static defaults — the
    serve tier overrides per-deployment bounds (e.g. staleness) when it
    builds its :class:`~repro.obs.live.Watchdog`.
    """

    name: str        #: unique rule name (the alert's identity in events)
    metric: str      #: catalogue metric the rule evaluates
    kind: str        #: rate | increase | gauge
    threshold: float  #: fires while value > threshold
    window: float    #: trailing seconds consulted (rate/increase)
    severity: str    #: warning | critical
    help: str        #: one-line operator guidance


#: the SLO rulebook, co-located with the catalogue it refers to
ALERT_RULES: tuple = (
    AlertRule(
        name="serve-flush-failures",
        metric="serve.batch.flush_failures",
        kind="increase", threshold=0.0, window=30.0, severity="critical",
        help="backend.ingest raised and a micro-batch was dropped; "
             "processed counts are now behind accepted events",
    ),
    AlertRule(
        name="serve-backpressure",
        metric="serve.ingest.rejected",
        kind="rate", threshold=500.0, window=10.0, severity="warning",
        help="clients are being pushed back faster than 500 events/s; "
             "the flusher is not keeping up with offered load",
    ),
    AlertRule(
        name="serve-staleness",
        metric="serve.snapshot.staleness",
        kind="gauge", threshold=5.0, window=0.0, severity="critical",
        help="the query view is older than the deployment's staleness "
             "bound (serve overrides this threshold from its config)",
    ),
    AlertRule(
        name="mp-ring-stalls",
        metric="mp.shm.ring_stalls",
        kind="rate", threshold=50.0, window=10.0, severity="warning",
        help="shm dispatch keeps finding ring segments busy; a worker "
             "is slow and the ring is backpressuring",
    ),
    AlertRule(
        name="serve-accuracy-drift",
        metric="serve.accuracy.bound_excess",
        kind="gauge", threshold=0.0, window=0.0, severity="critical",
        help="the shadow-truth probe found an over-estimate beyond the "
             "eps*N guarantee — the summary is violating its bound",
    ),
)


def lookup(name: str) -> Optional[MetricSpec]:
    """Resolve a concrete metric name to its (possibly templated) spec.

    ``mp.worker.3.items`` matches the ``mp.worker.<i>.items`` template;
    unknown names return ``None`` (the report renders them unannotated).
    """
    spec = METRIC_SPECS.get(name)
    if spec is not None:
        return spec
    parts = name.split(".")
    for candidate in METRIC_SPECS.values():
        template = candidate.name.split(".")
        if len(template) != len(parts):
            continue
        if all(
            t in ("<i>", "<tag>", "<stat>") or t == p
            for t, p in zip(template, parts)
        ):
            return candidate
    return None
