"""The metrics registry: counters, gauges and fixed-bucket histograms.

Design constraints (they shape every line here):

* **Cheap enough to leave enabled.**  A counter increment is one
  attribute access plus one integer add; there is no locking, no string
  formatting, no timestamping.  Instrumented hot paths are expected to
  *cache the bound metric object* (or even its ``inc`` method) outside
  the loop, so the steady-state cost is a single method call.
* **Zero-cost-ish when disabled.**  :class:`NullRegistry` hands out
  shared singleton no-op metrics, so an instrumented hot path pays one
  no-op call — never a conditional, never a dict lookup.
* **Deterministic snapshots.**  :meth:`MetricsRegistry.snapshot`
  returns plain sorted dicts (JSON-ready), so two runs performing the
  same operations produce byte-identical snapshots.
* **Observation only.**  Metrics never feed back into algorithm
  decisions; enabling them cannot change any scheme's counts (the
  differential tests in ``tests/obs`` pin this down).

The snapshot schema — shared by real (wall-clock) and simulated runs,
which is what makes them directly comparable::

    {
      "counters":   {name: int, ...},
      "gauges":     {name: float, ...},
      "histograms": {name: {"buckets": [...], "counts": [...],
                            "count": int, "sum": float}, ...},
    }

``histograms[name]["counts"]`` has one entry per bucket bound
(cumulative-style "value <= bound") plus a final overflow bucket.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: default histogram bounds: powers of two, good for queue depths/counts
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: default bounds for latency histograms (seconds)
TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (hot path: one attribute access + one add)."""
        self.value += amount


class Gauge:
    """A point-in-time numeric metric (last write wins)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """A fixed-bucket distribution metric.

    ``bounds`` are inclusive upper bucket edges; one extra overflow
    bucket catches everything above the last bound.  Buckets are fixed
    at creation so ``observe`` is a bisect plus two adds — no
    allocation, ever.
    """

    __slots__ = ("bounds", "counts", "count", "sum")
    kind = "histogram"

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram bounds must be non-empty ascending, got {bounds!r}"
            )
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metrics, get-or-create, one flat namespace.

    Names are dotted paths: ``<layer>.<subsystem>.<metric>`` (e.g.
    ``core.spacesaving.increments``); the full catalogue lives in
    :mod:`repro.obs.schema` and docs/observability.md.  Asking for an
    existing name with a different metric kind raises
    :class:`~repro.errors.ConfigurationError` — a name means one thing.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Return (creating if needed) the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Return (creating if needed) the histogram ``name``.

        ``buckets`` is honoured on first creation only; later calls
        return the existing histogram regardless.
        """
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(buckets if buckets is not None else DEFAULT_BUCKETS)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ConfigurationError(
                f"metric {name!r} already registered as a {metric.kind}"
            )
        return metric

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as a {metric.kind}"
            )
        return metric

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-ready state of every metric (sorted, deterministic)."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = {
                    "buckets": list(metric.bounds),
                    "counts": list(metric.counts),
                    "count": metric.count,
                    "sum": metric.sum,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__((1,))

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass


#: shared no-op metric singletons (stateless, safe to share everywhere)
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every accessor returns a shared no-op.

    Instrumented code binds metric objects once (usually in
    ``__init__``); with this registry those objects are the shared
    singletons above, so the hot-path cost of disabled metrics is a
    single no-op method call.  ``snapshot`` is always empty.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return NULL_GAUGE

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: the process-wide disabled registry; ``metrics=None`` everywhere means this
NULL_REGISTRY = NullRegistry()


def coerce(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Map ``None`` to the shared :data:`NULL_REGISTRY`."""
    return registry if registry is not None else NULL_REGISTRY


def empty_snapshot() -> Dict[str, Dict]:
    """A snapshot with no metrics (the shape every snapshot shares)."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(*snapshots: Dict[str, Dict]) -> Dict[str, Dict]:
    """Combine snapshots into one (sums counters, later gauges win).

    Histograms with identical buckets are summed; on a bucket mismatch
    the later snapshot wins (that only happens when two layers misuse
    one name, which the schema forbids).  Missing sections are treated
    as empty, so partial dicts are accepted.
    """
    merged = empty_snapshot()
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            merged["gauges"][name] = value
        for name, hist in snap.get("histograms", {}).items():
            existing = merged["histograms"].get(name)
            if (
                existing is not None
                and existing["buckets"] == hist["buckets"]
            ):
                existing["counts"] = [
                    a + b for a, b in zip(existing["counts"], hist["counts"])
                ]
                existing["count"] += hist["count"]
                existing["sum"] += hist["sum"]
            else:
                merged["histograms"][name] = {
                    "buckets": list(hist["buckets"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                }
    # deterministic ordering regardless of input order
    merged["counters"] = dict(sorted(merged["counters"].items()))
    merged["gauges"] = dict(sorted(merged["gauges"].items()))
    merged["histograms"] = dict(sorted(merged["histograms"].items()))
    return merged
