"""Run-report rendering: ``python -m repro report``.

A *run report* is any JSON document whose entries carry ``metrics``
snapshots — today that is the pinned bench reports
(``BENCH_core.json`` / ``BENCH_mp.json``, every result entry embeds a
snapshot), and the shape is shared by the driver ``extras["metrics"]``
blocks.  This module turns those snapshots into

* a human-readable table (metric, kind, value, unit, owning layer —
  units and layers come from :mod:`repro.obs.schema`), or
* a machine-readable JSON form (``--json``) that round-trips: the
  ``metrics`` blocks in the output are exactly the input snapshots.

See docs/observability.md for how to *read* the tables (including the
worked contention-bound vs hash-bound example).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.schema import lookup

#: bump when the --json layout changes incompatibly
REPORT_SCHEMA_VERSION = 1


def iter_entry_metrics(report: Dict[str, Any]) -> List[Tuple[str, Dict]]:
    """(entry name, metrics snapshot) for every entry of a run report.

    Accepts a bench report (``results`` list) or a single-run document
    with a top-level ``metrics`` block; entries without metrics yield an
    empty snapshot.
    """
    pairs: List[Tuple[str, Dict]] = []
    if "results" in report:
        for entry in report["results"]:
            pairs.append((entry.get("name", "?"), entry.get("metrics") or {}))
    elif "metrics" in report:
        pairs.append((report.get("name", "run"), report["metrics"] or {}))
    else:
        raise ConfigurationError(
            "not a run report: expected a 'results' list or a 'metrics' block"
        )
    return pairs


def _annotate(name: str) -> Tuple[str, str]:
    """(unit, layer) for a metric name ('?' when undocumented)."""
    spec = lookup(name)
    if spec is None:
        return "?", "?"
    return spec.unit, spec.layer


def _format_value(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return f"{int(value):d}"
    return f"{value:.6g}"


def format_snapshot(snapshot: Dict[str, Any], indent: str = "  ") -> str:
    """Render one metrics snapshot as fixed-width table lines."""
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        unit, layer = _annotate(name)
        lines.append(
            f"{indent}counter    {name:42s} {_format_value(value):>14s}"
            f"  {unit:10s} {layer}"
        )
    for name, value in snapshot.get("gauges", {}).items():
        unit, layer = _annotate(name)
        lines.append(
            f"{indent}gauge      {name:42s} {_format_value(value):>14s}"
            f"  {unit:10s} {layer}"
        )
    for name, hist in snapshot.get("histograms", {}).items():
        unit, layer = _annotate(name)
        count = hist.get("count", 0)
        total = hist.get("sum", 0.0)
        mean = total / count if count else 0.0
        lines.append(
            f"{indent}histogram  {name:42s} "
            f"{'count=' + _format_value(count):>14s}"
            f"  {unit:10s} {layer}"
        )
        buckets = hist.get("buckets", [])
        counts = hist.get("counts", [])
        cells = [
            f"<={_format_value(bound)}:{bucket_count}"
            for bound, bucket_count in zip(buckets, counts)
        ]
        if len(counts) > len(buckets) and buckets:
            cells.append(f">{_format_value(buckets[-1])}:{counts[-1]}")
        lines.append(
            f"{indent}           mean={mean:.4g} " + " ".join(cells)
        )
    if not lines:
        lines.append(f"{indent}(no metrics recorded)")
    return "\n".join(lines)


def render_report(report: Dict[str, Any], source: str = "") -> str:
    """Human-readable rendering of every entry's metrics in a report."""
    header = "run report"
    if "suite" in report:
        header += f" suite={report['suite']}"
    if "scale" in report:
        header += f" scale={report['scale']}"
    if source:
        header += f" ({source})"
    lines = [header]
    for name, snapshot in iter_entry_metrics(report):
        lines.append(f"entry {name}")
        lines.append(format_snapshot(snapshot))
    return "\n".join(lines)


def report_json(report: Dict[str, Any], source: str = "") -> Dict[str, Any]:
    """Machine form of a run report's metrics (round-trips snapshots)."""
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "source": source,
        "suite": report.get("suite"),
        "scale": report.get("scale"),
        "entries": [
            {"name": name, "metrics": snapshot}
            for name, snapshot in iter_entry_metrics(report)
        ],
    }


def load_report(path: str) -> Dict[str, Any]:
    """Read a JSON run report from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def select_entries(
    report: Dict[str, Any], entry: Optional[str]
) -> Dict[str, Any]:
    """Filter a bench report's results down to names containing ``entry``."""
    if entry is None or "results" not in report:
        return report
    filtered = dict(report)
    filtered["results"] = [
        item for item in report["results"]
        if entry in item.get("name", "")
    ]
    if not filtered["results"]:
        known = ", ".join(item.get("name", "?") for item in report["results"])
        raise ConfigurationError(
            f"no entry matching {entry!r}; report has: {known}"
        )
    return filtered
