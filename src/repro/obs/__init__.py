"""Unified observability: the metrics registry and run reports.

The repo's instrumentation backbone.  Every layer (core counters, the
CoTS framework, the multiprocess pool, the simulator, the bench
harness) records into the same three primitives —

* :class:`Counter` — monotone integer (one attribute access + one add),
* :class:`Gauge` — last-write-wins number,
* :class:`Histogram` — fixed-bucket distribution —

owned by a :class:`MetricsRegistry`.  Passing no registry means the
shared :data:`NULL_REGISTRY`, whose metrics are no-op singletons, so
instrumentation can stay in hot paths permanently.

``registry.snapshot()`` returns a deterministic JSON-ready dict; the
same schema is produced for simulated runs (via
:func:`repro.simcore.stats.execution_metrics`) and real multiprocess
runs, which makes them directly comparable.  ``python -m repro report``
renders any report whose entries embed such snapshots.

The metric catalogue (names, units, owning layers) lives in
:mod:`repro.obs.schema` and docs/observability.md.

The *temporal* companion is :mod:`repro.obs.tracing`: a span/instant
tracer with the same null-object discipline (:data:`NULL_TRACER`),
shared by real threaded/process runs and — via
:func:`spans_from_sim_trace` — simulated ones.  Timelines export to
Chrome trace-event JSON and ASCII via :mod:`repro.obs.export`, and two
run reports compare through :mod:`repro.obs.diff`
(``python -m repro report --diff``).
"""

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    coerce,
    empty_snapshot,
    merge_snapshots,
)
from repro.obs.schema import (
    ALERT_RULES,
    METRIC_SPECS,
    AlertRule,
    MetricSpec,
    lookup,
)
from repro.obs.live import (
    RollingWindow,
    Watchdog,
    counter_increase,
    histogram_increase,
    histogram_quantile,
    prometheus_series,
    render_prometheus,
)
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    format_snapshot,
    iter_entry_metrics,
    load_report,
    render_report,
    report_json,
    select_entries,
)
from repro.obs.tracing import (
    NULL_TRACER,
    Instant,
    NullTracer,
    Span,
    Tracer,
    coerce_tracer,
    spans_from_sim_trace,
)
from repro.obs.export import (
    ascii_timeline,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.diff import (
    BENCH_FIELD_SPECS,
    DiffLine,
    DiffResult,
    diff_reports,
)

__all__ = [
    "ALERT_RULES",
    "AlertRule",
    "BENCH_FIELD_SPECS",
    "Counter",
    "DEFAULT_BUCKETS",
    "DiffLine",
    "DiffResult",
    "Gauge",
    "Histogram",
    "Instant",
    "METRIC_SPECS",
    "MetricSpec",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "REPORT_SCHEMA_VERSION",
    "RollingWindow",
    "Span",
    "TIME_BUCKETS",
    "Tracer",
    "Watchdog",
    "ascii_timeline",
    "chrome_trace",
    "coerce",
    "coerce_tracer",
    "counter_increase",
    "diff_reports",
    "empty_snapshot",
    "format_snapshot",
    "histogram_increase",
    "histogram_quantile",
    "iter_entry_metrics",
    "load_report",
    "lookup",
    "merge_snapshots",
    "prometheus_series",
    "render_prometheus",
    "render_report",
    "report_json",
    "select_entries",
    "spans_from_sim_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
