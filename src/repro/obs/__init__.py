"""Unified observability: the metrics registry and run reports.

The repo's instrumentation backbone.  Every layer (core counters, the
CoTS framework, the multiprocess pool, the simulator, the bench
harness) records into the same three primitives —

* :class:`Counter` — monotone integer (one attribute access + one add),
* :class:`Gauge` — last-write-wins number,
* :class:`Histogram` — fixed-bucket distribution —

owned by a :class:`MetricsRegistry`.  Passing no registry means the
shared :data:`NULL_REGISTRY`, whose metrics are no-op singletons, so
instrumentation can stay in hot paths permanently.

``registry.snapshot()`` returns a deterministic JSON-ready dict; the
same schema is produced for simulated runs (via
:func:`repro.simcore.stats.execution_metrics`) and real multiprocess
runs, which makes them directly comparable.  ``python -m repro report``
renders any report whose entries embed such snapshots.

The metric catalogue (names, units, owning layers) lives in
:mod:`repro.obs.schema` and docs/observability.md.
"""

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    coerce,
    empty_snapshot,
    merge_snapshots,
)
from repro.obs.schema import METRIC_SPECS, MetricSpec, lookup
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    format_snapshot,
    iter_entry_metrics,
    load_report,
    render_report,
    report_json,
    select_entries,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRIC_SPECS",
    "MetricSpec",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "NullRegistry",
    "REPORT_SCHEMA_VERSION",
    "TIME_BUCKETS",
    "coerce",
    "empty_snapshot",
    "format_snapshot",
    "iter_entry_metrics",
    "load_report",
    "lookup",
    "merge_snapshots",
    "render_report",
    "report_json",
    "select_entries",
]
