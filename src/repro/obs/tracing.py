"""Span tracing: the *temporal* half of the observability layer.

:mod:`repro.obs.registry` answers "how much happened"; this module
answers "who owned what, when".  The primitives are

* :class:`Span` — a named interval on one *track* (a worker thread, a
  process, a simulated core's thread), with a category and optional
  structured ``args``;
* :class:`Instant` — a point event on a track (a delegation handoff, a
  scheduler wake).

A :class:`Tracer` collects both into **per-track bounded ring buffers**
so hot paths can record freely without unbounded memory: once a track's
ring is full the *oldest* records are overwritten (flight-recorder
semantics) and the drop is counted — :attr:`Tracer.truncated` surfaces
it, and the exporters annotate truncated timelines instead of silently
clipping them.

Design constraints mirror the metrics registry:

* **Zero-cost-ish when disabled.**  :data:`NULL_TRACER` no-ops every
  recording call, so instrumented call sites stay in hot paths
  permanently; ``tracer.enabled`` lets a call site skip building args
  dicts entirely.
* **Clock-agnostic.**  A tracer owns a ``clock`` callable.  Real runs
  use ``time.perf_counter`` (seconds); simulated runs rebind the clock
  to ``lambda: engine.now`` (cycles) via :meth:`Tracer.use_clock` —
  reading the engine's clock from host code never perturbs the
  simulation, which is what keeps tracer-on == tracer-off
  (``tests/obs/test_trace_differential.py``).
* **Deterministic drain order.**  :meth:`Tracer.drain` returns records
  sorted by (timestamp, track, sequence number), so two identical runs
  produce identical drains.
* **Cross-process aggregation.**  Worker processes serialize their
  records (:meth:`Tracer.serialize`) and ship them back with snapshot
  replies; the parent re-bases them onto its own timeline with
  :meth:`Tracer.ingest` (a clock offset plus an optional track prefix).

The span model is intentionally simulator-neutral:
:func:`spans_from_sim_trace` converts a
:class:`repro.simcore.trace.TraceRecorder` timeline into the same
records, so simulated and real executions export through one path
(:mod:`repro.obs.export`).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.errors import ConfigurationError

#: record-kind discriminators used by the wire form (:meth:`serialize`)
KIND_SPAN = "span"
KIND_INSTANT = "instant"


class Span(NamedTuple):
    """One named interval on a track (Chrome trace ``ph: "X"``)."""

    track: str                      #: timeline row (thread/process name)
    name: str                       #: what the interval was
    cat: str                        #: coarse grouping (core, cots, mp, sim)
    start: float                    #: clock value at entry
    end: float                      #: clock value at exit (>= start)
    args: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class Instant(NamedTuple):
    """One point event on a track (Chrome trace ``ph: "i"``)."""

    track: str
    name: str
    cat: str
    ts: float
    args: Optional[Dict[str, Any]] = None


#: either record kind, as stored in the rings and returned by drain()
TraceRecord = Tuple[int, Any]  # (sequence number, Span | Instant)


class _Ring:
    """A bounded buffer keeping the most recent ``limit`` records."""

    __slots__ = ("limit", "items", "head", "dropped")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.items: List[TraceRecord] = []
        self.head = 0               #: index of the oldest record
        self.dropped = 0

    def append(self, record: TraceRecord) -> None:
        if len(self.items) < self.limit:
            self.items.append(record)
        else:
            self.items[self.head] = record
            self.head = (self.head + 1) % self.limit
            self.dropped += 1

    def in_order(self) -> List[TraceRecord]:
        """Records oldest-first (unrolls the circular layout)."""
        return self.items[self.head:] + self.items[: self.head]


class _SpanContext:
    """Reusable ``with tracer.span(...)`` guard (one clock read per edge)."""

    __slots__ = ("_tracer", "_track", "_name", "_cat", "_args", "_start")

    def __init__(self, tracer, track, name, cat, args) -> None:
        self._tracer = tracer
        self._track = track
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_SpanContext":
        self._start = self._tracer.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.add_span(
            self._track, self._name, self._cat,
            self._start, self._tracer.now(), self._args,
        )


class Tracer:
    """Collects spans and instants into per-track bounded rings."""

    enabled = True

    #: default per-track ring capacity; generous for diagnosis, bounded
    #: so a pathological run cannot eat the host's memory
    DEFAULT_LIMIT = 16_384

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        limit_per_track: int = DEFAULT_LIMIT,
    ) -> None:
        if limit_per_track < 1:
            raise ConfigurationError(
                f"limit_per_track must be >= 1, got {limit_per_track}"
            )
        self._clock = clock
        self._limit = limit_per_track
        self._rings: Dict[str, _Ring] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def use_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the time source (e.g. to a simulated engine's clock)."""
        self._clock = clock

    def now(self) -> float:
        """Current clock value (whatever unit the bound clock uses)."""
        return self._clock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _ring(self, track: str) -> _Ring:
        ring = self._rings.get(track)
        if ring is None:
            ring = _Ring(self._limit)
            self._rings[track] = ring
        return ring

    def add_span(
        self,
        track: str,
        name: str,
        cat: str,
        start: float,
        end: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one completed interval."""
        self._seq += 1
        self._ring(track).append((self._seq, Span(track, name, cat, start, end, args)))

    def instant(
        self,
        track: str,
        name: str,
        cat: str,
        ts: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one point event (``ts=None`` stamps with the clock)."""
        self._seq += 1
        stamp = ts if ts is not None else self._clock()
        self._ring(track).append((self._seq, Instant(track, name, cat, stamp, args)))

    def span(
        self,
        track: str,
        name: str,
        cat: str,
        args: Optional[Dict[str, Any]] = None,
    ) -> _SpanContext:
        """A ``with`` guard measuring the enclosed block with the clock."""
        return _SpanContext(self, track, name, cat, args)

    # ------------------------------------------------------------------
    # Introspection / drain
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Records overwritten across all rings (flight-recorder drops)."""
        return sum(ring.dropped for ring in self._rings.values())

    @property
    def truncated(self) -> bool:
        """True when any ring has overwritten records."""
        return any(ring.dropped for ring in self._rings.values())

    def tracks(self) -> List[str]:
        """Track names seen so far, sorted."""
        return sorted(self._rings)

    def __len__(self) -> int:
        return sum(len(ring.items) for ring in self._rings.values())

    def records(self) -> List[Any]:
        """All records (Span | Instant) in deterministic order, kept.

        Order: (timestamp, track, sequence).  Timestamp is ``start`` for
        spans and ``ts`` for instants, so the merged timeline interleaves
        the two kinds chronologically.
        """
        merged: List[Tuple[float, str, int, Any]] = []
        for track in sorted(self._rings):
            for seq, record in self._rings[track].in_order():
                stamp = record.start if isinstance(record, Span) else record.ts
                merged.append((stamp, track, seq, record))
        merged.sort(key=lambda item: (item[0], item[1], item[2]))
        return [record for _, _, _, record in merged]

    def drain(self) -> List[Any]:
        """Like :meth:`records`, but clears the rings (drops are kept)."""
        out = self.records()
        dropped = {track: ring.dropped for track, ring in self._rings.items()}
        self._rings = {}
        for track, count in dropped.items():
            if count:
                ring = self._ring(track)
                ring.dropped = count
        return out

    # ------------------------------------------------------------------
    # Cross-process aggregation
    # ------------------------------------------------------------------
    def serialize(self) -> List[tuple]:
        """Wire form of every record (picklable plain tuples), in order."""
        payload: List[tuple] = []
        for record in self.records():
            if isinstance(record, Span):
                payload.append((
                    KIND_SPAN, record.track, record.name, record.cat,
                    record.start, record.end, record.args,
                ))
            else:
                payload.append((
                    KIND_INSTANT, record.track, record.name, record.cat,
                    record.ts, record.args,
                ))
        return payload

    def ingest(
        self,
        payload: List[tuple],
        offset: float = 0.0,
        track_prefix: str = "",
    ) -> int:
        """Re-base serialized records onto this tracer's timeline.

        ``offset`` is added to every timestamp (the parent computes it
        from its own clock and the child's reported clock value, so a
        child's monotonic epoch lines up with the parent's).
        ``track_prefix`` namespaces the child's tracks (e.g.
        ``"shard-0/"``).  Returns the number of records ingested.
        """
        count = 0
        for record in payload:
            kind = record[0]
            if kind == KIND_SPAN:
                _, track, name, cat, start, end, args = record
                self.add_span(
                    track_prefix + track, name, cat,
                    start + offset, end + offset, args,
                )
            elif kind == KIND_INSTANT:
                _, track, name, cat, ts, args = record
                self.instant(
                    track_prefix + track, name, cat, ts + offset, args
                )
            else:
                raise ConfigurationError(
                    f"unknown trace record kind {kind!r}"
                )
            count += 1
        return count


class _NullSpanContext:
    """Shared no-op ``with`` guard handed out by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """The disabled tracer: every recording call is a no-op.

    Instrumented code holds a tracer reference permanently (usually via
    :func:`coerce_tracer`); with this class the per-call cost is a
    single no-op method call, and ``enabled`` lets hot paths skip arg
    construction outright.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def add_span(self, track, name, cat, start, end, args=None) -> None:  # noqa: D102
        pass

    def instant(self, track, name, cat, ts=None, args=None) -> None:  # noqa: D102
        pass

    def span(self, track, name, cat, args=None) -> _NullSpanContext:  # noqa: D102
        return _NULL_SPAN_CONTEXT

    def now(self) -> float:  # noqa: D102 - never advances
        return 0.0

    def use_clock(self, clock) -> None:  # noqa: D102 - nothing to bind
        pass

    def ingest(self, payload, offset=0.0, track_prefix="") -> int:  # noqa: D102
        return 0


#: the process-wide disabled tracer; ``tracer=None`` everywhere means this
NULL_TRACER = NullTracer()


def coerce_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Map ``None`` to the shared :data:`NULL_TRACER`."""
    return tracer if tracer is not None else NULL_TRACER


# ----------------------------------------------------------------------
# The simulator bridge
# ----------------------------------------------------------------------
def spans_from_sim_trace(recorder) -> Tuple[List[Span], int]:
    """Convert a simcore :class:`~repro.simcore.trace.TraceRecorder`
    timeline into span records.

    One span per executed effect: track = simulated thread name, name =
    the effect's cost tag, cat = ``sim.<EffectType>``, timestamps in
    simulated cycles, with the core id carried in ``args`` so exporters
    can render core occupancy.  Returns ``(spans, dropped)`` where
    ``dropped`` propagates the recorder's truncation count — callers
    must surface it (the exporters annotate truncated timelines).
    """
    spans = [
        Span(
            track=event.thread,
            name=event.tag,
            cat=f"sim.{event.effect}",
            start=float(event.start),
            end=float(event.end),
            args={"core": event.core},
        )
        for event in recorder.events
    ]
    return spans, recorder.dropped
