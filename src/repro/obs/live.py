"""Live telemetry: rolling windows, quantiles, exposition, watchdogs.

:mod:`repro.obs.registry` snapshots are cumulative — perfect for
post-run reports, useless for an operator asking "what is the ingest
rate *right now*?".  This module turns any sequence of periodically
sampled snapshots into windowed telemetry:

* :class:`RollingWindow` keeps the last N timestamped snapshots in a
  ring buffer and derives per-second counter rates, gauge trends and
  histogram quantiles over the window.
* Counter math is **reset-safe**: a counter that goes backwards between
  two samples is treated as a restart (the new value is the increase),
  the same convention Prometheus ``rate()`` uses.  Histograms reset as
  a unit — any bucket going backwards marks the whole histogram
  restarted.
* :func:`histogram_quantile` interpolates p50/p90/p99 from the
  fixed-bucket layouts the registry already records (linear within the
  bucket, Prometheus ``histogram_quantile`` style).
* :func:`render_prometheus` writes the zero-dependency Prometheus text
  exposition format, deriving family names, labels, HELP and TYPE from
  the :data:`~repro.obs.schema.METRIC_SPECS` catalogue so the schema
  stays the single source of truth.
* :class:`Watchdog` evaluates the declarative
  :data:`~repro.obs.schema.ALERT_RULES` over a rolling window and
  reports firing/resolved transitions as structured events.

Everything here is read-only over snapshots: sampling a registry can
never change algorithm behaviour, so NullRegistry parity is preserved
by construction (an empty snapshot yields an empty summary).
"""

from __future__ import annotations

import re
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.schema import ALERT_RULES, AlertRule, MetricSpec, lookup

#: quantiles every summary derives from histogram windows
SUMMARY_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

_PLACEHOLDER_LABELS = {"<i>": "index", "<tag>": "tag", "<stat>": "stat"}
_NAME_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]")


# ----------------------------------------------------------------------
# Reset-safe delta math over cumulative snapshots
# ----------------------------------------------------------------------
def counter_increase(values: Sequence[float]) -> float:
    """Total increase across consecutive cumulative readings.

    A reading lower than its predecessor means the emitting process
    restarted; the new reading is counted as fresh increase (Prometheus
    ``increase()`` semantics).  Fewer than two readings yield 0.
    """
    total = 0.0
    for prev, cur in zip(values, values[1:]):
        total += cur - prev if cur >= prev else cur
    return total


def histogram_increase(
    older: Optional[Dict], newer: Optional[Dict]
) -> Optional[Dict]:
    """Windowed histogram delta between two cumulative snapshots.

    Returns a snapshot-shaped dict (``buckets``/``counts``/``count``/
    ``sum``) holding only the window's observations.  If the newer
    histogram has different buckets, a smaller total, or any bucket
    that went backwards, the emitter restarted and the newer histogram
    *is* the increase.  ``None`` inputs propagate sensibly: no older
    sample means everything in ``newer`` is new.
    """
    if newer is None:
        return None
    if older is None or older["buckets"] != newer["buckets"]:
        return {
            "buckets": list(newer["buckets"]),
            "counts": list(newer["counts"]),
            "count": newer["count"],
            "sum": newer["sum"],
        }
    reset = newer["count"] < older["count"] or any(
        n < o for o, n in zip(older["counts"], newer["counts"])
    )
    if reset:
        counts = list(newer["counts"])
        count = newer["count"]
        total = newer["sum"]
    else:
        counts = [n - o for o, n in zip(older["counts"], newer["counts"])]
        count = newer["count"] - older["count"]
        total = newer["sum"] - older["sum"]
    return {
        "buckets": list(newer["buckets"]),
        "counts": counts,
        "count": count,
        "sum": total,
    }


def histogram_quantile(
    q: float, buckets: Sequence[float], counts: Sequence[int]
) -> Optional[float]:
    """Interpolated quantile from fixed-bucket counts.

    ``buckets`` are the inclusive upper bounds; ``counts`` has one
    entry per bound plus the final overflow bucket (the registry's
    layout).  Linear interpolation within the bucket, lower edge 0 for
    the first bucket; a quantile landing in the overflow bucket clamps
    to the highest finite bound (Prometheus convention).  Returns
    ``None`` when the histogram is empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q!r}")
    if len(counts) != len(buckets) + 1:
        raise ConfigurationError(
            f"counts must have len(buckets)+1 entries, got "
            f"{len(counts)} for {len(buckets)} bounds"
        )
    total = sum(counts)
    if total <= 0:
        return None
    target = q * total
    cumulative = 0.0
    for index, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= target and bucket_count > 0:
            if index == len(buckets):
                return float(buckets[-1])
            upper = float(buckets[index])
            if index == 0:
                lower = min(0.0, upper)
            else:
                lower = float(buckets[index - 1])
            fraction = (target - (cumulative - bucket_count)) / bucket_count
            return lower + (upper - lower) * fraction
    return float(buckets[-1])


# ----------------------------------------------------------------------
# The rolling window
# ----------------------------------------------------------------------
class WindowSample:
    """One timestamped registry snapshot."""

    __slots__ = ("at", "snapshot")

    def __init__(self, at: float, snapshot: Dict[str, Dict]) -> None:
        self.at = at
        self.snapshot = snapshot


class RollingWindow:
    """A ring buffer of timestamped snapshots with windowed derivations.

    The caller supplies timestamps (monotonic seconds) so simulated and
    wall-clock time both work; samples must arrive in non-decreasing
    time order.
    """

    def __init__(self, max_samples: int = 120) -> None:
        if max_samples < 2:
            raise ConfigurationError(
                f"rolling window needs at least 2 samples, got {max_samples}"
            )
        self.max_samples = max_samples
        self._samples: Deque[WindowSample] = deque(maxlen=max_samples)

    def __len__(self) -> int:
        return len(self._samples)

    def sample(self, snapshot: Dict[str, Dict], at: float) -> None:
        """Record one cumulative snapshot taken at time ``at``."""
        if self._samples and at < self._samples[-1].at:
            raise ConfigurationError(
                f"samples must be time-ordered: {at} < {self._samples[-1].at}"
            )
        self._samples.append(WindowSample(at, snapshot))

    def samples(self, window: Optional[float] = None) -> List[WindowSample]:
        """Samples within the trailing ``window`` seconds (all if None).

        Includes the newest sample at or before the window edge as the
        baseline, so deltas cover the full window span.
        """
        if not self._samples:
            return []
        if window is None:
            return list(self._samples)
        edge = self._samples[-1].at - window
        kept: List[WindowSample] = []
        for item in reversed(self._samples):
            kept.append(item)
            if item.at <= edge:
                break
        kept.reverse()
        return kept

    def span(self, window: Optional[float] = None) -> float:
        """Seconds covered by the selected samples (0 if fewer than 2)."""
        picked = self.samples(window)
        if len(picked) < 2:
            return 0.0
        return picked[-1].at - picked[0].at

    def latest(self) -> Optional[WindowSample]:
        """The newest sample, or ``None`` when empty."""
        return self._samples[-1] if self._samples else None

    # ------------------------------------------------------------------
    # Windowed derivations
    # ------------------------------------------------------------------
    def increase(self, name: str, window: Optional[float] = None) -> float:
        """Reset-safe counter increase over the window.

        A counter absent from a sample reads as 0 — registry counters
        are born at 0, so a counter first incremented mid-window still
        contributes its full rise.
        """
        picked = self.samples(window)
        return counter_increase([
            s.snapshot.get("counters", {}).get(name, 0)
            for s in picked
        ])

    def rate(self, name: str, window: Optional[float] = None) -> float:
        """Per-second counter rate over the window (0 on a degenerate span)."""
        span = self.span(window)
        if span <= 0:
            return 0.0
        return self.increase(name, window) / span

    def gauge(self, name: str) -> Optional[float]:
        """Latest value of gauge ``name`` (``None`` if never set)."""
        latest = self.latest()
        if latest is None:
            return None
        return latest.snapshot.get("gauges", {}).get(name)

    def histogram_window(
        self, name: str, window: Optional[float] = None
    ) -> Optional[Dict]:
        """Windowed (delta) histogram for ``name``, reset-safe."""
        picked = self.samples(window)
        if not picked:
            return None
        newest = picked[-1].snapshot.get("histograms", {}).get(name)
        oldest = picked[0].snapshot.get("histograms", {}).get(name)
        if newest is None:
            return None
        if len(picked) < 2:
            oldest = None
        return histogram_increase(oldest, newest)

    def quantile(
        self, name: str, q: float, window: Optional[float] = None
    ) -> Optional[float]:
        """Interpolated quantile of histogram ``name`` over the window."""
        delta = self.histogram_window(name, window)
        if delta is None:
            return None
        return histogram_quantile(q, delta["buckets"], delta["counts"])

    def summary(self, window: Optional[float] = None) -> Dict[str, object]:
        """The full windowed digest: rates, trends, quantiles.

        The shape served by the ``metrics`` op and consumed by
        ``repro top``::

            {
              "window_seconds": float, "samples": int,
              "rates":     {counter: per_second},
              "increases": {counter: window_delta},
              "gauges":    {gauge: {"last","min","max","delta"}},
              "quantiles": {hist: {"p50","p90","p99","count","rate"}},
            }
        """
        picked = self.samples(window)
        span = picked[-1].at - picked[0].at if len(picked) >= 2 else 0.0
        rates: Dict[str, float] = {}
        increases: Dict[str, float] = {}
        gauges: Dict[str, Dict[str, float]] = {}
        quantiles: Dict[str, Dict[str, Optional[float]]] = {}
        if not picked:
            return {
                "window_seconds": 0.0,
                "samples": 0,
                "rates": rates,
                "increases": increases,
                "gauges": gauges,
                "quantiles": quantiles,
            }
        names_c: set = set()
        names_g: set = set()
        names_h: set = set()
        for item in picked:
            names_c.update(item.snapshot.get("counters", {}))
            names_g.update(item.snapshot.get("gauges", {}))
            names_h.update(item.snapshot.get("histograms", {}))
        for name in sorted(names_c):
            increase = counter_increase([
                s.snapshot.get("counters", {}).get(name, 0)
                for s in picked
            ])
            increases[name] = increase
            rates[name] = increase / span if span > 0 else 0.0
        for name in sorted(names_g):
            seen = [
                s.snapshot.get("gauges", {}).get(name)
                for s in picked
            ]
            seen = [v for v in seen if v is not None]
            if not seen:
                continue
            gauges[name] = {
                "last": seen[-1],
                "min": min(seen),
                "max": max(seen),
                "delta": seen[-1] - seen[0],
            }
        for name in sorted(names_h):
            newest = picked[-1].snapshot.get("histograms", {}).get(name)
            if newest is None:
                continue
            oldest = (
                picked[0].snapshot.get("histograms", {}).get(name)
                if len(picked) >= 2 else None
            )
            delta = histogram_increase(oldest, newest)
            if delta is None:
                continue
            entry: Dict[str, Optional[float]] = {
                "count": float(delta["count"]),
                "rate": delta["count"] / span if span > 0 else 0.0,
            }
            for q in SUMMARY_QUANTILES:
                key = f"p{int(q * 100)}"
                entry[key] = histogram_quantile(
                    q, delta["buckets"], delta["counts"]
                )
            quantiles[name] = entry
        return {
            "window_seconds": span,
            "samples": len(picked),
            "rates": rates,
            "increases": increases,
            "gauges": gauges,
            "quantiles": quantiles,
        }


# ----------------------------------------------------------------------
# Prometheus text exposition (zero-dependency)
# ----------------------------------------------------------------------
def _sanitize(part: str) -> str:
    return _NAME_SANITIZE_RE.sub("_", part)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_number(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return format(bound, "g")


def prometheus_series(name: str) -> Tuple[str, Dict[str, str], Optional[MetricSpec]]:
    """Map a registry metric name to (family, labels, spec).

    Catalogue templates drive the mapping: ``mp.worker.3.items``
    resolves against ``mp.worker.<i>.items``, the placeholder segment
    becomes a label (``index="3"``) and the family name is built from
    the static segments (``repro_mp_worker_items``).  Names outside the
    catalogue are sanitized wholesale with no labels.
    """
    spec = lookup(name)
    parts = name.split(".")
    if spec is None or "<" not in spec.name:
        return "repro_" + "_".join(_sanitize(p) for p in parts), {}, spec
    labels: Dict[str, str] = {}
    family_parts: List[str] = []
    for template_part, concrete in zip(spec.name.split("."), parts):
        label = _PLACEHOLDER_LABELS.get(template_part)
        if label is None:
            family_parts.append(_sanitize(template_part))
        else:
            labels[label] = concrete
    return "repro_" + "_".join(family_parts), labels, spec


def _render_labels(labels: Dict[str, str], extra: str = "") -> str:
    pairs = [
        f'{key}="{_escape_label(value)}"'
        for key, value in sorted(labels.items())
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(snapshot: Dict[str, Dict]) -> str:
    """Render a registry snapshot as Prometheus text exposition.

    Counters get a ``_total`` suffix, histograms the standard
    cumulative ``_bucket{le=...}``/``_sum``/``_count`` triple with a
    ``+Inf`` bucket; HELP and TYPE lines come from the METRIC_SPECS
    catalogue (uncatalogued names render without HELP).  Output is
    deterministic: families sorted, series sorted within a family.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family_for(name: str, kind: str) -> Dict[str, object]:
        base, labels, spec = prometheus_series(name)
        family = base + "_total" if kind == "counter" else base
        entry = families.setdefault(
            family,
            {"kind": kind, "help": spec.help if spec else None, "lines": []},
        )
        entry["_labels"] = labels
        return entry

    for name, value in snapshot.get("counters", {}).items():
        entry = family_for(name, "counter")
        labels = entry.pop("_labels")
        entry["lines"].append((labels, "", _format_number(value)))
    for name, value in snapshot.get("gauges", {}).items():
        entry = family_for(name, "gauge")
        labels = entry.pop("_labels")
        entry["lines"].append((labels, "", _format_number(value)))
    for name, hist in snapshot.get("histograms", {}).items():
        entry = family_for(name, "histogram")
        labels = entry.pop("_labels")
        cumulative = 0
        for bound, bucket_count in zip(hist["buckets"], hist["counts"]):
            cumulative += bucket_count
            entry["lines"].append(
                (labels, f'_bucket|le="{_format_bound(bound)}"',
                 str(cumulative))
            )
        entry["lines"].append((labels, '_bucket|le="+Inf"', str(hist["count"])))
        entry["lines"].append((labels, "_sum", _format_number(hist["sum"])))
        entry["lines"].append((labels, "_count", str(hist["count"])))

    out: List[str] = []
    for family in sorted(families):
        entry = families[family]
        if entry["help"]:
            out.append(f"# HELP {family} {entry['help']}")
        out.append(f"# TYPE {family} {entry['kind']}")
        for labels, suffix, value in entry["lines"]:
            if "|" in suffix:
                tail, le = suffix.split("|", 1)
                rendered = _render_labels(labels, le)
                out.append(f"{family}{tail}{rendered} {value}")
            else:
                rendered = _render_labels(labels)
                out.append(f"{family}{suffix}{rendered} {value}")
    return "\n".join(out) + ("\n" if out else "")


# ----------------------------------------------------------------------
# The SLO watchdog
# ----------------------------------------------------------------------
class AlertState:
    """Mutable firing state of one rule."""

    __slots__ = ("rule", "threshold", "firing", "since", "value")

    def __init__(self, rule: AlertRule, threshold: float) -> None:
        self.rule = rule
        self.threshold = threshold
        self.firing = False
        self.since: Optional[float] = None
        self.value: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "alert": self.rule.name,
            "metric": self.rule.metric,
            "kind": self.rule.kind,
            "severity": self.rule.severity,
            "threshold": self.threshold,
            "firing": self.firing,
            "since": self.since,
            "value": self.value,
        }


class Watchdog:
    """Evaluates declarative alert rules over a rolling window.

    ``thresholds`` overrides per-rule thresholds (the serve tier pins
    the staleness rule to its configured bound this way).  Each
    :meth:`evaluate` returns the firing/resolved *transition* events —
    steady state emits nothing, so the event stream stays quiet unless
    something changes.
    """

    def __init__(
        self,
        rules: Iterable[AlertRule] = ALERT_RULES,
        thresholds: Optional[Dict[str, float]] = None,
    ) -> None:
        overrides = dict(thresholds or {})
        self._states: Dict[str, AlertState] = {}
        for rule in rules:
            if rule.name in self._states:
                raise ConfigurationError(
                    f"duplicate alert rule name {rule.name!r}"
                )
            threshold = overrides.pop(rule.name, rule.threshold)
            self._states[rule.name] = AlertState(rule, threshold)
        if overrides:
            raise ConfigurationError(
                f"threshold overrides for unknown rules: {sorted(overrides)}"
            )

    def _rule_value(
        self, rule: AlertRule, window: RollingWindow
    ) -> Optional[float]:
        if rule.kind == "gauge":
            return window.gauge(rule.metric)
        if rule.kind == "increase":
            if len(window.samples(rule.window)) < 2:
                return None
            return window.increase(rule.metric, rule.window)
        if rule.kind == "rate":
            if window.span(rule.window) <= 0:
                return None
            return window.rate(rule.metric, rule.window)
        raise ConfigurationError(f"unknown alert rule kind {rule.kind!r}")

    def evaluate(
        self, window: RollingWindow, now: float
    ) -> List[Dict[str, object]]:
        """Re-evaluate every rule; return firing/resolved transitions."""
        events: List[Dict[str, object]] = []
        for state in self._states.values():
            value = self._rule_value(state.rule, window)
            state.value = value
            firing = value is not None and value > state.threshold
            if firing and not state.firing:
                state.firing = True
                state.since = now
                events.append(self._event(state, "firing", now))
            elif not firing and state.firing:
                state.firing = False
                events.append(self._event(state, "resolved", now))
                state.since = None
        return events

    @staticmethod
    def _event(state: AlertState, kind: str, now: float) -> Dict[str, object]:
        return {
            "event": "alert",
            "state": kind,
            "alert": state.rule.name,
            "metric": state.rule.metric,
            "severity": state.rule.severity,
            "value": state.value,
            "threshold": state.threshold,
            "at": now,
            "help": state.rule.help,
        }

    def states(self) -> List[Dict[str, object]]:
        """Current state of every rule (sorted by name, JSON-ready)."""
        return [
            self._states[name].as_dict() for name in sorted(self._states)
        ]

    def firing(self) -> List[str]:
        """Names of currently firing alerts, sorted."""
        return sorted(
            name for name, state in self._states.items() if state.firing
        )
