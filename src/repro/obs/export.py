"""Trace exporters: Chrome trace-event JSON and an ASCII timeline.

Both exporters consume the neutral record model from
:mod:`repro.obs.tracing` (:class:`~repro.obs.tracing.Span` /
:class:`~repro.obs.tracing.Instant`), so a simulated engine timeline
(via :func:`~repro.obs.tracing.spans_from_sim_trace`), an instrumented
threaded CoTS run, and a multiprocess run all export through the same
two functions.

Chrome trace-event JSON is the *object* flavour of the format
(``{"traceEvents": [...]}``) understood by Perfetto and
``chrome://tracing``:

* spans become ``ph: "X"`` (complete) events with ``ts``/``dur``;
* instants become ``ph: "i"`` with ``s: "t"`` (thread scope);
* each track gets a ``ph: "M"`` ``thread_name`` metadata event so the
  UI labels rows with the worker/thread name.

Timestamps in the format are microseconds.  Real traces record seconds
(``time.perf_counter``), so they export with ``scale=1e6``; simulated
traces record integer cycles and export with ``scale=1.0`` — one
"microsecond" per cycle, which renders proportionally and keeps the
numbers readable.

:func:`validate_chrome_trace` is the schema check used by tests and the
CI smoke job; it is deliberately strict about the fields this module
emits rather than a general validator for the whole (huge) format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.tracing import Instant, Span

#: pid used for all locally-recorded events.  Cross-process records are
#: already re-based and track-prefixed by the parent tracer, so one
#: logical process id keeps every row in a single Perfetto process group.
TRACE_PID = 1


def chrome_trace(
    records: Iterable[Any],
    scale: float = 1e6,
    truncated: int = 0,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a Chrome trace-event document from span/instant records.

    ``scale`` converts record timestamps to microseconds (1e6 for
    seconds-based clocks, 1.0 for cycle-based simulated clocks).
    ``truncated`` is the number of dropped records (ring-buffer
    overwrites or a :class:`~repro.simcore.trace.TraceRecorder` hitting
    its limit); it is surfaced in ``otherData`` so a clipped timeline is
    never mistaken for a complete one.  ``meta`` adds run parameters
    (scheme, workers, ...) to ``otherData``.
    """
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    for record in records:
        if not isinstance(record, (Span, Instant)):
            raise ConfigurationError(
                f"cannot export trace record of type {type(record).__name__}"
            )
        tid = tids.get(record.track)
        if tid is None:
            tid = len(tids)
            tids[record.track] = tid
            events.append({
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": record.track},
            })
        if isinstance(record, Span):
            event = {
                "ph": "X",
                "pid": TRACE_PID,
                "tid": tid,
                "name": record.name,
                "cat": record.cat,
                "ts": record.start * scale,
                "dur": (record.end - record.start) * scale,
            }
        else:
            event = {
                "ph": "i",
                "pid": TRACE_PID,
                "tid": tid,
                "name": record.name,
                "cat": record.cat,
                "ts": record.ts * scale,
                "s": "t",
            }
        if record.args:
            event["args"] = dict(record.args)
        events.append(event)
    other: Dict[str, Any] = {"truncated": truncated}
    if meta:
        other.update(meta)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path: str,
    records: Iterable[Any],
    scale: float = 1e6,
    truncated: int = 0,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Serialize :func:`chrome_trace` output to ``path``; returns the doc."""
    doc = chrome_trace(records, scale=scale, truncated=truncated, meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1)
        handle.write("\n")
    return doc


#: phases this exporter emits; validation rejects anything else
_VALID_PHASES = ("X", "i", "M")


def validate_chrome_trace(doc: Any) -> None:
    """Check that ``doc`` is a well-formed trace this module could emit.

    Raises :class:`~repro.errors.ConfigurationError` with a pointed
    message on the first violation.  Used by the export tests and the
    CI trace smoke job to gate the artifact actually written to disk.
    """
    if not isinstance(doc, dict):
        raise ConfigurationError("chrome trace must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ConfigurationError("chrome trace must have a traceEvents list")
    named_tids = set()
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ConfigurationError(f"{where}: event must be an object")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ConfigurationError(
                f"{where}: ph must be one of {_VALID_PHASES}, got {phase!r}"
            )
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ConfigurationError(f"{where}: {key} must be an integer")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ConfigurationError(f"{where}: name must be a non-empty string")
        if phase == "M":
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                raise ConfigurationError(
                    f"{where}: metadata event needs args.name"
                )
            named_tids.add((event["pid"], event["tid"]))
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ConfigurationError(f"{where}: ts must be a number >= 0")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ConfigurationError(
                    f"{where}: complete event dur must be a number >= 0"
                )
        if (event["pid"], event["tid"]) not in named_tids:
            raise ConfigurationError(
                f"{where}: tid {event['tid']} has no thread_name metadata"
            )
    other = doc.get("otherData")
    if other is not None:
        if not isinstance(other, dict):
            raise ConfigurationError("otherData must be an object")
        truncated = other.get("truncated")
        if truncated is not None and not isinstance(truncated, int):
            raise ConfigurationError("otherData.truncated must be an integer")


def ascii_timeline(records: Sequence[Any], width: int = 72) -> str:
    """Render spans as per-track ASCII occupancy bars.

    The same visual language as
    :meth:`repro.simcore.trace.TraceRecorder.timeline` — one row per
    track, ``#`` where a span is live, ``.`` where the track is idle —
    but driven by the neutral span model, so real runs get the renderer
    too.  Instants are marked with ``!`` (they win over span fill so
    handoffs stay visible).  Each row ends with the track's busy
    fraction of the rendered window.
    """
    if width < 8:
        raise ConfigurationError(f"width must be >= 8, got {width}")
    spans = [r for r in records if isinstance(r, Span)]
    instants = [r for r in records if isinstance(r, Instant)]
    if not spans and not instants:
        return "(no trace records)"
    stamps: List[float] = []
    for span in spans:
        stamps.extend((span.start, span.end))
    stamps.extend(instant.ts for instant in instants)
    lo, hi = min(stamps), max(stamps)
    extent = (hi - lo) or 1.0
    tracks = sorted({record.track for record in spans + instants})
    label_width = max(len(track) for track in tracks)

    def column(value: float) -> int:
        return min(width - 1, int((value - lo) / extent * width))

    lines = [f"timeline {lo:g} .. {hi:g} ({len(spans)} spans)"]
    for track in tracks:
        cells = ["."] * width
        busy = 0.0
        for span in spans:
            if span.track != track:
                continue
            busy += span.end - span.start
            for cell in range(column(span.start), column(span.end) + 1):
                cells[cell] = "#"
        for instant in instants:
            if instant.track == track:
                cells[column(instant.ts)] = "!"
        fraction = busy / extent
        lines.append(
            f"{track.ljust(label_width)} |{''.join(cells)}| {fraction:5.1%}"
        )
    return "\n".join(lines)
