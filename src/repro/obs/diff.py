"""Run-report comparison: ``python -m repro report --diff A B``.

Turns two run reports (bench reports with a ``results`` list, or
single-run documents with a ``metrics`` block) into a per-entry,
per-metric delta table — and into a *gate*: metrics whose
:class:`~repro.obs.schema.MetricSpec` declares a bad direction
(``worse="up"`` / ``"down"``) flag a **regression** when their relative
change exceeds the spec's tolerance, and the CLI exits non-zero when any
entry flags.  That turns the committed ``BENCH_core.json`` /
``BENCH_mp.json`` trajectories into something CI can hold a fresh run
against instead of an archive nobody reads.

Three layers of data are compared for every entry matched by name:

1. **bench scalars** — ``wall_seconds``, ``throughput_eps``, ... with
   their own directions/tolerances (:data:`BENCH_FIELD_SPECS`; host
   wall-clock numbers are noisy, so their default slack is generous);
2. **counters and gauges** from the entry's metrics snapshot;
3. **histograms** — compared on observation count and mean.

Entries present on only one side, metrics that appear/disappear, and
entries without metrics blocks (pre-metrics reports) are reported as
notes, never as regressions — a diff against an old report must degrade
to "nothing comparable", not crash.

``tolerance`` overrides every per-spec tolerance with one number — the
CI smoke job passes a deliberately generous value so only catastrophic
regressions (the injected 2x kind the tests exercise) fail the build.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.report import iter_entry_metrics
from repro.obs.schema import MetricSpec, lookup


@dataclasses.dataclass(frozen=True)
class FieldSpec:
    """Direction + slack for one top-level bench entry field."""

    name: str
    worse: Optional[str]      #: 'up' | 'down' | None
    tolerance: float
    unit: str


#: bench entry scalars the comparator understands.  Wall-clock numbers
#: jitter run to run, so the time/throughput slack is deliberately wide;
#: simulated cycles are deterministic and get a tight bound.
BENCH_FIELD_SPECS: Tuple[FieldSpec, ...] = (
    FieldSpec("wall_seconds", "up", 0.75, "seconds"),
    FieldSpec("throughput_eps", "down", 0.50, "elements/s"),
    FieldSpec("sim_cycles", "up", 0.10, "cycles"),
    FieldSpec("speedup_vs_sequential", "down", 0.50, "ratio"),
    FieldSpec("peak_rss_kb", "up", 0.75, "kB"),
    FieldSpec("elements", None, 0.0, "elements"),
    # serve-suite scalars (BENCH_serve.json); socket latencies under a
    # thousand-connection load are the noisiest numbers in the repo, so
    # the slack is the widest
    FieldSpec("ingest_eps", "down", 0.60, "events/s"),
    FieldSpec("query_p50_ms", "up", 1.50, "ms"),
    FieldSpec("query_p99_ms", "up", 1.50, "ms"),
    FieldSpec("staleness_max_s", "up", 2.00, "seconds"),
    FieldSpec("guarantee_violations", "up", 0.0, "violations"),
)


@dataclasses.dataclass
class DiffLine:
    """One compared value (a bench field, metric, or histogram stat)."""

    entry: str                  #: report entry the value belongs to
    metric: str                 #: field / metric name (with .count/.mean)
    before: Optional[float]
    after: Optional[float]
    regression: bool = False
    gated: bool = False         #: spec declares a bad direction
    tolerance: float = 0.0      #: slack the comparison ran with
    note: str = ""              #: appeared / disappeared / no metrics ...

    @property
    def delta(self) -> Optional[float]:
        """Absolute change (``after - before``), when both sides exist."""
        if self.before is None or self.after is None:
            return None
        return self.after - self.before

    @property
    def relative(self) -> Optional[float]:
        """Relative change vs before (None for a zero/missing baseline)."""
        if self.before is None or self.after is None or self.before == 0:
            return None
        return (self.after - self.before) / abs(self.before)


@dataclasses.dataclass
class DiffResult:
    """Outcome of comparing two run reports."""

    lines: List[DiffLine]
    notes: List[str]            #: entry-level mismatches (one side only)

    @property
    def regressions(self) -> List[DiffLine]:
        return [line for line in self.lines if line.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Human-readable delta table, regressions marked."""
        out = [
            f"report diff: {len(self.lines)} compared values, "
            f"{len(self.regressions)} regressions"
        ]
        out.extend(f"note: {note}" for note in self.notes)
        entry = None
        for line in self.lines:
            if line.entry != entry:
                entry = line.entry
                out.append(f"entry {entry}")
            before = "-" if line.before is None else f"{line.before:.6g}"
            after = "-" if line.after is None else f"{line.after:.6g}"
            rel = line.relative
            rel_text = "" if rel is None else f" ({rel:+.1%})"
            flag = "  REGRESSION" if line.regression else ""
            note = f"  [{line.note}]" if line.note else ""
            out.append(
                f"  {line.metric:44s} {before:>12s} -> {after:>12s}"
                f"{rel_text}{flag}{note}"
            )
        return "\n".join(out)

    def to_json(self) -> Dict[str, Any]:
        """Machine form (mirrors ``report --json``'s schema style)."""
        return {
            "regressions": len(self.regressions),
            "notes": list(self.notes),
            "lines": [
                {
                    "entry": line.entry,
                    "metric": line.metric,
                    "before": line.before,
                    "after": line.after,
                    "delta": line.delta,
                    "relative": line.relative,
                    "regression": line.regression,
                    "note": line.note,
                }
                for line in self.lines
            ],
        }


def _is_regression(
    before: Optional[float],
    after: Optional[float],
    worse: Optional[str],
    tolerance: float,
) -> bool:
    if worse is None or before is None or after is None or before == 0:
        return False
    relative = (after - before) / abs(before)
    if worse == "up":
        return relative > tolerance
    if worse == "down":
        return relative < -tolerance
    raise ConfigurationError(f"unknown worse direction {worse!r}")


def _spec_gate(
    spec: Optional[MetricSpec], override: Optional[float]
) -> Tuple[Optional[str], float]:
    """(worse, tolerance) for a metric spec under a CLI override."""
    if spec is None or spec.worse is None:
        return None, 0.0
    return spec.worse, override if override is not None else spec.tolerance


def _histogram_stats(hist: Dict[str, Any]) -> Dict[str, float]:
    count = hist.get("count", 0)
    total = hist.get("sum", 0.0)
    return {"count": count, "mean": total / count if count else 0.0}


def _diff_snapshot(
    entry: str,
    before: Dict[str, Any],
    after: Dict[str, Any],
    override: Optional[float],
    lines: List[DiffLine],
) -> None:
    for family in ("counters", "gauges"):
        names = sorted(
            set(before.get(family, {})) | set(after.get(family, {}))
        )
        for name in names:
            old = before.get(family, {}).get(name)
            new = after.get(family, {}).get(name)
            worse, tolerance = _spec_gate(lookup(name), override)
            lines.append(DiffLine(
                entry=entry,
                metric=name,
                before=old,
                after=new,
                regression=_is_regression(old, new, worse, tolerance),
                gated=worse is not None,
                tolerance=tolerance,
                note="appeared" if old is None else
                     "disappeared" if new is None else "",
            ))
    names = sorted(
        set(before.get("histograms", {})) | set(after.get("histograms", {}))
    )
    for name in names:
        old_hist = before.get("histograms", {}).get(name)
        new_hist = after.get("histograms", {}).get(name)
        worse, tolerance = _spec_gate(lookup(name), override)
        for stat in ("count", "mean"):
            old = _histogram_stats(old_hist)[stat] if old_hist else None
            new = _histogram_stats(new_hist)[stat] if new_hist else None
            lines.append(DiffLine(
                entry=entry,
                metric=f"{name}.{stat}",
                before=old,
                after=new,
                # only the mean is gated: observation counts track run
                # shape (batches, chunks), not cost
                regression=(
                    stat == "mean"
                    and _is_regression(old, new, worse, tolerance)
                ),
                gated=worse is not None and stat == "mean",
                tolerance=tolerance,
                note="appeared" if old_hist is None else
                     "disappeared" if new_hist is None else "",
            ))


def _entry_fields(report: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """name -> raw entry dict (empty for single-run metric documents)."""
    if "results" not in report:
        return {}
    return {
        item.get("name", "?"): item
        for item in report["results"]
        if isinstance(item, dict)
    }


def diff_reports(
    before: Dict[str, Any],
    after: Dict[str, Any],
    tolerance: Optional[float] = None,
    entry: Optional[str] = None,
) -> DiffResult:
    """Compare two run reports; see the module docstring for semantics.

    ``tolerance`` overrides every per-spec/per-field tolerance.
    ``entry`` restricts the comparison to entries whose name contains
    the substring.
    """
    if tolerance is not None and tolerance < 0:
        raise ConfigurationError(
            f"tolerance must be >= 0, got {tolerance}"
        )
    before_metrics = dict(iter_entry_metrics(before))
    after_metrics = dict(iter_entry_metrics(after))
    before_fields = _entry_fields(before)
    after_fields = _entry_fields(after)
    names = [name for name in before_metrics if name in after_metrics]
    if entry is not None:
        names = [name for name in names if entry in name]
        if not names:
            known = ", ".join(sorted(set(before_metrics) & set(after_metrics)))
            raise ConfigurationError(
                f"no common entry matching {entry!r}; common entries: "
                f"{known or '(none)'}"
            )
    notes = [
        f"entry {name!r} only in {side} report"
        for side, only in (
            ("before", [n for n in before_metrics if n not in after_metrics]),
            ("after", [n for n in after_metrics if n not in before_metrics]),
        )
        for name in only
    ]
    lines: List[DiffLine] = []
    for name in names:
        old_entry = before_fields.get(name, {})
        new_entry = after_fields.get(name, {})
        for field in BENCH_FIELD_SPECS:
            old = old_entry.get(field.name)
            new = new_entry.get(field.name)
            if old is None and new is None:
                continue
            slack = tolerance if tolerance is not None else field.tolerance
            lines.append(DiffLine(
                entry=name,
                metric=field.name,
                before=old,
                after=new,
                regression=_is_regression(old, new, field.worse, slack),
                gated=field.worse is not None,
                tolerance=slack,
                note="appeared" if old is None else
                     "disappeared" if new is None else "",
            ))
        old_snapshot = before_metrics[name]
        new_snapshot = after_metrics[name]
        if not old_snapshot and not new_snapshot:
            # pre-metrics entries (old reports): nothing to compare, and
            # that must not be an error
            lines.append(DiffLine(
                entry=name, metric="(metrics)", before=None, after=None,
                note="no metrics on either side",
            ))
            continue
        _diff_snapshot(name, old_snapshot, new_snapshot, tolerance, lines)
    if not names:
        notes.append("no common entries: nothing compared")
    return DiffResult(lines=lines, notes=notes)
