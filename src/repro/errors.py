"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No runnable thread remains but blocked threads still exist."""


class ProtocolError(SimulationError):
    """A concurrency protocol invariant was violated inside the simulator.

    Raised, for example, when a mutex is released by a thread that does not
    own it, or when a CoTS bucket is drained by a non-owner.
    """


class AuditError(ProtocolError):
    """A schedcheck audit found a structural or semantic violation.

    Raised by :mod:`repro.schedcheck.auditor` when an invariant
    (monotonicity, count conservation, error bounds, differential
    equivalence) does not hold for a simulated scheme's structures.
    Subclasses :class:`ProtocolError` because the structural audits are
    the promoted ``check_invariants`` checks — callers that caught
    ``ProtocolError`` before keep working.
    """


class BackendError(ReproError):
    """A real-parallelism backend (process pool) failed or was misused.

    Base class for the :mod:`repro.mp` failure modes so callers can catch
    every backend problem — crash, timeout, use-after-close — with one
    ``except`` clause.
    """


class WorkerCrashError(BackendError):
    """A backend worker process raised or died unexpectedly.

    Carries the worker index and, when known, the exit code or the
    remote traceback summary, so the failure is attributable without
    digging through child-process stderr.
    """

    def __init__(
        self,
        worker: int,
        detail: str = "",
        exitcode: "int | None" = None,
    ) -> None:
        self.worker = worker
        self.detail = detail
        self.exitcode = exitcode
        message = f"worker {worker} crashed"
        if exitcode is not None:
            message += f" (exit code {exitcode})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class WorkerTimeoutError(BackendError):
    """A backend worker did not respond within the configured timeout.

    Raised on both paths: dispatch (a worker stopped draining its task
    queue) and query (a snapshot reply never arrived).  The pool is
    closed — workers terminated and joined — before this propagates, so
    a timeout never leaves a hung pool behind.
    """

    def __init__(self, worker: int, timeout: float, where: str) -> None:
        self.worker = worker
        self.timeout = timeout
        self.where = where
        super().__init__(
            f"worker {worker} unresponsive after {timeout:g}s during {where}"
        )


class QueryError(ReproError):
    """A stream query was malformed or cannot be answered."""


class StreamError(ReproError):
    """A workload/stream generator was misconfigured or exhausted."""


class MergeError(ReproError):
    """Merging of per-thread summaries failed (Independent Structures)."""
