"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No runnable thread remains but blocked threads still exist."""


class ProtocolError(SimulationError):
    """A concurrency protocol invariant was violated inside the simulator.

    Raised, for example, when a mutex is released by a thread that does not
    own it, or when a CoTS bucket is drained by a non-owner.
    """


class AuditError(ProtocolError):
    """A schedcheck audit found a structural or semantic violation.

    Raised by :mod:`repro.schedcheck.auditor` when an invariant
    (monotonicity, count conservation, error bounds, differential
    equivalence) does not hold for a simulated scheme's structures.
    Subclasses :class:`ProtocolError` because the structural audits are
    the promoted ``check_invariants`` checks — callers that caught
    ``ProtocolError`` before keep working.
    """


class QueryError(ReproError):
    """A stream query was malformed or cannot be answered."""


class StreamError(ReproError):
    """A workload/stream generator was misconfigured or exhausted."""


class MergeError(ReproError):
    """Merging of per-thread summaries failed (Independent Structures)."""
