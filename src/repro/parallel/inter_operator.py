"""Inter-operator parallelism — the contrast the paper draws in §1.

"In addition to inter-operator parallelism (or scheduling as in [1]),
where multiple operators execute independently and in parallel on
different cores, intra-operator parallelism ... is also important."

This module runs *several independent frequency-counting operators*
(one per registered query, each with its own stream) on the simulated
machine.  Operators never interact, so inter-operator scaling is trivial
up to the core count and exactly zero beyond it — the observation that
motivates intra-operator parallelism for long-standing stream queries.
The inter-vs-intra example and ablation use it as the baseline.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.core.counters import Element
from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError
from repro.parallel.base import TAG_COUNTING, sequential_step
from repro.simcore.costs import CostModel
from repro.simcore.engine import Engine
from repro.simcore.machine import MachineSpec
from repro.simcore.stats import ExecutionResult


@dataclasses.dataclass
class OperatorSpec:
    """One independent stream operator: a name, its stream, its budget."""

    name: str
    stream: Sequence[Element]
    capacity: int = 128

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {self.capacity}"
            )


@dataclasses.dataclass
class InterOperatorResult:
    """Outcome of one inter-operator run."""

    execution: ExecutionResult
    counters: Dict[str, SpaceSaving]

    @property
    def seconds(self) -> float:
        """Simulated wall-clock seconds for all operators to finish."""
        return self.execution.seconds

    def operator_finish_seconds(self) -> Dict[str, float]:
        """Per-operator completion time (seconds)."""
        return {
            name: stats.finish_time / self.execution.clock_hz
            for name, stats in self.execution.threads.items()
        }


def run_inter_operator(
    operators: Sequence[OperatorSpec],
    machine: Optional[MachineSpec] = None,
    costs: Optional[CostModel] = None,
) -> InterOperatorResult:
    """Run one thread per operator; the OS multiplexes them over cores."""
    if not operators:
        raise ConfigurationError("need at least one operator")
    names = [op.name for op in operators]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"operator names must be unique: {names}")
    machine = machine if machine is not None else MachineSpec()
    costs = costs if costs is not None else CostModel()
    engine = Engine(machine=machine, costs=costs)
    counters: Dict[str, SpaceSaving] = {}

    def program(spec: OperatorSpec, counter: SpaceSaving):
        for element in spec.stream:
            yield from sequential_step(counter, element, costs, TAG_COUNTING)

    for spec in operators:
        counter = SpaceSaving(capacity=spec.capacity)
        counters[spec.name] = counter
        engine.spawn(program(spec, counter), name=spec.name)
    execution = engine.run()
    return InterOperatorResult(execution=execution, counters=counters)
