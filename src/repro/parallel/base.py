"""Shared scaffolding for the simulated parallelization schemes.

Every scheme (sequential baseline, Independent Structures, Shared
Structure, Hybrid, and CoTS) is a *driver* that

1. partitions a buffered stream across ``threads`` simulated threads,
2. spawns generator programs on a fresh :class:`~repro.simcore.engine.
   Engine`, where each program performs the scheme's real algorithmic
   logic while yielding cycle-cost effects, and
3. returns a :class:`SchemeResult` bundling the simulated timing with the
   final queryable counter so correctness and performance are checked on
   the same run.

Tag conventions (they feed the paper's profiling figures directly):

========== ===============================================================
 tag        meaning
========== ===============================================================
counting    per-element work on a thread-local structure (Fig. 4)
merge       merging local structures / merge barriers (Fig. 4)
hash        search-structure work incl. element-level blocking (Fig. 5)
structure   Stream Summary operations (Fig. 5)
bucket      frequency-bucket lock traffic (Fig. 5, "Bucket Locks")
minmax      min/max pointer lock traffic (Fig. 5, "Min-Max Locks")
rest        everything else (Fig. 5, "Rest")
========== ===============================================================
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.counters import Element
from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError
from repro.simcore.costs import CostModel
from repro.simcore.effects import Compute
from repro.simcore.machine import MachineSpec
from repro.simcore.stats import ExecutionResult

#: canonical tags (see module docstring)
TAG_COUNTING = "counting"
TAG_MERGE = "merge"
TAG_HASH = "hash"
TAG_STRUCTURE = "structure"
TAG_BUCKET = "bucket"
TAG_MINMAX = "minmax"
TAG_REST = "rest"


@dataclasses.dataclass
class SchemeConfig:
    """Parameters shared by every scheme driver."""

    threads: int = 4
    capacity: int = 256              #: Space Saving counter budget
    machine: MachineSpec = dataclasses.field(default_factory=MachineSpec)
    costs: CostModel = dataclasses.field(default_factory=CostModel)
    #: optional Engine builder ``(machine, costs) -> Engine``; schedcheck
    #: uses this to slide a perturbed/traced engine under any driver
    engine_factory: Optional[Callable[..., Any]] = None
    #: optional callback ``(engine, targets: dict) -> None`` invoked by
    #: each driver once its structures exist but before the engine runs,
    #: so mid-run auditors can bind checkpoints to the live structures
    audit_binder: Optional[Callable[..., None]] = None
    #: optional :class:`repro.obs.MetricsRegistry`; drivers that support
    #: instrumentation (sequential, cots) record into it and embed
    #: ``registry.snapshot()`` as ``extras["metrics"]`` on their result.
    #: ``None`` (the default) disables metrics at no-op cost.
    metrics: Optional[Any] = None
    #: optional :class:`repro.obs.tracing.Tracer`; drivers that support
    #: span tracing (cots) record delegation/drain/sleep-wake spans into
    #: it, with the tracer clock rebound to the engine's cycle counter so
    #: recording never perturbs the simulated schedule.  ``None`` (the
    #: default) disables tracing at no-op cost.
    tracer: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ConfigurationError(
                f"threads must be >= 1, got {self.threads}"
            )
        if self.capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {self.capacity}"
            )

    def make_engine(self) -> Any:
        """Build the engine for one run (honouring ``engine_factory``)."""
        if self.engine_factory is not None:
            return self.engine_factory(self.machine, self.costs)
        from repro.simcore.engine import Engine

        return Engine(machine=self.machine, costs=self.costs)

    def bind_audit(self, engine: Any, **targets: Any) -> None:
        """Expose a driver's live structures to the audit binder (if any)."""
        if self.audit_binder is not None:
            self.audit_binder(engine, targets)


@dataclasses.dataclass
class SchemeResult:
    """Outcome of driving one scheme over one stream."""

    scheme: str
    threads: int
    elements: int
    execution: ExecutionResult
    counter: Optional[SpaceSaving]        #: final queryable summary
    extras: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Simulated wall-clock seconds of the whole run."""
        return self.execution.seconds

    @property
    def cycles(self) -> int:
        """Simulated makespan in cycles."""
        return self.execution.makespan

    @property
    def throughput(self) -> float:
        """Stream elements per simulated second."""
        return self.execution.throughput(self.elements)

    def breakdown(self) -> Dict[str, float]:
        """Fraction of attributed time per tag (profiling figures)."""
        return self.execution.breakdown()


def op_kind(counter: SpaceSaving, element: Element) -> str:
    """Which Space Saving operation the next ``process(element)`` will be.

    One of ``"increment"``, ``"insert"`` or ``"overwrite"`` — the three
    cases of Algorithm 1 (Table 1's IncrementCounter /
    AddElementToBucket / Overwrite).
    """
    if element in counter.summary:
        return "increment"
    if len(counter.summary) < counter.capacity:
        return "insert"
    return "overwrite"


def lookup_cycles(costs: CostModel) -> int:
    """Cycles for fetching an element and probing the hash table."""
    return costs.stream_fetch + costs.hash_compute + costs.key_compare


def update_cycles(costs: CostModel, kind: str) -> int:
    """Baseline cycles for the Stream Summary part of one step.

    This is the bucket-reuse fast path; :func:`dynamic_update_cycles`
    adds the allocation/free work when buckets are actually created or
    emptied, which dominates for high-frequency elements (their counts
    are unique, so every increment splices a fresh bucket in and garbage
    collects the old one).
    """
    if kind == "increment":
        # detach node, find neighbour bucket, attach
        return costs.list_splice * 2 + costs.pointer_chase
    if kind == "insert":
        # allocate node, attach to (possibly new) min bucket
        return costs.alloc + costs.list_splice
    if kind == "overwrite":
        # locate min victim, hash-delete it, hash-insert the newcomer,
        # move the node to the bumped frequency
        return (
            costs.pointer_chase
            + costs.key_compare
            + costs.free
            + costs.alloc
            + costs.list_splice * 2
        )
    raise ConfigurationError(f"unknown op kind {kind!r}")


def dynamic_update_cycles(
    counter: SpaceSaving, element: Element, costs: CostModel
) -> Tuple[str, int]:
    """(kind, cycles) for the *next* ``process(element)`` on ``counter``.

    Adds bucket allocation/free charges on top of
    :func:`update_cycles` when the step will create a new frequency
    bucket or empty its source bucket — the dominant cost of sequential
    Space Saving under skew, and exactly the work CoTS's bulk increments
    amortize.
    """
    kind = op_kind(counter, element)
    cycles = update_cycles(costs, kind)
    summary = counter.summary
    if kind == "increment":
        node = summary.node(element)
        source = node.bucket
        target = source.freq + 1
        if source.next is None or source.next.freq != target:
            cycles += costs.alloc          # splice in a fresh bucket
        if source.size == 1:
            cycles += costs.free           # source bucket is emptied
    elif kind == "insert":
        if summary.min_freq != 1:
            cycles += costs.alloc          # needs a new freq-1 bucket
    else:  # overwrite
        min_node = summary.min_node()
        if min_node is not None and min_node.bucket.size == 1:
            cycles += costs.free           # min bucket collapses
        cycles += costs.alloc              # destination bucket is new in
        # the common case (victim count + 1 is rarely an existing bucket)
    return kind, cycles


def sequential_step(
    counter: SpaceSaving,
    element: Element,
    costs: CostModel,
    tag: str = TAG_COUNTING,
):
    """Generator: one charged Space Saving step on a private structure.

    Used by the sequential baseline and by each local structure of the
    Independent design, where lookup and summary update run without any
    synchronization.
    """
    _, cycles = dynamic_update_cycles(counter, element, costs)
    yield Compute(lookup_cycles(costs) + cycles, tag)
    counter.process(element)


def sequential_bulk_step(
    counter: SpaceSaving,
    element: Element,
    run: int,
    costs: CostModel,
    tag: str = TAG_COUNTING,
):
    """Generator: one charged *bulk* step covering ``run`` occurrences.

    The batched fast lane of the private-structure drivers: a run of
    identical consecutive elements is fetched element-by-element (the
    stream must still be read) but pays a single hash lookup and a single
    Stream Summary move — the same amortization CoTS applies to bulk
    increments, here in its sequential form.  Semantically identical to
    ``run`` back-to-back :func:`sequential_step` calls on the structure
    level (``process_bulk`` matches processing ``run`` singletons).
    """
    _, cycles = dynamic_update_cycles(counter, element, costs)
    yield Compute(
        costs.stream_fetch * (run - 1) + lookup_cycles(costs) + cycles, tag
    )
    counter.process_bulk(element, run)


def partition_sizes(total: int, parts: int) -> List[int]:
    """Sizes of ``parts`` near-equal contiguous chunks of ``total``."""
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def thread_names(prefix: str, count: int) -> List[str]:
    """Stable simulated-thread names (``prefix-0`` ... ``prefix-n``)."""
    return [f"{prefix}-{i}" for i in range(count)]
