"""The paper's naive parallelization schemes on the simulator (§4)."""

from repro.parallel.base import (
    SchemeConfig,
    SchemeResult,
    TAG_BUCKET,
    TAG_COUNTING,
    TAG_HASH,
    TAG_MERGE,
    TAG_MINMAX,
    TAG_REST,
    TAG_STRUCTURE,
)
from repro.parallel.hybrid import run_hybrid
from repro.parallel.independent import run_independent
from repro.parallel.inter_operator import (
    InterOperatorResult,
    OperatorSpec,
    run_inter_operator,
)
from repro.parallel.sequential import run_sequential
from repro.parallel.sharded import run_sharded
from repro.parallel.shared import run_shared

__all__ = [
    "InterOperatorResult",
    "OperatorSpec",
    "SchemeConfig",
    "SchemeResult",
    "TAG_BUCKET",
    "TAG_COUNTING",
    "TAG_HASH",
    "TAG_MERGE",
    "TAG_MINMAX",
    "TAG_REST",
    "TAG_STRUCTURE",
    "run_hybrid",
    "run_independent",
    "run_inter_operator",
    "run_sequential",
    "run_sharded",
    "run_shared",
]
