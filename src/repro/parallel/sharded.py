"""Hash-sharded intra-operator parallelism (simulated).

The §4.4 discussion implies a third naive option the paper never builds:
route every element to a *home thread* by hashing its value.  Shards
never share state (no locks, no delegation) and never merge for point
queries (the home shard answers alone); set queries still fan out and
combine.  The catch is **load imbalance**: under zipfian skew one shard
owns the hot element and becomes the pipeline's bottleneck, which is the
reason the paper's cooperative design exists.  The sharding ablation
benchmark measures exactly that.

Routing is modelled with per-shard inbox queues: a router thread charges
a hash plus an enqueue per element, shard workers drain their inboxes at
their own pace; shard imbalance then shows up as tail latency on the hot
shard (the makespan is the slowest shard's finish time).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.counters import Element
from repro.core.merge import merge_space_saving
from repro.core.space_saving import SpaceSaving
from repro.parallel.base import (
    SchemeConfig,
    SchemeResult,
    TAG_COUNTING,
    TAG_REST,
    sequential_step,
    thread_names,
)
from repro.simcore.effects import Compute
from repro.simcore.engine import Engine


def _shard_worker(part: Sequence[Element], counter: SpaceSaving, costs):
    for element in part:
        yield Compute(costs.stream_fetch, TAG_REST)
        yield from sequential_step(counter, element, costs, TAG_COUNTING)


def run_sharded(
    stream: Sequence[Element],
    config: Optional[SchemeConfig] = None,
) -> SchemeResult:
    """Drive the hash-sharded scheme over a buffered stream.

    Each of ``config.threads`` shards counts the elements that hash to
    it; the result counter is the (exact, disjoint-key) union of the
    shards.  ``extras`` reports the shard load imbalance — the ratio of
    the heaviest shard to the mean — which is the scheme's failure mode
    under skew.
    """
    config = config if config is not None else SchemeConfig()
    shards = config.threads
    inboxes: List[List[Element]] = [[] for _ in range(shards)]
    for element in stream:
        inboxes[hash(element) % shards].append(element)
    counters = [SpaceSaving(capacity=config.capacity) for _ in range(shards)]
    engine = config.make_engine()
    config.bind_audit(
        engine, scheme="sharded", locals=counters, stream=stream
    )
    for index, name in enumerate(thread_names("shard", shards)):
        engine.spawn(
            _shard_worker(inboxes[index], counters[index], config.costs),
            name=name,
        )
    execution = engine.run()
    loads = [len(inbox) for inbox in inboxes]
    mean_load = (sum(loads) / shards) if shards else 0.0
    merged = merge_space_saving(counters, capacity=config.capacity)
    return SchemeResult(
        scheme="sharded",
        threads=shards,
        elements=len(stream),
        execution=execution,
        counter=merged,
        extras={
            "loads": loads,
            "imbalance": (max(loads) / mean_load) if mean_load else 0.0,
            "shards": counters,
        },
    )
