"""Shared Structure — the lock-based naive scheme (§4.2).

All threads update one shared Space Saving structure under two levels of
synchronization:

* **Element level** — one lock per stream element serializes threads that
  process the same element (on skewed streams this is the dominant wait,
  which is why Figure 5's "Hash Opns" share grows with both skew and
  thread count);
* **Bucket level** — moving an element between frequency buckets locks
  the source and destination bucket, serializing all threads that touch
  those buckets; the min/max bucket pointers are protected by their own
  lock ("Min-Max Locks" in Figure 5).

Lock ordering is global (min/max pointer lock, then buckets in ascending
frequency), so the simulation cannot deadlock.  ``lock_kind`` selects
pthread-mutex-style blocking locks or spin locks; the paper notes spin
locks performed *worse* because waiters also burn CPU, and the simulator
reproduces that.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.core.counters import Element
from repro.core.space_saving import SpaceSaving
from repro.core.stream_summary import SummaryBucket
from repro.errors import ConfigurationError
from repro.parallel.base import (
    SchemeConfig,
    SchemeResult,
    TAG_BUCKET,
    TAG_HASH,
    TAG_MINMAX,
    TAG_STRUCTURE,
    dynamic_update_cycles,
    lookup_cycles,
    op_kind,
    thread_names,
)
from repro.simcore.effects import Compute
from repro.simcore.engine import Engine
from repro.simcore.sync import Mutex, SpinLock
from repro.workloads.partition import block_partition

Lock = Union[Mutex, SpinLock]

#: prune the bucket-lock table when it exceeds this many entries
_PRUNE_THRESHOLD = 4096


class _SharedState:
    """The shared structure plus all of its locks."""

    def __init__(self, capacity: int, lock_kind: str) -> None:
        if lock_kind not in ("mutex", "spin"):
            raise ConfigurationError(
                f"lock_kind must be 'mutex' or 'spin', got {lock_kind!r}"
            )
        self.counter = SpaceSaving(capacity=capacity)
        self.lock_kind = lock_kind
        self.element_locks: Dict[Element, Lock] = {}
        self.bucket_locks: Dict[SummaryBucket, Lock] = {}
        self.minmax_lock: Lock = self._new_lock("minmax")

    def _new_lock(self, name: str) -> Lock:
        if self.lock_kind == "mutex":
            return Mutex(name)
        return SpinLock(name)

    def element_lock(self, element: Element) -> Lock:
        lock = self.element_locks.get(element)
        if lock is None:
            lock = self._new_lock(f"elem-{element!r}")
            self.element_locks[element] = lock
        return lock

    def bucket_lock(self, bucket: SummaryBucket) -> Lock:
        lock = self.bucket_locks.get(bucket)
        if lock is None:
            lock = self._new_lock(f"bucket-{bucket.freq}")
            self.bucket_locks[bucket] = lock
        if len(self.bucket_locks) > _PRUNE_THRESHOLD:
            self._prune_bucket_locks()
        return lock

    def _prune_bucket_locks(self) -> None:
        """Drop lock entries of buckets that have been emptied and removed."""
        self.bucket_locks = {
            bucket: lock
            for bucket, lock in self.bucket_locks.items()
            if bucket.size > 0 or lock.owner is not None
        }


def _acquire(lock: Lock, tag: str):
    yield lock.acquire(tag)


def _release(lock: Lock, tag: str):
    yield lock.release(tag)


def _query_reader(
    state: _SharedState,
    costs,
    k: int,
    interval_cycles: int,
    live_workers: Dict[str, int],
    log: List,
):
    """Interval top-k reader over the shared structure (§4.2).

    Readers are "only readers" but still lock: they traverse the bucket
    list from the maximum toward the minimum frequency — opposite to
    updates — acquiring each bucket's lock (plus the min/max pointer
    lock) so writers are blocked while a reader is inside a bucket.
    This is exactly the extra synchronization §4.2 calls out.
    """
    from repro.simcore.effects import Latency, Now

    summary = state.counter.summary
    while True:
        finishing = live_workers["count"] == 0
        yield from _acquire(state.minmax_lock, TAG_MINMAX)
        answer = []
        bucket = summary._max  # reader enters at the maximum end
        yield from _release(state.minmax_lock, TAG_MINMAX)
        while bucket is not None and len(answer) < k:
            lock = state.bucket_lock(bucket)
            yield from _acquire(lock, TAG_BUCKET)
            for node in bucket.nodes():
                answer.append((node.element, bucket.freq))
                if len(answer) >= k:
                    break
            yield Compute(costs.key_compare * max(1, bucket.size), TAG_HASH)
            previous = bucket.prev
            yield from _release(lock, TAG_BUCKET)
            bucket = previous
        now = yield Now()
        log.append((now, answer))
        if finishing:
            return
        yield Latency(interval_cycles, tag="query")


def _tracked(worker, live_workers: Dict[str, int]):
    try:
        yield from worker
    finally:
        live_workers["count"] -= 1


def _worker(part: Sequence[Element], state: _SharedState, costs):
    counter = state.counter
    summary = counter.summary
    for element in part:
        # --- search structure: lookup + element-level serialization -----
        yield Compute(lookup_cycles(costs), TAG_HASH)
        element_lock = state.element_lock(element)
        yield from _acquire(element_lock, TAG_HASH)
        kind = op_kind(counter, element)
        # --- bucket-level locking (global order: minmax, then ascending
        # bucket frequency) ----------------------------------------------
        held = []
        if kind == "increment":
            node = summary.node(element)
            source = node.bucket
            if source.size == 1:
                # may empty the bucket and move the min/max pointers
                yield from _acquire(state.minmax_lock, TAG_MINMAX)
                held.append((state.minmax_lock, TAG_MINMAX))
            source_lock = state.bucket_lock(source)
            yield from _acquire(source_lock, TAG_BUCKET)
            held.append((source_lock, TAG_BUCKET))
            dest = source.next
            if dest is not None and dest.size > 0:
                dest_lock = state.bucket_lock(dest)
                if dest_lock is not source_lock:
                    yield from _acquire(dest_lock, TAG_BUCKET)
                    held.append((dest_lock, TAG_BUCKET))
        else:
            # insert and overwrite both work at the minimum bucket and can
            # move the min pointer.
            yield from _acquire(state.minmax_lock, TAG_MINMAX)
            held.append((state.minmax_lock, TAG_MINMAX))
            min_node = summary.min_node()
            if min_node is not None:
                min_lock = state.bucket_lock(min_node.bucket)
                yield from _acquire(min_lock, TAG_BUCKET)
                held.append((min_lock, TAG_BUCKET))
        # --- the Stream Summary operation itself -------------------------
        _, cycles = dynamic_update_cycles(counter, element, costs)
        yield Compute(cycles, TAG_STRUCTURE)
        counter.process(element)
        for lock, tag in reversed(held):
            yield from _release(lock, tag)
        yield from _release(element_lock, TAG_HASH)


def run_shared(
    stream: Sequence[Element],
    config: Optional[SchemeConfig] = None,
    lock_kind: str = "mutex",
    query_every_cycles: int = 0,
    query_top_k: int = 5,
) -> SchemeResult:
    """Drive the Shared Structure scheme over a buffered stream.

    ``lock_kind`` is ``"mutex"`` (pthread-style blocking, the paper's
    Figure 3(b)) or ``"spin"`` (busy-waiting, reported as even worse).
    ``query_every_cycles > 0`` additionally runs a lock-acquiring
    interval top-k reader (§4.2's reader synchronization); its answers
    land in ``extras["query_log"]``.
    """
    config = config if config is not None else SchemeConfig()
    if query_every_cycles < 0:
        raise ConfigurationError(
            f"query_every_cycles must be >= 0, got {query_every_cycles}"
        )
    state = _SharedState(config.capacity, lock_kind)
    parts = block_partition(stream, config.threads)
    engine = config.make_engine()
    config.bind_audit(
        engine, scheme="shared", counter=state.counter, stream=stream
    )
    live_workers = {"count": config.threads}
    query_log: List = []
    for index, name in enumerate(thread_names("shr", config.threads)):
        program = _worker(parts[index], state, config.costs)
        if query_every_cycles > 0:
            program = _tracked(program, live_workers)
        engine.spawn(program, name=name)
    if query_every_cycles > 0:
        engine.spawn(
            _query_reader(
                state, config.costs, query_top_k, query_every_cycles,
                live_workers, query_log,
            ),
            name="shr-reader",
        )
    execution = engine.run()
    return SchemeResult(
        scheme=f"shared-{lock_kind}",
        threads=config.threads,
        elements=len(stream),
        execution=execution,
        counter=state.counter,
        extras={"lock_kind": lock_kind, "query_log": query_log},
    )
