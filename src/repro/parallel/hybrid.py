"""The Hybrid local-plus-global design sketched in §4.4.

Each thread keeps a small *local* Space Saving cache that absorbs repeats
of hot elements; every ``flush_every`` processed elements the local
counts are pushed into a lock-protected *global* structure as bulk
increments.  The paper argues (without implementing it) that this design
degenerates at both ends of the skew spectrum:

* near-uniform input — local caches almost never hit, so every flush
  pushes mostly-fresh elements and the scheme collapses into the Shared
  design plus cache overhead;
* highly skewed input — all threads cache the *same* hot elements, so
  flushes still contend on the same global buckets, and answers between
  flushes grow stale.

This implementation exists to test that argument empirically; the
``hybrid`` ablation benchmark compares it against both parents.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.counters import Element
from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError
from repro.parallel.base import (
    SchemeConfig,
    SchemeResult,
    TAG_BUCKET,
    TAG_COUNTING,
    TAG_HASH,
    TAG_STRUCTURE,
    dynamic_update_cycles,
    lookup_cycles,
    thread_names,
)
from repro.parallel.shared import _SharedState, _acquire, _release
from repro.simcore.effects import Compute
from repro.simcore.engine import Engine
from repro.workloads.partition import block_partition


def _flush(local: SpaceSaving, state: _SharedState, costs):
    """Push every local counter into the global structure, then reset."""
    entries = local.entries()
    counter = state.counter
    for entry in entries:
        yield Compute(lookup_cycles(costs), TAG_HASH)
        element_lock = state.element_lock(entry.element)
        yield from _acquire(element_lock, TAG_HASH)
        min_node = counter.summary.min_node()
        held = []
        if min_node is not None:
            bucket_lock = state.bucket_lock(min_node.bucket)
            yield from _acquire(bucket_lock, TAG_BUCKET)
            held.append((bucket_lock, TAG_BUCKET))
        _, cycles = dynamic_update_cycles(counter, entry.element, costs)
        yield Compute(cycles, TAG_STRUCTURE)
        counter.process_bulk(entry.element, entry.count)
        for lock, tag in reversed(held):
            yield from _release(lock, tag)
        yield from _release(element_lock, TAG_HASH)
    # reset the local cache
    local.reset()


def _worker(
    part: Sequence[Element],
    local: SpaceSaving,
    state: _SharedState,
    costs,
    flush_every: int,
):
    since_flush = 0
    for element in part:
        _, cycles = dynamic_update_cycles(local, element, costs)
        yield Compute(lookup_cycles(costs) + cycles, TAG_COUNTING)
        local.process(element)
        since_flush += 1
        if since_flush >= flush_every:
            since_flush = 0
            yield from _flush(local, state, costs)
    if len(local.summary):
        yield from _flush(local, state, costs)


def run_hybrid(
    stream: Sequence[Element],
    config: Optional[SchemeConfig] = None,
    flush_every: int = 512,
    local_capacity: int = 0,
    lock_kind: str = "mutex",
) -> SchemeResult:
    """Drive the Hybrid scheme over a buffered stream.

    ``local_capacity`` defaults to a quarter of the global capacity
    (a small cache, as the design intends).
    """
    config = config if config is not None else SchemeConfig()
    if flush_every < 1:
        raise ConfigurationError(
            f"flush_every must be >= 1, got {flush_every}"
        )
    if local_capacity <= 0:
        local_capacity = max(1, config.capacity // 4)
    state = _SharedState(config.capacity, lock_kind)
    parts = block_partition(stream, config.threads)
    locals_ = [
        SpaceSaving(capacity=local_capacity) for _ in range(config.threads)
    ]
    engine = config.make_engine()
    config.bind_audit(
        engine, scheme="hybrid", counter=state.counter,
        locals=locals_, stream=stream,
    )
    for index, name in enumerate(thread_names("hyb", config.threads)):
        engine.spawn(
            _worker(
                parts[index], locals_[index], state, config.costs, flush_every
            ),
            name=name,
        )
    execution = engine.run()
    return SchemeResult(
        scheme="hybrid",
        threads=config.threads,
        elements=len(stream),
        execution=execution,
        counter=state.counter,
        extras={"flush_every": flush_every, "local_capacity": local_capacity},
    )
