"""Independent Structures — the shared-nothing naive scheme (§4.1).

Each thread runs a private Space Saving instance over its block of the
stream.  To answer a query the locals must be merged, and the paper poses
one query (hence one merge) every ``merge_every`` stream elements.  Two
merge strategies are modelled:

* ``serial`` — every thread synchronizes at a barrier, then thread 0
  alone folds all ``p`` local structures (O(p·m) counter visits) while
  the others wait at a second barrier;
* ``hierarchical`` — pairwise merges level-by-level like merge sort's
  merge phase, with a full barrier after every level.  The folds within
  one level proceed in parallel, but each of the log2(p) barriers costs
  a synchronization round-trip — the overhead that, per the paper, stops
  hierarchical merge from beating serial merge in practice.

The counting phase is embarrassingly parallel (tag ``counting``); all
merge work and merge waiting is tagged ``merge``, which is exactly the
split Figure 4 plots.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.counters import Element
from repro.core.merge import merge_schedule, merge_space_saving
from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError
from repro.parallel.base import (
    SchemeConfig,
    SchemeResult,
    TAG_COUNTING,
    TAG_MERGE,
    sequential_bulk_step,
    sequential_step,
    thread_names,
)
from repro.simcore.effects import Compute
from repro.simcore.engine import Engine
from repro.simcore.sync import Barrier
from repro.workloads.partition import block_partition


def _worker(
    index: int,
    part: Sequence[Element],
    locals_: List[SpaceSaving],
    costs,
    barrier: Barrier,
    local_interval: int,
    rounds: int,
    strategy: str,
    levels,
    merge_log: List[SpaceSaving],
    batch: int = 1,
):
    counter = locals_[index]
    done_rounds = 0
    since_merge = 0
    pos = 0
    length = len(part)
    while pos < length:
        if batch > 1:
            # run-fused fast lane, never crossing a merge point: the run
            # is capped so merges still happen after exactly
            # `local_interval` local elements
            element = part[pos]
            stop = pos + 1
            limit = min(length, pos + batch, pos + local_interval - since_merge)
            while stop < limit and part[stop] == element:
                stop += 1
            run = stop - pos
            yield from sequential_bulk_step(
                counter, element, run, costs, TAG_COUNTING
            )
            pos = stop
            since_merge += run
        else:
            yield from sequential_step(
                counter, part[pos], costs, TAG_COUNTING
            )
            pos += 1
            since_merge += 1
        if since_merge >= local_interval and done_rounds < rounds:
            since_merge = 0
            done_rounds += 1
            yield from _merge_round(
                index, locals_, costs, barrier, strategy, levels, merge_log
            )
    # Partitions are near-equal but not identical; keep joining barriers
    # so siblings can finish their remaining merge rounds.
    while done_rounds < rounds:
        done_rounds += 1
        yield from _merge_round(
            index, locals_, costs, barrier, strategy, levels, merge_log
        )


def _merge_round(
    index: int,
    locals_: List[SpaceSaving],
    costs,
    barrier: Barrier,
    strategy: str,
    levels,
    merge_log: List[SpaceSaving],
):
    yield barrier.wait(TAG_MERGE)
    if strategy == "serial":
        if index == 0:
            visits = sum(len(local.summary) for local in locals_)
            yield Compute(costs.merge_per_counter * visits, TAG_MERGE)
            merge_log.append(merge_space_saving(locals_))
        yield barrier.wait(TAG_MERGE)
        return
    # hierarchical: each level folds pairs in parallel, then barriers.
    sizes = [len(local.summary) for local in locals_]
    for level in levels:
        for left, right in level:
            if index == left:
                visits = sizes[left] + sizes[right]
                yield Compute(costs.merge_per_counter * visits, TAG_MERGE)
                sizes[left] = min(
                    locals_[left].capacity, sizes[left] + sizes[right]
                )
        yield barrier.wait(TAG_MERGE)
    if index == 0:
        merge_log.append(merge_space_saving(locals_))


def run_independent(
    stream: Sequence[Element],
    config: Optional[SchemeConfig] = None,
    merge_every: int = 0,
    strategy: str = "serial",
    batch: int = 1,
) -> SchemeResult:
    """Drive the Independent Structures scheme over a buffered stream.

    ``merge_every`` is the query interval in *stream elements* (the paper
    uses 50000 on 5M-element streams, i.e. 1%); 0 disables periodic
    merges and only a final merge is performed.  ``strategy`` selects
    serial or hierarchical merging.  ``batch > 1`` turns on the run-fused
    counting fast lane (runs never cross a merge point, so merge timing
    and results are unchanged).
    """
    if strategy not in ("serial", "hierarchical"):
        raise ConfigurationError(
            f"strategy must be 'serial' or 'hierarchical', got {strategy!r}"
        )
    if batch < 1:
        raise ConfigurationError(f"batch must be >= 1, got {batch}")
    config = config if config is not None else SchemeConfig()
    threads = config.threads
    parts = block_partition(stream, threads)
    locals_ = [SpaceSaving(capacity=config.capacity) for _ in range(threads)]
    barrier = Barrier(threads, name="merge-barrier")
    longest = max(len(part) for part in parts)
    if merge_every > 0:
        local_interval = max(1, merge_every // threads)
        rounds = math.ceil(longest / local_interval) if longest else 0
    else:
        local_interval = longest + 1  # never triggers mid-stream
        rounds = 0
    levels = merge_schedule(threads)
    merge_log: List[SpaceSaving] = []
    engine = config.make_engine()
    config.bind_audit(
        engine, scheme="independent", locals=locals_, stream=stream
    )
    for index, name in enumerate(thread_names("ind", threads)):
        engine.spawn(
            _worker(
                index,
                parts[index],
                locals_,
                config.costs,
                barrier,
                local_interval,
                rounds,
                strategy,
                levels,
                merge_log,
                batch,
            ),
            name=name,
        )
    execution = engine.run()
    final = merge_log[-1] if merge_log else merge_space_saving(locals_)
    return SchemeResult(
        scheme=f"independent-{strategy}",
        threads=threads,
        elements=len(stream),
        execution=execution,
        counter=final,
        extras={
            "merge_rounds": rounds,
            "merge_log": merge_log,
            "locals": locals_,
        },
    )
