"""The sequential baseline: one thread, no locks, no synchronization.

This is the "Sequential" row of Table 2 — plain Space Saving processing
the stream on a single core, whose absolute simulated time anchors every
speedup figure.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.counters import Element
from repro.core.space_saving import SpaceSaving
from repro.parallel.base import (
    SchemeConfig,
    SchemeResult,
    TAG_COUNTING,
    sequential_step,
)
from repro.simcore.engine import Engine


def _worker(stream: Sequence[Element], counter: SpaceSaving, costs):
    for element in stream:
        yield from sequential_step(counter, element, costs, TAG_COUNTING)


def run_sequential(
    stream: Sequence[Element],
    config: Optional[SchemeConfig] = None,
) -> SchemeResult:
    """Process ``stream`` with a single simulated thread.

    ``config.threads`` is ignored (always 1); machine, costs and capacity
    apply as usual.
    """
    config = config if config is not None else SchemeConfig()
    counter = SpaceSaving(capacity=config.capacity)
    engine = Engine(machine=config.machine, costs=config.costs)
    engine.spawn(_worker(stream, counter, config.costs), name="seq-0")
    execution = engine.run()
    return SchemeResult(
        scheme="sequential",
        threads=1,
        elements=len(stream),
        execution=execution,
        counter=counter,
    )
