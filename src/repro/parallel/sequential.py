"""The sequential baseline: one thread, no locks, no synchronization.

This is the "Sequential" row of Table 2 — plain Space Saving processing
the stream on a single core, whose absolute simulated time anchors every
speedup figure.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.counters import Element
from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError
from repro.parallel.base import (
    SchemeConfig,
    SchemeResult,
    TAG_COUNTING,
    sequential_bulk_step,
    sequential_step,
)
from repro.simcore.engine import Engine


def _worker(stream: Sequence[Element], counter: SpaceSaving, costs):
    for element in stream:
        yield from sequential_step(counter, element, costs, TAG_COUNTING)


def _worker_batched(
    stream: Sequence[Element], counter: SpaceSaving, costs, batch: int
):
    """Run-fused variant: consecutive identical elements (capped at
    ``batch``) pay one lookup and one summary move."""
    index = 0
    length = len(stream)
    while index < length:
        element = stream[index]
        stop = index + 1
        limit = min(length, index + batch)
        while stop < limit and stream[stop] == element:
            stop += 1
        yield from sequential_bulk_step(
            counter, element, stop - index, costs, TAG_COUNTING
        )
        index = stop


def run_sequential(
    stream: Sequence[Element],
    config: Optional[SchemeConfig] = None,
    batch: int = 1,
) -> SchemeResult:
    """Process ``stream`` with a single simulated thread.

    ``config.threads`` is ignored (always 1); machine, costs and capacity
    apply as usual.  ``batch > 1`` enables the run-fused fast lane:
    consecutive repeats of one element (up to ``batch`` of them) are
    folded into a single charged bulk step.  The final counter is
    identical either way; only the simulated cost differs.
    """
    if batch < 1:
        raise ConfigurationError(f"batch must be >= 1, got {batch}")
    config = config if config is not None else SchemeConfig()
    counter = SpaceSaving(capacity=config.capacity, metrics=config.metrics)
    engine = config.make_engine()
    config.bind_audit(
        engine, scheme="sequential", counter=counter, stream=stream
    )
    if batch > 1:
        program = _worker_batched(stream, counter, config.costs, batch)
    else:
        program = _worker(stream, counter, config.costs)
    engine.spawn(program, name="seq-0")
    execution = engine.run()
    extras = {}
    if config.metrics is not None:
        extras["metrics"] = config.metrics.snapshot()
    return SchemeResult(
        scheme="sequential",
        threads=1,
        elements=len(stream),
        execution=execution,
        counter=counter,
        extras=extras,
    )
