"""Reproduction of *CoTS: A Scalable Framework for Parallelizing
Frequency Counting over Data Streams* (Das, Antony, Agrawal, El Abbadi —
ICDE 2009).

Public surface:

* :mod:`repro.core` — sequential frequency-counting algorithms (Space
  Saving on the Stream Summary structure, plus Lossy Counting,
  Misra-Gries, Sticky Sampling and sketch baselines) and the stream
  query model (frequent elements / top-k; point / set / interval).
* :mod:`repro.simcore` — the deterministic discrete-event multicore
  simulator used as the parallel-hardware substrate.
* :mod:`repro.parallel` — the paper's naive parallelization schemes
  (Independent Structures, Shared Structure, Hybrid) on the simulator.
* :mod:`repro.cots` — the CoTS cooperative-thread-scheduling framework.
* :mod:`repro.workloads` — zipfian and other synthetic stream generators.
* :mod:`repro.experiments` — one driver per table/figure of the paper.
"""

__version__ = "0.1.0"
