"""Zipfian stream generation — the paper's synthetic workload.

Section 6: "The data set is synthetically generated and follows zipfian
distribution ... the frequency of the elements in the distribution varies
as f_i = N / (i^alpha * zeta(alpha)) where zeta(alpha) = sum_{i=1}^{|A|}
1/i^alpha".  Note the zeta is *truncated at the alphabet size* |A|, so the
distribution is a proper probability over the alphabet for every
alpha >= 0 (alpha = 0 is uniform).

Elements are the integers ``0 .. alphabet-1`` where element ``i`` is the
``(i+1)``-th most frequent; pass ``shuffle_identities=True`` to detach an
element's identity from its rank (the hash table then sees uncorrelated
keys, as with real click streams).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List

import numpy as np

from repro.errors import StreamError


def zipf_weights(alphabet: int, alpha: float) -> np.ndarray:
    """Normalized zipfian probabilities ``p_i = (1/i^alpha) / zeta(alpha)``."""
    if alphabet < 1:
        raise StreamError(f"alphabet must be >= 1, got {alphabet}")
    if alpha < 0:
        raise StreamError(f"alpha must be >= 0, got {alpha}")
    ranks = np.arange(1, alphabet + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


def expected_frequency(
    rank: int, length: int, alphabet: int, alpha: float
) -> float:
    """The paper's f_i for the element of 1-based ``rank``."""
    if rank < 1 or rank > alphabet:
        raise StreamError(f"rank must be in [1, {alphabet}], got {rank}")
    return length * float(zipf_weights(alphabet, alpha)[rank - 1])


@dataclasses.dataclass(frozen=True)
class ZipfStreamSpec:
    """Parameters of one zipfian stream (hashable; used as cache keys)."""

    length: int
    alphabet: int
    alpha: float
    seed: int = 0
    shuffle_identities: bool = False

    def __post_init__(self) -> None:
        if self.length < 0:
            raise StreamError(f"length must be >= 0, got {self.length}")
        if self.alphabet < 1:
            raise StreamError(f"alphabet must be >= 1, got {self.alphabet}")
        if self.alpha < 0:
            raise StreamError(f"alpha must be >= 0, got {self.alpha}")

    def generate(self) -> np.ndarray:
        """Materialize the stream as an int64 numpy array."""
        rng = np.random.default_rng(self.seed)
        weights = zipf_weights(self.alphabet, self.alpha)
        stream = rng.choice(self.alphabet, size=self.length, p=weights)
        if self.shuffle_identities:
            identity = rng.permutation(self.alphabet)
            stream = identity[stream]
        return stream.astype(np.int64)

    def elements(self) -> List[int]:
        """The stream as a plain Python list (convenient for counters)."""
        return self.generate().tolist()

    def __iter__(self) -> Iterator[int]:
        return iter(self.elements())


def zipf_stream(
    length: int,
    alphabet: int,
    alpha: float,
    seed: int = 0,
    shuffle_identities: bool = False,
) -> List[int]:
    """One-shot helper: a seeded zipfian stream as a Python list."""
    spec = ZipfStreamSpec(
        length=length,
        alphabet=alphabet,
        alpha=alpha,
        seed=seed,
        shuffle_identities=shuffle_identities,
    )
    return spec.elements()


def paper_scaled_spec(
    scale: float = 1.0,
    alpha: float = 2.0,
    seed: int = 0,
    base_length: int = 5_000_000,
    base_alphabet: int = 5_000_000,
) -> ZipfStreamSpec:
    """The paper's workload shrunk by ``scale`` with proportions intact.

    The paper's experiments use streams of 1M-100M elements over a 5M
    alphabet.  Simulating that in pure Python is infeasible, so the
    experiment drivers shrink both dimensions by the same factor; shapes
    (skew, churn rate, merge-to-counting ratios) are preserved because
    they depend on the ratios, not the absolute sizes.
    """
    if scale <= 0:
        raise StreamError(f"scale must be > 0, got {scale}")
    length = max(1, int(base_length * scale))
    alphabet = max(1, int(base_alphabet * scale))
    return ZipfStreamSpec(
        length=length, alphabet=alphabet, alpha=alpha, seed=seed
    )
