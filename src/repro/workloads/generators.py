"""Non-zipfian stream generators.

The paper evaluates only zipfian data, but the test-suite and the
examples need richer inputs: uniform streams (the alpha -> 0 limit the
paper deliberately skips), bursty streams whose hot set drifts over time
(click-stream-like non-stationarity), adversarial churn streams that
force an eviction on every step, and explicit-weight multinomial streams.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import StreamError
from repro.workloads.zipf import zipf_weights


def uniform_stream(
    length: int, alphabet: int, seed: int = 0
) -> List[int]:
    """Each element drawn uniformly from ``0 .. alphabet-1``."""
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    if alphabet < 1:
        raise StreamError(f"alphabet must be >= 1, got {alphabet}")
    rng = np.random.default_rng(seed)
    return rng.integers(0, alphabet, size=length).tolist()


def weighted_stream(
    length: int, weights: Sequence[float], seed: int = 0
) -> List[int]:
    """Multinomial stream over ``len(weights)`` elements."""
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    array = np.asarray(weights, dtype=np.float64)
    if array.size == 0:
        raise StreamError("weights must be non-empty")
    if (array < 0).any() or array.sum() <= 0:
        raise StreamError("weights must be non-negative with positive sum")
    rng = np.random.default_rng(seed)
    return rng.choice(len(array), size=length, p=array / array.sum()).tolist()


def bursty_stream(
    length: int,
    alphabet: int,
    burst_length: int,
    hot_fraction: float = 0.8,
    seed: int = 0,
) -> List[int]:
    """A stream whose hot element changes every ``burst_length`` steps.

    Within a burst, the current hot element appears with probability
    ``hot_fraction``; the rest is uniform background.  This models the
    non-stationary skew of real click streams (a new viral ad), and it
    exercises the summary's bucket churn far harder than stationary zipf.
    """
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    if alphabet < 1:
        raise StreamError(f"alphabet must be >= 1, got {alphabet}")
    if burst_length < 1:
        raise StreamError(f"burst_length must be >= 1, got {burst_length}")
    if not 0 <= hot_fraction <= 1:
        raise StreamError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )
    rng = np.random.default_rng(seed)
    stream: List[int] = []
    remaining = length
    while remaining > 0:
        burst = min(burst_length, remaining)
        hot = int(rng.integers(0, alphabet))
        hot_mask = rng.random(burst) < hot_fraction
        background = rng.integers(0, alphabet, size=burst)
        chunk = np.where(hot_mask, hot, background)
        stream.extend(chunk.tolist())
        remaining -= burst
    return stream


def churn_stream(length: int, alphabet: int = 0) -> List[int]:
    """A deterministic worst case: every element is distinct (round-robin
    over a huge alphabet), forcing an eviction per step once a bounded
    counter structure is full.

    ``alphabet = 0`` (default) means "never repeat" (alphabet = length).
    """
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    if alphabet < 0:
        raise StreamError(f"alphabet must be >= 0, got {alphabet}")
    period = alphabet if alphabet > 0 else max(1, length)
    return [i % period for i in range(length)]


def drift_stream(
    length: int,
    alphabet: int,
    alpha_start: float = 2.0,
    alpha_end: float = 0.4,
    segments: int = 16,
    seed: int = 0,
) -> List[int]:
    """A zipfian stream whose skew exponent drifts over time.

    The stream is cut into ``segments`` equal pieces; piece ``j`` draws
    from a zipf distribution with exponent linearly interpolated from
    ``alpha_start`` to ``alpha_end``.  A drift from heavy skew toward
    uniformity starves the summary of a stable hot set — exactly the
    non-stationarity the paper's stationary-zipf evaluation skips.
    """
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    if alphabet < 1:
        raise StreamError(f"alphabet must be >= 1, got {alphabet}")
    if segments < 1:
        raise StreamError(f"segments must be >= 1, got {segments}")
    if alpha_start < 0 or alpha_end < 0:
        raise StreamError(
            f"alpha must be >= 0, got start={alpha_start} end={alpha_end}"
        )
    rng = np.random.default_rng(seed)
    stream: List[int] = []
    remaining = length
    for j in range(segments):
        piece = min(remaining, -(-length // segments))
        if piece <= 0:
            break
        t = j / (segments - 1) if segments > 1 else 0.0
        alpha = alpha_start + (alpha_end - alpha_start) * t
        weights = zipf_weights(alphabet, alpha)
        stream.extend(
            rng.choice(alphabet, size=piece, p=weights).tolist()
        )
        remaining -= piece
    return stream


def flash_crowd_stream(
    length: int,
    alphabet: int,
    crowds: int = 4,
    crowd_length: int = 0,
    peak_fraction: float = 0.9,
    seed: int = 0,
) -> List[int]:
    """Uniform background punctuated by flash crowds on fresh keys.

    ``crowds`` evenly spaced windows each promote one previously unseen
    key (ids ``alphabet .. alphabet+crowds-1``) to ``peak_fraction`` of
    the traffic, then drop it cold.  ``crowd_length = 0`` (default)
    sizes each window to half its spacing.  Flash keys start with zero
    history, so the summary must admit them through the min bucket while
    they are hot — the flash-sale / breaking-news shape.
    """
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    if alphabet < 1:
        raise StreamError(f"alphabet must be >= 1, got {alphabet}")
    if crowds < 1:
        raise StreamError(f"crowds must be >= 1, got {crowds}")
    if crowd_length < 0:
        raise StreamError(f"crowd_length must be >= 0, got {crowd_length}")
    if not 0 <= peak_fraction <= 1:
        raise StreamError(
            f"peak_fraction must be in [0, 1], got {peak_fraction}"
        )
    rng = np.random.default_rng(seed)
    stream = rng.integers(0, alphabet, size=length)
    spacing = max(1, length // crowds)
    window = crowd_length if crowd_length else max(1, spacing // 2)
    for c in range(crowds):
        start = c * spacing + max(0, (spacing - window) // 2)
        end = min(length, start + window)
        if start >= end:
            continue
        hot_mask = rng.random(end - start) < peak_fraction
        stream[start:end] = np.where(
            hot_mask, alphabet + c, stream[start:end]
        )
    return stream.tolist()


def hot_set_churn_stream(
    length: int,
    alphabet: int,
    hot_size: int = 8,
    hot_fraction: float = 0.7,
    rotate_every: int = 1000,
    seed: int = 0,
) -> List[int]:
    """A rolling hot set: ``hot_size`` keys share ``hot_fraction`` of
    the traffic, and every ``rotate_every`` steps the oldest hot key
    retires in favour of a brand-new one (ids ``alphabet, alphabet+1,
    ...``).  Unlike :func:`bursty_stream` (one hot key, instant jumps)
    the hot set here overlaps across rotations, so the summary carries
    stale-but-recently-hot keys whose counts decay only by eviction.
    """
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    if alphabet < 1:
        raise StreamError(f"alphabet must be >= 1, got {alphabet}")
    if hot_size < 1:
        raise StreamError(f"hot_size must be >= 1, got {hot_size}")
    if rotate_every < 1:
        raise StreamError(f"rotate_every must be >= 1, got {rotate_every}")
    if not 0 <= hot_fraction <= 1:
        raise StreamError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )
    rng = np.random.default_rng(seed)
    hot = list(range(alphabet, alphabet + hot_size))
    next_fresh = alphabet + hot_size
    stream: List[int] = []
    remaining = length
    while remaining > 0:
        block = min(rotate_every, remaining)
        hot_mask = rng.random(block) < hot_fraction
        hot_pick = np.asarray(hot)[rng.integers(0, hot_size, size=block)]
        background = rng.integers(0, alphabet, size=block)
        stream.extend(np.where(hot_mask, hot_pick, background).tolist())
        remaining -= block
        hot.pop(0)
        hot.append(next_fresh)
        next_fresh += 1
    return stream


def interleave(streams: Iterable[Sequence[int]]) -> List[int]:
    """Round-robin interleave several streams (shorter ones just end)."""
    columns = [list(s) for s in streams]
    if not columns:
        return []
    result: List[int] = []
    longest = max(len(c) for c in columns)
    for i in range(longest):
        for column in columns:
            if i < len(column):
                result.append(column[i])
    return result
