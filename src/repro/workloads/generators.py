"""Non-zipfian stream generators.

The paper evaluates only zipfian data, but the test-suite and the
examples need richer inputs: uniform streams (the alpha -> 0 limit the
paper deliberately skips), bursty streams whose hot set drifts over time
(click-stream-like non-stationarity), adversarial churn streams that
force an eviction on every step, and explicit-weight multinomial streams.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import StreamError


def uniform_stream(
    length: int, alphabet: int, seed: int = 0
) -> List[int]:
    """Each element drawn uniformly from ``0 .. alphabet-1``."""
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    if alphabet < 1:
        raise StreamError(f"alphabet must be >= 1, got {alphabet}")
    rng = np.random.default_rng(seed)
    return rng.integers(0, alphabet, size=length).tolist()


def weighted_stream(
    length: int, weights: Sequence[float], seed: int = 0
) -> List[int]:
    """Multinomial stream over ``len(weights)`` elements."""
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    array = np.asarray(weights, dtype=np.float64)
    if array.size == 0:
        raise StreamError("weights must be non-empty")
    if (array < 0).any() or array.sum() <= 0:
        raise StreamError("weights must be non-negative with positive sum")
    rng = np.random.default_rng(seed)
    return rng.choice(len(array), size=length, p=array / array.sum()).tolist()


def bursty_stream(
    length: int,
    alphabet: int,
    burst_length: int,
    hot_fraction: float = 0.8,
    seed: int = 0,
) -> List[int]:
    """A stream whose hot element changes every ``burst_length`` steps.

    Within a burst, the current hot element appears with probability
    ``hot_fraction``; the rest is uniform background.  This models the
    non-stationary skew of real click streams (a new viral ad), and it
    exercises the summary's bucket churn far harder than stationary zipf.
    """
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    if alphabet < 1:
        raise StreamError(f"alphabet must be >= 1, got {alphabet}")
    if burst_length < 1:
        raise StreamError(f"burst_length must be >= 1, got {burst_length}")
    if not 0 <= hot_fraction <= 1:
        raise StreamError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )
    rng = np.random.default_rng(seed)
    stream: List[int] = []
    remaining = length
    while remaining > 0:
        burst = min(burst_length, remaining)
        hot = int(rng.integers(0, alphabet))
        hot_mask = rng.random(burst) < hot_fraction
        background = rng.integers(0, alphabet, size=burst)
        chunk = np.where(hot_mask, hot, background)
        stream.extend(chunk.tolist())
        remaining -= burst
    return stream


def churn_stream(length: int, alphabet: int = 0) -> List[int]:
    """A deterministic worst case: every element is distinct (round-robin
    over a huge alphabet), forcing an eviction per step once a bounded
    counter structure is full.

    ``alphabet = 0`` (default) means "never repeat" (alphabet = length).
    """
    if length < 0:
        raise StreamError(f"length must be >= 0, got {length}")
    if alphabet < 0:
        raise StreamError(f"alphabet must be >= 0, got {alphabet}")
    period = alphabet if alphabet > 0 else max(1, length)
    return [i % period for i in range(length)]


def interleave(streams: Iterable[Sequence[int]]) -> List[int]:
    """Round-robin interleave several streams (shorter ones just end)."""
    columns = [list(s) for s in streams]
    if not columns:
        return []
    result: List[int] = []
    longest = max(len(c) for c in columns)
    for i in range(longest):
        for column in columns:
            if i < len(column):
                result.append(column[i])
    return result
