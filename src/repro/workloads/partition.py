"""Partitioning a stream across parallel threads.

The parallel schemes split the input among ``p`` threads.  The paper's
designs implicitly use contiguous partitions of the buffered input;
round-robin and hash partitioning are provided as alternatives because
they change the contention profile (hash partitioning gives each element
a *home* thread — effectively turning the shared design into a sharded
one — which the ablation benchmarks explore).
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Iterator, List, Sequence, TypeVar

from repro.errors import StreamError

T = TypeVar("T", bound=Hashable)


def _check(parts: int) -> None:
    if parts < 1:
        raise StreamError(f"parts must be >= 1, got {parts}")


def block_partition(stream: Sequence[T], parts: int) -> List[List[T]]:
    """Contiguous chunks of (nearly) equal size; order preserved."""
    _check(parts)
    # Slicing a list already yields a fresh list; only non-list
    # sequences (tuples, strings, arrays) need the list() conversion.
    need_copy = not isinstance(stream, list)
    length = len(stream)
    base, extra = divmod(length, parts)
    result: List[List[T]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunk = stream[start : start + size]
        result.append(list(chunk) if need_copy else chunk)
        start += size
    return result


def chunked(iterable: Iterable[T], size: int) -> Iterator[List[T]]:
    """Yield successive lists of at most ``size`` elements.

    Iterator-friendly (the input is consumed lazily, never materialized
    whole), so it suits streaming dispatch: the multiprocess backend
    reads one chunk at a time, routes it to worker shards, and moves on.
    The final chunk may be shorter; an empty input yields nothing.
    """
    if size < 1:
        raise StreamError(f"size must be >= 1, got {size}")
    iterator = iter(iterable)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


def round_robin_partition(stream: Sequence[T], parts: int) -> List[List[T]]:
    """Element ``i`` goes to partition ``i mod parts``."""
    _check(parts)
    result: List[List[T]] = [[] for _ in range(parts)]
    for index, element in enumerate(stream):
        result[index % parts].append(element)
    return result


def hash_partition(stream: Sequence[T], parts: int) -> List[List[T]]:
    """Each element's *value* selects its partition (sharding by key).

    All occurrences of one element land on one thread, eliminating
    element-level contention entirely at the price of load imbalance
    under skew — the trade-off the hybrid design discussion (§4.4)
    alludes to.
    """
    _check(parts)
    result: List[List[T]] = [[] for _ in range(parts)]
    for element in stream:
        result[hash(element) % parts].append(element)
    return result


def partition(stream: Sequence[T], parts: int, how: str = "block") -> List[List[T]]:
    """Dispatch on partitioning strategy name: block, round_robin, hash."""
    strategies = {
        "block": block_partition,
        "round_robin": round_robin_partition,
        "hash": hash_partition,
    }
    try:
        chosen = strategies[how]
    except KeyError:
        raise StreamError(
            f"unknown partitioning {how!r}; pick one of {sorted(strategies)}"
        ) from None
    return chosen(stream, parts)
