"""Synthetic stream workloads and partitioning utilities."""

from repro.workloads.generators import (
    bursty_stream,
    churn_stream,
    drift_stream,
    flash_crowd_stream,
    hot_set_churn_stream,
    interleave,
    uniform_stream,
    weighted_stream,
)
from repro.workloads.partition import (
    block_partition,
    chunked,
    hash_partition,
    partition,
    round_robin_partition,
)
from repro.workloads.zipf import (
    ZipfStreamSpec,
    expected_frequency,
    paper_scaled_spec,
    zipf_stream,
    zipf_weights,
)

__all__ = [
    "ZipfStreamSpec",
    "block_partition",
    "bursty_stream",
    "chunked",
    "churn_stream",
    "drift_stream",
    "expected_frequency",
    "flash_crowd_stream",
    "hash_partition",
    "hot_set_churn_stream",
    "interleave",
    "paper_scaled_spec",
    "partition",
    "round_robin_partition",
    "uniform_stream",
    "weighted_stream",
    "zipf_stream",
    "zipf_weights",
]
