"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiment``
    Regenerate one (or all) of the paper's tables/figures and print the
    rows, optionally archiving them to a directory::

        python -m repro experiment table2 --scale tiny
        python -m repro experiment all --scale default --output results/

``generate``
    Emit a synthetic zipfian stream, one element per line::

        python -m repro generate --length 10000 --alpha 2.0 > stream.txt

``count``
    Run a frequency-counting algorithm over a stream file (or stdin) and
    print the top-k / frequent elements; ``--workers N`` counts on N
    real processes via the multiprocess sharded backend::

        python -m repro count stream.txt --algorithm space-saving \
            --capacity 100 --top 10 --phi 0.01 --workers 4

``simulate``
    Drive one parallelization scheme over a synthetic stream on the
    simulated quad-core and report simulated time, throughput and the
    time breakdown::

        python -m repro simulate --scheme cots --threads 64 --alpha 2.5

``bench``
    Run a pinned benchmark suite and write the machine-readable report.
    ``--suite core`` (default) measures the hot-path wall clock and
    every simulated scheme; ``--suite mp`` measures the multiprocess
    sharded backend's real wall-clock scaling curve; ``--suite
    scenarios`` runs the accuracy matrix (every scenario on every
    backend, gated on zero guarantee violations)::

        python -m repro bench --scale tiny --output BENCH_core.json
        python -m repro bench --suite mp --scale default
        python -m repro bench --suite scenarios --scale smoke

``report``
    Render the metrics snapshots embedded in a bench report (or any
    JSON document carrying the same schema) as a readable table, or as
    machine-readable JSON with ``--json``; ``--diff`` compares two
    reports and exits 1 when a gated metric regresses past its
    threshold::

        python -m repro report BENCH_core.json
        python -m repro report BENCH_mp.json --entry mp-sharded --json
        python -m repro report --diff BENCH_mp.json fresh.json --tolerance 5.0

``schedcheck``
    Explore N seeded scheduling perturbations per scheme, auditing
    structural and semantic invariants on every run; failing schedules
    are shrunk to minimal reproducers (``--trace-dir`` additionally
    dumps each reproducer as a Chrome trace).  Exit code 1 on
    violations::

        python -m repro schedcheck --schemes cots,shared,hybrid \
            --schedules 200 --seed 42

``scenarios``
    Run registered stream scenarios (drift, flash crowds, hot-set
    churn, adversarial floods and eviction poisoning) against a chosen
    backend and print per-scenario accuracy against exact ground truth;
    ``--fuzz N`` instead composes scenarios randomly under a seed and
    shrinks any lane-differential or guarantee failure to a minimal
    reproducer via schedcheck's ddmin.  Exit code 1 on violations::

        python -m repro scenarios --list
        python -m repro scenarios --backend mp-shm --capacity 128
        python -m repro scenarios --scenario eviction-poison --k 20
        python -m repro scenarios --fuzz 25 --seed 42

``serve``
    Boot the async TCP serve tier: live ``ingest`` plus the paper's
    full §3.2 query model (point / set / interval / continuous) over a
    newline-delimited JSON protocol, micro-batched into any registered
    backend and answered from bounded-staleness snapshots (protocol
    reference and operator guide: docs/serve.md)::

        python -m repro serve --backend sequential --port 7070
        python -m repro serve --backend mp-one-table --workers 4

``serve-bench``
    Load-generate against an in-process server: N thousand genuinely
    concurrent client connections stream zipfian keys and queries
    through real sockets, then every answer is audited against exact
    ground truth; writes BENCH_serve.json (connections, ingest
    events/s, p50/p99 query latency, measured staleness)::

        python -m repro serve-bench --scale smoke
        python -m repro serve-bench --scale default --backend mp-shm

``top``
    Live terminal dashboard for a running server: attaches to its
    ``metrics`` push stream and renders windowed rates, latency
    quantiles, per-worker beacon occupancy and SLO alert state;
    ``--once --json`` turns it into a scriptable probe::

        python -m repro top --port 7070
        python -m repro top --port 7070 --once --json

``trace``
    Record a traced run and print its timeline; ``--mode`` picks the
    simulated shared scheme (engine-effect trace), a span-traced
    simulated CoTS run, or a span-traced real multiprocess run, and
    ``--out`` exports Chrome trace-event JSON for Perfetto /
    ``chrome://tracing``::

        python -m repro trace --mode cots --threads 8 --out cots.json
        python -m repro trace --mode mp --workers 2 --out mp.json
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'CoTS: A Scalable Framework for Parallelizing "
            "Frequency Counting over Data Streams' (ICDE 2009)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    experiment = commands.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument(
        "which",
        help="experiment id (fig3a, fig3b, fig4-7, fig11, fig12, table2) "
        "or 'all'",
    )
    experiment.add_argument(
        "--scale",
        choices=("tiny", "default", "large"),
        default="tiny",
        help="workload scale preset (default: tiny)",
    )
    experiment.add_argument(
        "--output", type=pathlib.Path, default=None,
        help="also write each table to <output>/<id>.txt",
    )
    experiment.add_argument(
        "--chart", nargs=2, metavar=("X", "Y"), default=None,
        help="also draw an ASCII chart of column Y against column X "
        "(e.g. --chart threads speedup)",
    )

    generate = commands.add_parser(
        "generate", help="emit a synthetic zipfian stream to stdout"
    )
    generate.add_argument("--length", type=int, default=10_000)
    generate.add_argument("--alphabet", type=int, default=0,
                          help="alphabet size (default: same as length)")
    generate.add_argument("--alpha", type=float, default=2.0)
    generate.add_argument("--seed", type=int, default=0)

    count = commands.add_parser(
        "count", help="count frequencies in a stream file (or stdin)"
    )
    count.add_argument(
        "stream", nargs="?", default="-",
        help="file with one element per line, or '-' for stdin",
    )
    count.add_argument(
        "--algorithm",
        choices=(
            "space-saving", "lossy-counting", "misra-gries",
            "sticky-sampling", "count-min", "exact",
        ),
        default="space-saving",
    )
    count.add_argument("--capacity", type=int, default=100,
                       help="counter budget (counter-based algorithms)")
    count.add_argument("--epsilon", type=float, default=0.01,
                       help="error bound (lossy-counting / count-min)")
    count.add_argument("--top", type=int, default=10,
                       help="print the top-k elements")
    count.add_argument("--phi", type=float, default=0.0,
                       help="also print elements above this support")
    count.add_argument("--workers", type=int, default=1,
                       help="count on N worker processes via the "
                       "multiprocess sharded backend (space-saving only)")
    count.add_argument("--transport", choices=("shm", "pickle"),
                       default="shm",
                       help="mp data plane: shared-memory rings of "
                       "integer-coded pairs (default) or pickled batches")

    simulate = commands.add_parser(
        "simulate",
        help="drive a parallelization scheme on the simulated quad-core",
    )
    simulate.add_argument(
        "--scheme",
        choices=("sequential", "shared", "shared-spin", "independent",
                 "hybrid", "cots", "cots-lossy"),
        default="cots",
    )
    simulate.add_argument("--threads", type=int, default=16)
    simulate.add_argument("--capacity", type=int, default=128)
    simulate.add_argument("--length", type=int, default=10_000)
    simulate.add_argument("--alpha", type=float, default=2.5)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--cores", type=int, default=4)
    simulate.add_argument("--merge-every", type=int, default=0,
                          help="independent: merge interval in elements")
    simulate.add_argument("--top", type=int, default=5)

    bench = commands.add_parser(
        "bench",
        help="run a pinned benchmark suite and write BENCH_<suite>.json",
    )
    bench.add_argument(
        "--suite",
        choices=("core", "mp", "scenarios", "sketch"),
        default="core",
        help="core: hot path + simulated schemes; mp: the multiprocess "
        "sharded backend scaling curve; scenarios: the accuracy matrix "
        "of every scenario on every backend; sketch: the scalar vs "
        "vectorized vs one-table Count-Min ladder (default: core)",
    )
    bench.add_argument(
        "--scale",
        choices=("smoke", "tiny", "default", "large"),
        default="default",
        help="workload scale preset; smoke is the smallest rung, used "
        "by the CI accuracy gate (default: default)",
    )
    bench.add_argument(
        "--output", type=pathlib.Path, default=None,
        help="result file (default: ./BENCH_<suite>.json)",
    )

    report = commands.add_parser(
        "report",
        help="render the metrics snapshots embedded in a bench report",
    )
    report.add_argument(
        "path", nargs="?", type=pathlib.Path,
        default=pathlib.Path("BENCH_core.json"),
        help="bench report to read (default: ./BENCH_core.json)",
    )
    report.add_argument(
        "--entry", default=None,
        help="only entries whose name contains this substring",
    )
    report.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable JSON form instead of the table",
    )
    report.add_argument(
        "--diff", nargs=2, metavar=("BEFORE", "AFTER"),
        type=pathlib.Path, default=None,
        help="compare two run reports instead of rendering one: "
        "per-entry deltas for bench scalars and metrics snapshots, "
        "exit 1 when a gated metric regresses past its threshold",
    )
    report.add_argument(
        "--tolerance", type=float, default=None,
        help="override every per-metric regression threshold with one "
        "relative slack (e.g. 5.0 allows 6x; used by CI smoke)",
    )

    schedcheck = commands.add_parser(
        "schedcheck",
        help="explore perturbed schedules per scheme, auditing every run "
        "(exit 1 on any violation)",
    )
    schedcheck.add_argument(
        "--schemes", default="cots,shared,hybrid",
        help="comma-separated scheme list (cots, cots-pre, shared, "
        "hybrid, independent, sequential)",
    )
    schedcheck.add_argument("--schedules", type=int, default=50,
                            help="perturbed schedules per scheme")
    schedcheck.add_argument("--seed", default="0",
                            help="campaign master seed")
    schedcheck.add_argument("--length", type=int, default=1_500)
    schedcheck.add_argument("--alphabet", type=int, default=300)
    schedcheck.add_argument("--alpha", type=float, default=1.3)
    schedcheck.add_argument("--threads", type=int, default=4)
    schedcheck.add_argument("--capacity", type=int, default=64)
    schedcheck.add_argument("--cores", type=int, default=2)
    schedcheck.add_argument("--check-every", type=int, default=512,
                            help="mid-run audit stride in engine events "
                            "(0 disables mid-run audits)")
    schedcheck.add_argument("--jitter", type=float, default=0.3,
                            help="cost-table jitter spread in [0, 1)")
    schedcheck.add_argument("--mutate", default=None,
                            help="inject a named protocol bug "
                            "(harness self-test; see repro.schedcheck."
                            "mutations)")
    schedcheck.add_argument("--no-shrink", action="store_true",
                            help="skip shrinking failing schedules")
    schedcheck.add_argument(
        "--trace-dir", type=pathlib.Path, default=None,
        help="also write each minimal reproducer's schedule as Chrome "
        "trace-event JSON (<scheme>-reproducer.json) into this directory",
    )
    schedcheck.add_argument("--verbose", action="store_true",
                            help="print one line per schedule")

    scenarios = commands.add_parser(
        "scenarios",
        help="run stream scenarios/adversaries against a backend and "
        "audit accuracy (exit 1 on guarantee violations); --fuzz "
        "composes scenarios randomly and shrinks failures",
    )
    scenarios.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list registered scenarios and exit",
    )
    scenarios.add_argument(
        "--scenario", default="all",
        help="scenario name, or 'all' for the full registry "
        "(default: all)",
    )
    scenarios.add_argument(
        "--backend",
        choices=("sequential", "cots", "mp-shm", "mp-pickle",
                 "mp-one-table", "sketch-cm-vec"),
        default="sequential",
        help="counting backend under test; sketch backends are scored "
        "on Count-Min overestimate bounds (default: sequential)",
    )
    scenarios.add_argument("--length", type=int, default=20_000)
    scenarios.add_argument("--alphabet", type=int, default=2_000)
    scenarios.add_argument("--capacity", type=int, default=128,
                           help="Space Saving counter budget (the "
                           "adversaries target exactly this)")
    scenarios.add_argument("--seed", type=int, default=7)
    scenarios.add_argument("--k", type=int, default=10,
                           help="top-k depth for recall/precision")
    scenarios.add_argument("--threads", type=int, default=4,
                           help="simulated threads (cots backend)")
    scenarios.add_argument("--workers", type=int, default=2,
                           help="worker processes (mp backends)")
    scenarios.add_argument(
        "--fuzz", type=int, default=0, metavar="N",
        help="fuzz mode: run N random scenario compositions through "
        "the lane differential, shrinking any failure to a minimal "
        "reproducer (ignores --scenario/--backend)",
    )
    scenarios.add_argument(
        "--max-shrink-tests", type=int, default=300,
        help="ddmin replay budget per fuzz failure (default: 300)",
    )
    scenarios.add_argument("--verbose", action="store_true",
                           help="fuzz mode: print one line per "
                           "composition")

    from repro.backend.registry import BACKEND_NAMES

    serve = commands.add_parser(
        "serve",
        help="boot the async TCP serve tier (NDJSON protocol, "
        "micro-batched ingest, snapshot queries; see docs/serve.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7070,
                       help="TCP port; 0 picks an ephemeral port "
                       "(default: 7070)")
    serve.add_argument("--backend", choices=BACKEND_NAMES,
                       default="sequential",
                       help="counting engine behind the server "
                       "(default: sequential)")
    serve.add_argument("--capacity", type=int, default=256,
                       help="counter/candidate budget: the error bound "
                       "is N/capacity (default: 256)")
    serve.add_argument("--threads", type=int, default=4,
                       help="simulated threads (cots-sim / "
                       "native-threads backends)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes (mp backends)")
    serve.add_argument("--epsilon", type=float, default=0.001,
                       help="sketch error bound (sketch backends)")
    serve.add_argument("--seed", type=int, default=0,
                       help="sketch hash seed (sketch backends)")
    serve.add_argument("--batch-events", type=int, default=2048,
                       help="micro-batch size in events (default: 2048)")
    serve.add_argument("--batch-interval", type=float, default=0.05,
                       help="partial-batch flush period in seconds "
                       "(default: 0.05)")
    serve.add_argument("--max-pending-batches", type=int, default=16,
                       help="backpressure budget: pending micro-batches "
                       "before ingest frames are refused (default: 16)")
    serve.add_argument("--snapshot-interval", type=float, default=0.2,
                       help="query-view refresh period in seconds; the "
                       "staleness bound is batch-interval + this "
                       "(default: 0.2)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="also expose Prometheus text metrics on this "
                       "HTTP port (0 picks an ephemeral port; default: "
                       "off)")
    serve.add_argument("--watchdog-interval", type=float, default=0.5,
                       help="telemetry sample + SLO evaluation period in "
                       "seconds (default: 0.5)")
    serve.add_argument("--probe-keys", type=int, default=128,
                       help="shadow-truth accuracy probe size in distinct "
                       "keys; 0 disables the drift alert (default: 128)")
    serve.add_argument("--fault", choices=("flush-failure",), default=None,
                       help="inject a serve fault for alert drills "
                       "(testing only)")

    serve_bench = commands.add_parser(
        "serve-bench",
        help="load-generate N thousand concurrent connections against "
        "an in-process server and write BENCH_serve.json",
    )
    serve_bench.add_argument(
        "--scale", choices=("smoke", "default"), default="default",
        help="load preset; smoke (1000 connections) is the CI gate "
        "(default: default)",
    )
    serve_bench.add_argument(
        "--backend", choices=BACKEND_NAMES, default="sequential",
        help="counting engine under load (default: sequential)",
    )
    serve_bench.add_argument(
        "--output", type=pathlib.Path, default=None,
        help="result file (default: ./BENCH_serve.json)",
    )

    top = commands.add_parser(
        "top",
        help="live terminal dashboard for a running server: attaches to "
        "its metrics stream (rates, latency quantiles, worker beacons, "
        "alert state)",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7070,
                     help="the server's NDJSON port (default: 7070)")
    top.add_argument("--period", type=float, default=1.0,
                     help="refresh period in seconds (default: 1.0)")
    top.add_argument("--frames", type=int, default=0,
                     help="render N frames then exit (0 = until ^C)")
    top.add_argument("--once", action="store_true",
                     help="fetch one metrics answer, render it, exit")
    top.add_argument("--json", action="store_true", dest="as_json",
                     help="print raw JSON payloads instead of rendering")
    top.add_argument("--raw", action="store_true",
                     help="include the full cumulative metrics snapshot "
                     "in each payload (with --json)")

    trace = commands.add_parser(
        "trace",
        help="record a traced run (simulated or real) and print the "
        "timeline; --out exports Chrome trace-event JSON",
    )
    trace.add_argument(
        "--mode",
        choices=("sim", "cots", "mp"),
        default="sim",
        help="sim: shared-scheme engine trace (core occupancy); cots: "
        "span-traced CoTS run (delegation/drain/scheduler); mp: "
        "span-traced multiprocess run on real worker processes "
        "(default: sim)",
    )
    trace.add_argument("--threads", type=int, default=6)
    trace.add_argument("--length", type=int, default=1_500)
    trace.add_argument("--alpha", type=float, default=2.0)
    trace.add_argument("--capacity", type=int, default=64)
    trace.add_argument("--cores", type=int, default=4)
    trace.add_argument("--width", type=int, default=72)
    trace.add_argument("--workers", type=int, default=2,
                       help="worker processes (mp mode)")
    trace.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the Chrome trace-event JSON (open in Perfetto or "
        "chrome://tracing) to this path",
    )
    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ALL_EXPERIMENTS,
        ExperimentScale,
        ascii_chart,
        format_table,
    )

    presets = {
        "tiny": ExperimentScale.tiny,
        "default": ExperimentScale.default,
        "large": ExperimentScale.large,
    }
    scale = presets[args.scale]()
    if args.which == "all":
        chosen = list(ALL_EXPERIMENTS)
    elif args.which in ALL_EXPERIMENTS:
        chosen = [args.which]
    else:
        print(
            f"unknown experiment {args.which!r}; pick one of "
            f"{', '.join(ALL_EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    for name in chosen:
        result = ALL_EXPERIMENTS[name](scale)
        text = format_table(result)
        print(text)
        print()
        if args.chart is not None:
            print(ascii_chart(result, args.chart[0], args.chart[1]))
            print()
        if args.output is not None:
            args.output.mkdir(parents=True, exist_ok=True)
            (args.output / f"{name}.txt").write_text(text + "\n")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.workloads import zipf_stream

    alphabet = args.alphabet if args.alphabet > 0 else args.length
    for element in zipf_stream(args.length, alphabet, args.alpha, args.seed):
        print(element)
    return 0


def _read_stream(source: str) -> List[str]:
    if source == "-":
        lines = sys.stdin.read().splitlines()
    else:
        lines = pathlib.Path(source).read_text().splitlines()
    return [line.strip() for line in lines if line.strip()]


def _cmd_count(args: argparse.Namespace) -> int:
    from repro.core import (
        CountMinSketch,
        ExactCounter,
        LossyCounting,
        MisraGries,
        SpaceSaving,
        StickySampling,
    )

    algorithms = {
        "space-saving": lambda: SpaceSaving(capacity=args.capacity),
        "lossy-counting": lambda: LossyCounting(epsilon=args.epsilon),
        "misra-gries": lambda: MisraGries(k=args.capacity),
        "sticky-sampling": lambda: StickySampling(
            support=max(args.epsilon * 2, 0.001),
            epsilon=args.epsilon,
            seed=0,
        ),
        "count-min": lambda: CountMinSketch(
            epsilon=args.epsilon, delta=0.01,
            track_candidates=args.capacity, seed=0,
        ),
        "exact": ExactCounter,
    }
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    stream = _read_stream(args.stream)
    if args.workers > 1:
        if args.algorithm != "space-saving":
            print(
                "--workers > 1 requires --algorithm space-saving "
                "(the multiprocess backend shards Space Saving)",
                file=sys.stderr,
            )
            return 2
        from repro.mp import MPConfig, run_mp

        counter = run_mp(
            stream,
            MPConfig(
                workers=args.workers,
                capacity=args.capacity,
                transport=args.transport,
            ),
        ).counter
    else:
        counter = algorithms[args.algorithm]()
        counter.process_many(stream)
    print(f"# {args.algorithm}: {counter.processed} elements processed")
    print(f"# top-{args.top}:")
    for entry in counter.entries()[: args.top]:
        print(f"{entry.element}\t{entry.count}\t(error<={entry.error})")
    if args.phi > 0:
        frequent = counter.frequent(args.phi)
        print(f"# elements above {args.phi:.3%} support:")
        for entry in frequent:
            print(f"{entry.element}\t{entry.count}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.cots import CoTSRunConfig, LossyCoTSConfig, run_cots, run_lossy_cots
    from repro.parallel import (
        SchemeConfig,
        run_hybrid,
        run_independent,
        run_sequential,
        run_shared,
    )
    from repro.simcore import MachineSpec
    from repro.workloads import zipf_stream

    stream = zipf_stream(args.length, args.length, args.alpha, args.seed)
    machine = MachineSpec(cores=args.cores)
    config = SchemeConfig(
        threads=args.threads, capacity=args.capacity, machine=machine
    )
    if args.scheme == "sequential":
        result = run_sequential(stream, config)
    elif args.scheme == "shared":
        result = run_shared(stream, config, lock_kind="mutex")
    elif args.scheme == "shared-spin":
        result = run_shared(stream, config, lock_kind="spin")
    elif args.scheme == "independent":
        result = run_independent(
            stream, config,
            merge_every=args.merge_every or args.length // 100,
        )
    elif args.scheme == "hybrid":
        result = run_hybrid(stream, config)
    elif args.scheme == "cots-lossy":
        result = run_lossy_cots(
            stream,
            LossyCoTSConfig(
                threads=args.threads, capacity=args.capacity, machine=machine
            ),
        )
    else:
        result = run_cots(
            stream,
            CoTSRunConfig(
                threads=args.threads, capacity=args.capacity, machine=machine
            ),
        )
    print(f"scheme:      {result.scheme}")
    print(f"stream:      {args.length} elements, zipf alpha={args.alpha}")
    print(f"threads:     {result.threads} on {args.cores} simulated cores")
    print(f"time:        {result.seconds * 1e3:.4f} ms (simulated)")
    print(f"throughput:  {result.throughput / 1e6:.2f} M elements/s")
    print("breakdown:")
    for tag, fraction in sorted(
        result.breakdown().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {tag:10s} {fraction:7.2%}")
    print(f"top-{args.top}:")
    for entry in result.counter.top_k(args.top):
        print(f"  {entry.element}\t{entry.count}\t(error<={entry.error})")
    stats = result.extras.get("stats")
    if stats:
        interesting = {
            key: stats[key]
            for key in ("delegations", "bulk_increments", "bulk_total",
                        "overwrites", "gc_buckets")
            if stats.get(key)
        }
        if interesting:
            print(f"cots stats:  {interesting}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import default_output, format_report, run_suite, write_report

    output = args.output if args.output is not None else default_output(args.suite)
    report = run_suite(scale=args.scale, suite=args.suite)
    write_report(report, output)
    print(format_report(report))
    print(f"wrote {output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ConfigurationError
    from repro.obs import (
        diff_reports,
        load_report,
        render_report,
        report_json,
        select_entries,
    )

    if args.diff is not None:
        try:
            before = load_report(str(args.diff[0]))
            after = load_report(str(args.diff[1]))
            result = diff_reports(
                before, after, tolerance=args.tolerance, entry=args.entry
            )
        except FileNotFoundError as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 2
        except ConfigurationError as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 2
        if args.as_json:
            print(json.dumps(result.to_json(), indent=2, sort_keys=True))
        else:
            print(result.render())
        return 0 if result.ok else 1

    try:
        report = load_report(str(args.path))
        report = select_entries(report, args.entry)
    except FileNotFoundError:
        print(
            f"no report at {args.path} (run `python -m repro bench` first,"
            " or pass a path)",
            file=sys.stderr,
        )
        return 2
    except ConfigurationError as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(report_json(report, source=str(args.path)),
                         indent=2, sort_keys=True))
    else:
        print(render_report(report, source=str(args.path)))
    return 0


def _cmd_schedcheck(args: argparse.Namespace) -> int:
    """Schedule exploration campaign; exit 1 if any audit fails."""
    from repro.schedcheck import (
        ExploreConfig,
        explore,
        get_mutation,
        get_scheme,
        shrink_outcome,
    )

    schemes = [name.strip() for name in args.schemes.split(",") if name.strip()]
    for name in schemes:
        get_scheme(name)  # fail fast on typos, before any simulation
    config = ExploreConfig(
        schedules=args.schedules,
        seed=args.seed,
        length=args.length,
        alphabet=args.alphabet,
        alpha=args.alpha,
        threads=args.threads,
        capacity=args.capacity,
        cores=args.cores,
        check_every=args.check_every,
        jitter=args.jitter,
    )
    patch = get_mutation(args.mutate) if args.mutate else None
    if patch is not None:
        print(f"# mutation active: {args.mutate} (failures are EXPECTED)")
    progress = print if args.verbose else None
    reports = explore(schemes, config, patch=patch, progress=progress)
    stream = config.make_stream()
    violations = 0
    for name, report in reports.items():
        print(report.summary_line())
        violations += len(report.failures)
        if report.failures and not args.no_shrink:
            failing = report.failures[0]
            result = shrink_outcome(
                get_scheme(name), stream, config, failing, patch=patch
            )
            print(result.render())
            if args.trace_dir is not None:
                args.trace_dir.mkdir(parents=True, exist_ok=True)
                trace_path = args.trace_dir / f"{name}-reproducer.json"
                spans = result.write_chrome_trace(str(trace_path))
                print(f"reproducer trace: {trace_path} ({spans} spans)")
    if violations:
        print(f"schedcheck: {violations} violating schedule(s)")
        return 0 if patch is not None else 1
    print("schedcheck: all schedules passed every audit")
    if patch is not None:
        print("schedcheck: WARNING: the injected mutation went undetected")
        return 1
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """Scenario accuracy matrix / fuzzer; exit 1 on violations."""
    from repro.errors import ConfigurationError, StreamError
    from repro.obs import MetricsRegistry
    from repro.scenarios import (
        SCENARIOS,
        ScenarioParams,
        fuzz,
        get_scenario,
        run_scenario,
    )

    if args.list_scenarios:
        for scenario in SCENARIOS.values():
            print(f"{scenario.name:18s} {scenario.kind:12s} "
                  f"{scenario.description}")
        return 0

    try:
        params = ScenarioParams(
            length=args.length,
            alphabet=args.alphabet,
            capacity=args.capacity,
            seed=args.seed,
        )
    except (ConfigurationError, StreamError) as exc:
        print(f"scenarios: {exc}", file=sys.stderr)
        return 2

    if args.fuzz > 0:
        progress = print if args.verbose else None
        report = fuzz(
            args.fuzz,
            seed=args.seed,
            params=params,
            k=args.k,
            max_shrink_tests=args.max_shrink_tests,
            progress=progress,
        )
        if not args.verbose:
            for failure in report.failures:
                print(failure.render())
        print(report.summary_line())
        return 0 if report.ok else 1

    if args.scenario == "all":
        names = list(SCENARIOS)
    else:
        try:
            names = [get_scenario(args.scenario).name]
        except ConfigurationError as exc:
            print(f"scenarios: {exc}", file=sys.stderr)
            return 2
    print(f"# backend={args.backend} length={params.length} "
          f"alphabet={params.alphabet} capacity={params.capacity} "
          f"seed={params.seed} k={args.k}")
    violations = 0
    for name in names:
        run = run_scenario(
            name,
            args.backend,
            params,
            k=args.k,
            threads=args.threads,
            workers=args.workers,
            metrics=MetricsRegistry(),
        )
        accuracy = run.accuracy
        violations += accuracy.guarantee_violations
        print(
            f"{name:18s} {run.scenario_kind:12s} "
            f"recall@{args.k}={accuracy.recall_at_k:.2f} "
            f"precision@{args.k}={accuracy.precision_at_k:.2f} "
            f"max_over={accuracy.max_overestimate} "
            f"bound={accuracy.error_bound:.1f} "
            f"violations={accuracy.guarantee_violations} "
            f"[{run.wall_seconds * 1e3:.0f} ms]"
        )
    if violations:
        print(f"scenarios: {violations} guarantee violation(s)")
        return 1
    print("scenarios: every summary honoured its guarantees")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the serve tier until interrupted."""
    import asyncio

    from repro.errors import ConfigurationError
    from repro.obs import MetricsRegistry
    from repro.serve import ServeConfig, run_server

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            backend=args.backend,
            capacity=args.capacity,
            threads=args.threads,
            workers=args.workers,
            epsilon=args.epsilon,
            seed=args.seed,
            batch_events=args.batch_events,
            batch_interval=args.batch_interval,
            max_pending_batches=args.max_pending_batches,
            snapshot_interval=args.snapshot_interval,
            metrics_port=args.metrics_port,
            watchdog_interval=args.watchdog_interval,
            probe_keys=args.probe_keys,
            fault=args.fault,
        )
    except ConfigurationError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    try:
        asyncio.run(run_server(config, metrics=MetricsRegistry()))
    except KeyboardInterrupt:
        print("serve: interrupted, shut down cleanly")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Run the serve load bench; exit 1 on any violation."""
    import json

    from repro.serve import format_serve_report, run_serve_bench

    output = args.output if args.output is not None else pathlib.Path(
        "BENCH_serve.json"
    )
    report = run_serve_bench(scale=args.scale, backend=args.backend)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(format_serve_report(report))
    print(f"wrote {output}")
    entry = report["results"][0]
    if entry["guarantee_violations"] or entry["protocol_errors"]:
        print(
            f"serve-bench: {entry['guarantee_violations']} guarantee "
            f"violation(s), {entry['protocol_errors']} protocol error(s)",
            file=sys.stderr,
        )
        return 1
    if not entry["latency_crosscheck_ok"]:
        print(
            "serve-bench: sampled and histogram-derived latency "
            "quantiles diverge by more than one bucket",
            file=sys.stderr,
        )
        return 1
    if not (entry["metrics_op_ok"] and entry["prometheus_scrape_ok"]):
        print(
            "serve-bench: the mid-load live-telemetry probe failed "
            f"(metrics_op_ok={entry['metrics_op_ok']}, "
            f"prometheus_scrape_ok={entry['prometheus_scrape_ok']})",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Attach the live dashboard to a running server."""
    import asyncio

    from repro.serve import run_top

    try:
        return asyncio.run(run_top(
            host=args.host,
            port=args.port,
            period=args.period,
            frames=args.frames,
            once=args.once,
            as_json=args.as_json,
            raw=args.raw,
        ))
    except KeyboardInterrupt:
        return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Record a traced run and print/export its timeline.

    ``--mode sim`` keeps the original behaviour (engine-effect trace of
    the shared scheme, core-occupancy timeline); ``--mode cots`` and
    ``--mode mp`` record *span* traces of a simulated CoTS run and a
    real multiprocess run.  With ``--out`` the timeline is additionally
    exported as Chrome trace-event JSON — all three modes go through the
    same exporter (the sim trace is bridged into the span model).
    """
    from repro.obs.export import ascii_timeline, write_chrome_trace
    from repro.workloads import zipf_stream

    stream = zipf_stream(args.length, args.length, args.alpha, seed=7)

    if args.mode == "sim":
        from repro.obs.tracing import spans_from_sim_trace
        from repro.parallel.shared import _SharedState, _worker
        from repro.simcore import CostModel, Engine, MachineSpec, TraceRecorder
        from repro.workloads import block_partition

        tracer = TraceRecorder()
        costs = CostModel()
        engine = Engine(
            machine=MachineSpec(cores=args.cores), costs=costs, tracer=tracer
        )
        state = _SharedState(args.capacity, "mutex")
        for index, part in enumerate(block_partition(stream, args.threads)):
            engine.spawn(
                _worker(part, state, costs), name=f"{chr(97 + index % 26)}{index}"
            )
        result = engine.run()
        print(tracer.timeline(width=args.width))
        print()
        print(tracer.summary())
        print(f"simulated time: {result.seconds * 1e3:.3f} ms for "
              f"{len(stream)} elements on the shared (lock-based) design")
        if args.out is not None:
            spans, dropped = spans_from_sim_trace(tracer)
            write_chrome_trace(
                str(args.out), spans, scale=1.0, truncated=dropped,
                meta={"mode": "sim", "scheme": "shared",
                      "threads": args.threads, "cores": args.cores},
            )
            print(f"wrote {args.out} ({len(spans)} spans, "
                  f"{dropped} dropped)")
        return 0

    if args.mode == "cots":
        from repro.cots import CoTSRunConfig, run_cots
        from repro.obs.tracing import Tracer
        from repro.simcore import MachineSpec

        tracer = Tracer()
        result = run_cots(stream, CoTSRunConfig(
            threads=args.threads, capacity=args.capacity,
            machine=MachineSpec(cores=args.cores), tracer=tracer,
        ))
        records = tracer.records()
        print(ascii_timeline(records, width=args.width))
        print(f"simulated time: {result.seconds * 1e3:.3f} ms, "
              f"{len(records)} trace records"
              + (f", {tracer.dropped} dropped" if tracer.dropped else ""))
        if args.out is not None:
            # simulated clocks record cycles: one exported "us" per cycle
            write_chrome_trace(
                str(args.out), records, scale=1.0, truncated=tracer.dropped,
                meta={"mode": "cots", "threads": args.threads,
                      "cores": args.cores, "clock": "cycles"},
            )
            print(f"wrote {args.out} ({len(records)} records)")
        return 0

    # mp: a real multiprocess run on host wall clock
    from repro.mp import MPConfig, run_mp
    from repro.obs.tracing import Tracer

    tracer = Tracer()
    result = run_mp(
        stream,
        MPConfig(workers=args.workers, capacity=args.capacity),
        tracer=tracer,
    )
    records = tracer.records()
    print(ascii_timeline(records, width=args.width))
    print(f"wall time: {result.wall_seconds * 1e3:.3f} ms on "
          f"{args.workers} worker processes, {len(records)} trace records"
          + (f", {tracer.dropped} dropped" if tracer.dropped else ""))
    if args.out is not None:
        write_chrome_trace(
            str(args.out), records, scale=1e6, truncated=tracer.dropped,
            meta={"mode": "mp", "workers": args.workers, "clock": "seconds"},
        )
        print(f"wrote {args.out} ({len(records)} records)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "generate": _cmd_generate,
        "count": _cmd_count,
        "simulate": _cmd_simulate,
        "bench": _cmd_bench,
        "report": _cmd_report,
        "schedcheck": _cmd_schedcheck,
        "scenarios": _cmd_scenarios,
        "serve": _cmd_serve,
        "serve-bench": _cmd_serve_bench,
        "top": _cmd_top,
        "trace": _cmd_trace,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. piped into `head`); not an
        # error.  Point stdout at devnull so the interpreter's exit
        # flush doesn't raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
