"""Reproducible performance harness: ``python -m repro bench``.

Runs a pinned suite of benchmarks and writes the results to a JSON file
(``BENCH_core.json`` by default) so performance can be tracked *across
PRs* — each run records enough environment detail (python version,
platform, workload parameters) to make trajectory comparisons honest.

Two families of measurements:

* **Wall-clock hot path** — the raw Python Space Saving loop, per-element
  (``process`` in a loop, the seed implementation's only lane) versus the
  batched fast lane (``process_many``).  Both consume the identical
  pinned zipf stream; the harness asserts the final summaries are
  identical (same (element, count, error) triples and processed count)
  and reports the speedup.
* **Simulated schemes** — every parallelization design of the paper run
  on the simulated CMP: sequential, shared (mutex and spin), independent
  (serial merge), hybrid, CoTS, and CoTS with the pre-aggregated batch
  claim.  For each we record the simulated makespan/throughput *and* the
  host wall-clock cost of simulating it.

The suite is deterministic apart from the timing numbers: streams are
seeded, thread counts pinned, and every recorded counter state is a pure
function of the inputs.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
from typing import Any, Dict, List, Sequence

from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError

#: bump when the JSON layout changes incompatibly
SCHEMA_VERSION = 1

#: pinned workload parameters per scale preset
SCALES: Dict[str, Dict[str, int | float]] = {
    "tiny": {
        "hot_length": 50_000,
        "sim_length": 3_000,
        "alphabet": 2_000,
        "capacity": 64,
        "threads": 8,
        "alpha": 2.0,
        "seed": 7,
        "repeats": 3,
    },
    "default": {
        "hot_length": 500_000,
        "sim_length": 20_000,
        "alphabet": 20_000,
        "capacity": 256,
        "threads": 16,
        "alpha": 2.0,
        "seed": 7,
        "repeats": 3,
    },
    "large": {
        "hot_length": 2_000_000,
        "sim_length": 100_000,
        "alphabet": 100_000,
        "capacity": 1024,
        "threads": 32,
        "alpha": 2.0,
        "seed": 7,
        "repeats": 3,
    },
}


def _canonical_state(counter: SpaceSaving) -> List[tuple]:
    """Order-independent fingerprint of a summary's queryable state."""
    return sorted(
        (str(e.element), e.count, e.error) for e in counter.entries()
    )


def _best_of(repeats: int, fn) -> float:
    """Minimum wall-clock seconds over ``repeats`` runs of ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_hot_path(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Wall-clock: per-element loop versus the batched fast lane."""
    from repro.workloads.zipf import zipf_stream

    stream = zipf_stream(
        int(params["hot_length"]),
        int(params["alphabet"]),
        float(params["alpha"]),
        seed=int(params["seed"]),
    )
    capacity = int(params["capacity"])
    repeats = int(params["repeats"])

    per_element_holder: Dict[str, SpaceSaving] = {}

    def run_per_element() -> None:
        counter = SpaceSaving(capacity=capacity)
        process = counter.process
        for element in stream:
            process(element)
        per_element_holder["counter"] = counter

    batched_holder: Dict[str, SpaceSaving] = {}

    def run_batched() -> None:
        counter = SpaceSaving(capacity=capacity)
        counter.process_many(stream)
        batched_holder["counter"] = counter

    per_element_secs = _best_of(repeats, run_per_element)
    batched_secs = _best_of(repeats, run_batched)
    base = per_element_holder["counter"]
    fast = batched_holder["counter"]
    identical = (
        _canonical_state(base) == _canonical_state(fast)
        and base.processed == fast.processed
    )
    length = len(stream)
    return [
        {
            "name": "sequential-hot-path-per-element",
            "kind": "wallclock",
            "elements": length,
            "wall_seconds": per_element_secs,
            "throughput_eps": length / per_element_secs,
        },
        {
            "name": "sequential-hot-path-batched",
            "kind": "wallclock",
            "elements": length,
            "wall_seconds": batched_secs,
            "throughput_eps": length / batched_secs,
            "speedup_vs_per_element": per_element_secs / batched_secs,
            "identical_results": identical,
        },
    ]


def _bench_simulated(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Every parallel design on the simulated CMP, plus wall cost."""
    from repro.cots import CoTSRunConfig, run_cots
    from repro.parallel import (
        SchemeConfig,
        run_hybrid,
        run_independent,
        run_sequential,
        run_shared,
    )
    from repro.workloads.zipf import zipf_stream

    length = int(params["sim_length"])
    stream = zipf_stream(
        length,
        int(params["alphabet"]),
        float(params["alpha"]),
        seed=int(params["seed"]),
    )
    threads = int(params["threads"])
    capacity = int(params["capacity"])

    def scheme_config() -> SchemeConfig:
        return SchemeConfig(threads=threads, capacity=capacity)

    def cots_config(preaggregate: bool) -> CoTSRunConfig:
        return CoTSRunConfig(
            threads=threads, capacity=capacity, preaggregate=preaggregate
        )

    runs = [
        ("sequential", lambda: run_sequential(stream, scheme_config())),
        (
            "sequential-batched",
            lambda: run_sequential(stream, scheme_config(), batch=64),
        ),
        (
            "shared-mutex",
            lambda: run_shared(stream, scheme_config(), lock_kind="mutex"),
        ),
        (
            "shared-spin",
            lambda: run_shared(stream, scheme_config(), lock_kind="spin"),
        ),
        (
            "independent-serial",
            lambda: run_independent(
                stream,
                scheme_config(),
                merge_every=max(1, length // 10),
                strategy="serial",
            ),
        ),
        ("hybrid", lambda: run_hybrid(stream, scheme_config())),
        ("cots", lambda: run_cots(stream, cots_config(False))),
        ("cots-preagg", lambda: run_cots(stream, cots_config(True))),
    ]
    entries = []
    for name, runner in runs:
        started = time.perf_counter()
        result = runner()
        wall = time.perf_counter() - started
        entries.append(
            {
                "name": name,
                "kind": "simulated",
                "elements": length,
                "threads": result.threads,
                "sim_cycles": result.cycles,
                "sim_seconds": result.seconds,
                "sim_throughput_eps": result.throughput,
                "wall_seconds": wall,
                "wall_throughput_eps": length / wall,
            }
        )
    return entries


def run_suite(scale: str = "tiny") -> Dict[str, Any]:
    """Run the pinned benchmark suite and return the report dict."""
    if scale not in SCALES:
        raise ConfigurationError(
            f"scale must be one of {sorted(SCALES)}, got {scale!r}"
        )
    params = dict(SCALES[scale])
    results: List[Dict[str, Any]] = []
    results.extend(_bench_hot_path(params))
    results.extend(_bench_simulated(params))
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "core",
        "scale": scale,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "params": params,
        "results": results,
    }


def write_report(report: Dict[str, Any], output: pathlib.Path) -> None:
    output.write_text(json.dumps(report, indent=2) + "\n")


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable one-line-per-result summary of a report."""
    lines = [
        f"bench suite={report['suite']} scale={report['scale']} "
        f"python={report['python']}"
    ]
    for entry in report["results"]:
        if entry["kind"] == "wallclock":
            line = (
                f"  {entry['name']:32s} {entry['wall_seconds'] * 1e3:10.1f} ms"
                f"  {entry['throughput_eps'] / 1e6:8.2f} M el/s (wall)"
            )
            if "speedup_vs_per_element" in entry:
                line += (
                    f"  x{entry['speedup_vs_per_element']:.2f} vs per-element"
                    f"  identical={entry['identical_results']}"
                )
        else:
            line = (
                f"  {entry['name']:32s} {entry['sim_cycles']:12d} cycles"
                f"  {entry['sim_throughput_eps'] / 1e6:8.2f} M el/s (sim)"
                f"  [{entry['wall_seconds']:.1f}s host]"
            )
        lines.append(line)
    return "\n".join(lines)
