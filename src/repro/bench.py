"""Reproducible performance harness: ``python -m repro bench``.

Runs a pinned suite of benchmarks and writes the results to a JSON file
so performance can be tracked *across PRs* — each run records enough
environment detail (python version, platform, workload parameters, peak
RSS) to make trajectory comparisons honest.

Three suites (``--suite``):

* ``core`` (→ ``BENCH_core.json``) — the original families:

  * **Wall-clock hot path** — the raw Python Space Saving loop,
    per-element (``process`` in a loop, the seed implementation's only
    lane) versus the batched fast lane (``process_many``).  Both consume
    the identical pinned zipf stream; the harness asserts the final
    summaries are identical (same (element, count, error) triples and
    processed count) and reports the speedup.
  * **Simulated schemes** — every parallelization design of the paper
    run on the simulated CMP: sequential, shared (mutex and spin),
    independent (serial merge), hybrid, CoTS, and CoTS with the
    pre-aggregated batch claim.  For each we record the simulated
    makespan/throughput *and* the host wall-clock cost of simulating it.

* ``mp`` (→ ``BENCH_mp.json``) — the *real-parallelism* scaling curve:
  the multiprocess sharded backend (:mod:`repro.mp`) at a pinned ladder
  of worker counts versus the sequential batched baseline, recording
  wall seconds, throughput, speedup, startup cost, and a
  result-equivalence check (merged top-k within the documented Space
  Saving merge error bounds of the sequential answer).  Unlike the
  simulated numbers these genuinely depend on the host's core count,
  which the report records as ``host_cores``.

* ``scenarios`` (→ ``BENCH_scenarios.json``) — the *accuracy* matrix:
  every scenario in :mod:`repro.scenarios` (drift, flash crowds, hot-set
  churn, and the two adversaries) counted by every backend (sequential
  batched, simulated CoTS, mp on both transports), scored against exact
  ground truth.  Gated on zero guarantee violations, never on timing;
  see docs/scenarios.md.

Every result entry also records ``peak_rss_kb`` — the process-tree
high-water RSS (``resource.getrusage``, self + children) at the moment
the measurement finished — so memory scaling is tracked alongside
throughput.

The suites are deterministic apart from the timing numbers: streams are
seeded, thread/worker counts pinned, and every recorded counter state is
a pure function of the inputs.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import resource
import sys
import time
from typing import Any, Dict, List, Sequence

from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, merge_snapshots

#: bump when the JSON layout changes incompatibly
SCHEMA_VERSION = 1

#: suites runnable by ``run_suite`` and their default report files
SUITES = ("core", "mp", "scenarios", "sketch")

#: pinned workload parameters per scale preset
SCALES: Dict[str, Dict[str, int | float]] = {
    "tiny": {
        "hot_length": 50_000,
        "sim_length": 3_000,
        "alphabet": 2_000,
        "capacity": 64,
        "threads": 8,
        "alpha": 2.0,
        "seed": 7,
        "repeats": 3,
    },
    "default": {
        "hot_length": 500_000,
        "sim_length": 20_000,
        "alphabet": 20_000,
        "capacity": 256,
        "threads": 16,
        "alpha": 2.0,
        "seed": 7,
        "repeats": 3,
    },
    "large": {
        "hot_length": 2_000_000,
        "sim_length": 100_000,
        "alphabet": 100_000,
        "capacity": 1024,
        "threads": 32,
        "alpha": 2.0,
        "seed": 7,
        "repeats": 3,
    },
}


#: pinned workload parameters of the ``mp`` suite per scale preset.
#: ``alpha`` is milder than the core suite's 2.0 because hash sharding
#: sends all occurrences of one element to one worker: at alpha=2.0 the
#: top element alone is most of the stream, so one shard would carry
#: nearly all the work and no backend could scale (a real load-imbalance
#: limit of domain splitting, see docs/benchmarks.md).
#: ``chunk_elements`` doubles as the dedup window of the shm plane's
#: chunk pre-aggregation: bigger chunks repeat the hot elements more,
#: so fewer distinct (code, weight) pairs reach the workers per stream
#: element (it also sizes the ring segments at 16 bytes per slot).
MP_SCALES: Dict[str, Dict[str, Any]] = {
    "tiny": {
        "mp_length": 60_000,
        "alphabet": 4_000,
        "capacity": 128,
        "chunk_elements": 8_192,
        "workers": [1, 2],
        "alpha": 1.1,
        "seed": 7,
        "repeats": 1,
        "timeout": 120.0,
    },
    "default": {
        "mp_length": 2_000_000,
        "alphabet": 50_000,
        "capacity": 256,
        "chunk_elements": 524_288,
        "workers": [1, 2, 4, 8],
        "alpha": 1.1,
        "seed": 7,
        "repeats": 2,
        "timeout": 300.0,
    },
    "large": {
        "mp_length": 8_000_000,
        "alphabet": 200_000,
        "capacity": 1_024,
        "chunk_elements": 524_288,
        "workers": [1, 2, 4, 8, 16],
        "alpha": 1.1,
        "seed": 7,
        "repeats": 2,
        "timeout": 600.0,
    },
}


#: pinned parameters of the ``scenarios`` accuracy matrix per scale.
#: The ``smoke`` preset is the CI gate (every scenario on every backend
#: in well under a minute); the other presets deepen the streams.  The
#: gate is accuracy, never timing: guarantee violations must be zero on
#: every cell, benign or adversarial.
SCENARIO_SCALES: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "length": 4_000,
        "alphabet": 500,
        "capacity": 64,
        "k": 10,
        "threads": 4,
        "workers": 2,
        "chunk_elements": 1_024,
        "seed": 7,
        "timeout": 120.0,
    },
    "tiny": {
        "length": 4_000,
        "alphabet": 500,
        "capacity": 64,
        "k": 10,
        "threads": 4,
        "workers": 2,
        "chunk_elements": 1_024,
        "seed": 7,
        "timeout": 120.0,
    },
    "default": {
        "length": 20_000,
        "alphabet": 2_000,
        "capacity": 128,
        "k": 10,
        "threads": 8,
        "workers": 2,
        "chunk_elements": 4_096,
        "seed": 7,
        "timeout": 300.0,
    },
    "large": {
        "length": 100_000,
        "alphabet": 10_000,
        "capacity": 256,
        "k": 10,
        "threads": 8,
        "workers": 4,
        "chunk_elements": 16_384,
        "seed": 7,
        "timeout": 600.0,
    },
}

#: pinned parameters of the ``sketch`` ladder per scale preset.  The
#: ladder climbs the PR 8 perf story: scalar Count-Min per element →
#: Counter pre-aggregation → the vectorized NumPy kernel (gated ≥ 3×
#: over per-element, tables bit-identical) → the one-table mp mode at
#: 1/2/4/8 workers, where the zero-merge snapshot read is gated at
#: ≤ 10% of the sharded pool's snapshot+merge path and every rung must
#: be bound-compliant (no estimate below truth, widened ε·N respected).
#: ``alpha`` matches the mp suite's 1.1 for the same load-balance
#: reason (hash routing sends all of one element's traffic to one
#: band's home worker).
SKETCH_SCALES: Dict[str, Dict[str, Any]] = {
    "tiny": {
        "length": 60_000,
        "alphabet": 4_000,
        "alpha": 1.1,
        "capacity": 128,
        "chunk_elements": 8_192,
        "workers": [1, 2],
        "epsilon": 0.005,
        "delta": 0.05,
        "sketch_seed": 13,
        "cs_width": 2_048,
        "cs_depth": 5,
        "seed": 7,
        "repeats": 1,
        "timeout": 120.0,
    },
    "default": {
        "length": 1_000_000,
        "alphabet": 50_000,
        "alpha": 1.1,
        "capacity": 256,
        "chunk_elements": 65_536,
        "workers": [1, 2, 4, 8],
        "epsilon": 0.001,
        "delta": 0.01,
        "sketch_seed": 13,
        "cs_width": 8_192,
        "cs_depth": 5,
        "seed": 7,
        "repeats": 2,
        "timeout": 300.0,
    },
    "large": {
        "length": 4_000_000,
        "alphabet": 200_000,
        "alpha": 1.1,
        "capacity": 1_024,
        "chunk_elements": 262_144,
        "workers": [1, 2, 4, 8],
        "epsilon": 0.0005,
        "delta": 0.01,
        "sketch_seed": 13,
        "cs_width": 16_384,
        "cs_depth": 5,
        "seed": 7,
        "repeats": 2,
        "timeout": 600.0,
    },
}

# ``--scale smoke`` is the documented CI spelling for the scenarios
# suite; alias it on the other suites so the flag means "smallest rung"
# everywhere instead of failing on the other suites.
SCALES["smoke"] = SCALES["tiny"]
MP_SCALES["smoke"] = MP_SCALES["tiny"]
SKETCH_SCALES["smoke"] = SKETCH_SCALES["tiny"]


def _peak_rss_kb() -> int:
    """Process-tree peak RSS in KiB (self and reaped children).

    ``ru_maxrss`` is a high-water mark, so successive entries within one
    report are monotonically non-decreasing; compare entries *across*
    runs (same position, different PR), not within one report.
    """
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(max(self_kb, children_kb))


def _canonical_state(counter: SpaceSaving) -> List[tuple]:
    """Order-independent fingerprint of a summary's queryable state."""
    return sorted(
        (str(e.element), e.count, e.error) for e in counter.entries()
    )


def _best_of(repeats: int, fn) -> float:
    """Minimum wall-clock seconds over ``repeats`` runs of ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_hot_path(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Wall-clock: per-element loop versus the batched fast lane."""
    from repro.workloads.zipf import zipf_stream

    stream = zipf_stream(
        int(params["hot_length"]),
        int(params["alphabet"]),
        float(params["alpha"]),
        seed=int(params["seed"]),
    )
    capacity = int(params["capacity"])
    repeats = int(params["repeats"])

    per_element_holder: Dict[str, Any] = {}

    def run_per_element() -> None:
        registry = MetricsRegistry()
        counter = SpaceSaving(capacity=capacity, metrics=registry)
        process = counter.process
        for element in stream:
            process(element)
        per_element_holder["counter"] = counter
        per_element_holder["metrics"] = registry.snapshot()

    batched_holder: Dict[str, Any] = {}

    def run_batched() -> None:
        registry = MetricsRegistry()
        counter = SpaceSaving(capacity=capacity, metrics=registry)
        counter.process_many(stream)
        batched_holder["counter"] = counter
        batched_holder["metrics"] = registry.snapshot()

    per_element_secs = _best_of(repeats, run_per_element)
    per_element_rss = _peak_rss_kb()
    batched_secs = _best_of(repeats, run_batched)
    base = per_element_holder["counter"]
    fast = batched_holder["counter"]
    identical = (
        _canonical_state(base) == _canonical_state(fast)
        and base.processed == fast.processed
    )
    length = len(stream)
    return [
        {
            "name": "sequential-hot-path-per-element",
            "kind": "wallclock",
            "elements": length,
            "wall_seconds": per_element_secs,
            "throughput_eps": length / per_element_secs,
            "peak_rss_kb": per_element_rss,
            "metrics": per_element_holder["metrics"],
        },
        {
            "name": "sequential-hot-path-batched",
            "kind": "wallclock",
            "elements": length,
            "wall_seconds": batched_secs,
            "throughput_eps": length / batched_secs,
            "speedup_vs_per_element": per_element_secs / batched_secs,
            "identical_results": identical,
            "peak_rss_kb": _peak_rss_kb(),
            "metrics": batched_holder["metrics"],
        },
    ]


def _bench_simulated(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Every parallel design on the simulated CMP, plus wall cost.

    Each entry embeds a ``metrics`` block: the simulator's time
    accounting (``sim.*``, via :func:`repro.simcore.stats.
    execution_metrics`) merged with whatever the driver itself recorded
    (``core.spacesaving.*`` for sequential, ``cots.*`` for the CoTS
    lanes) — the same snapshot schema the mp suite's real runs emit.
    """
    from repro.cots import CoTSRunConfig, run_cots
    from repro.parallel import (
        SchemeConfig,
        run_hybrid,
        run_independent,
        run_sequential,
        run_shared,
    )
    from repro.simcore.stats import execution_metrics
    from repro.workloads.zipf import zipf_stream

    length = int(params["sim_length"])
    stream = zipf_stream(
        length,
        int(params["alphabet"]),
        float(params["alpha"]),
        seed=int(params["seed"]),
    )
    threads = int(params["threads"])
    capacity = int(params["capacity"])

    def scheme_config(registry: MetricsRegistry) -> SchemeConfig:
        return SchemeConfig(
            threads=threads, capacity=capacity, metrics=registry
        )

    def cots_config(
        preaggregate: bool, registry: MetricsRegistry
    ) -> CoTSRunConfig:
        return CoTSRunConfig(
            threads=threads,
            capacity=capacity,
            preaggregate=preaggregate,
            metrics=registry,
        )

    runs = [
        ("sequential", lambda reg: run_sequential(stream, scheme_config(reg))),
        (
            "sequential-batched",
            lambda reg: run_sequential(stream, scheme_config(reg), batch=64),
        ),
        (
            "shared-mutex",
            lambda reg: run_shared(
                stream, scheme_config(reg), lock_kind="mutex"
            ),
        ),
        (
            "shared-spin",
            lambda reg: run_shared(
                stream, scheme_config(reg), lock_kind="spin"
            ),
        ),
        (
            "independent-serial",
            lambda reg: run_independent(
                stream,
                scheme_config(reg),
                merge_every=max(1, length // 10),
                strategy="serial",
            ),
        ),
        ("hybrid", lambda reg: run_hybrid(stream, scheme_config(reg))),
        ("cots", lambda reg: run_cots(stream, cots_config(False, reg))),
        ("cots-preagg", lambda reg: run_cots(stream, cots_config(True, reg))),
    ]
    entries = []
    for name, runner in runs:
        registry = MetricsRegistry()
        started = time.perf_counter()
        result = runner(registry)
        wall = time.perf_counter() - started
        entries.append(
            {
                "name": name,
                "kind": "simulated",
                "elements": length,
                "threads": result.threads,
                "sim_cycles": result.cycles,
                "sim_seconds": result.seconds,
                "sim_throughput_eps": result.throughput,
                "wall_seconds": wall,
                "wall_throughput_eps": length / wall,
                "peak_rss_kb": _peak_rss_kb(),
                "metrics": merge_snapshots(
                    execution_metrics(result.execution),
                    result.extras.get("metrics") or {},
                ),
            }
        )
    return entries


def _bench_mp(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Real wall-clock scaling: the multiprocess backend worker ladder.

    Every worker count runs the identical pinned stream; ``equivalent``
    asserts the merged answer is within the documented Space Saving
    merge error bounds of the sequential batched baseline (see
    :func:`repro.mp.driver.summaries_equivalent`).

    The ladder runs *both* data planes at every rung: the shm transport
    keeps the historical ``mp-sharded-<N>w`` names (so trajectory diffs
    line up across the transport switch), the pickle reference rides
    along as ``mp-sharded-<N>w-pickle``.  The gap between the two
    columns is the measured cost of per-item pickling.
    """
    from repro.mp import MPConfig, run_mp, summaries_equivalent
    from repro.workloads.zipf import zipf_stream

    length = int(params["mp_length"])
    stream = zipf_stream(
        length,
        int(params["alphabet"]),
        float(params["alpha"]),
        seed=int(params["seed"]),
    )
    capacity = int(params["capacity"])
    repeats = int(params["repeats"])

    baseline_holder: Dict[str, Any] = {}

    def run_baseline() -> None:
        registry = MetricsRegistry()
        counter = SpaceSaving(capacity=capacity, metrics=registry)
        counter.process_many(stream)
        baseline_holder["counter"] = counter
        baseline_holder["metrics"] = registry.snapshot()

    baseline_secs = _best_of(repeats, run_baseline)
    baseline = baseline_holder["counter"]
    entries: List[Dict[str, Any]] = [
        {
            "name": "mp-sequential-batched",
            "kind": "wallclock",
            "elements": length,
            "wall_seconds": baseline_secs,
            "throughput_eps": length / baseline_secs,
            "peak_rss_kb": _peak_rss_kb(),
            "metrics": baseline_holder["metrics"],
        }
    ]
    for workers in params["workers"]:
        for transport in ("shm", "pickle"):
            config = MPConfig(
                workers=int(workers),
                capacity=capacity,
                chunk_elements=int(params["chunk_elements"]),
                timeout=float(params["timeout"]),
                transport=transport,
            )
            best = None
            for _ in range(repeats):
                result = run_mp(stream, config, metrics=MetricsRegistry())
                if best is None or result.wall_seconds < best.wall_seconds:
                    best = result
            suffix = "" if transport == "shm" else "-pickle"
            entries.append(
                {
                    "name": f"mp-sharded-{workers}w{suffix}",
                    "kind": "mp",
                    "elements": length,
                    "workers": int(workers),
                    "transport": transport,
                    "wall_seconds": best.wall_seconds,
                    "startup_seconds": best.startup_seconds,
                    "throughput_eps": best.throughput,
                    "speedup_vs_sequential": baseline_secs / best.wall_seconds,
                    "equivalent": summaries_equivalent(
                        baseline, best.counter, k=10
                    ),
                    "partition_how": config.partition_how,
                    "peak_rss_kb": _peak_rss_kb(),
                    "metrics": best.extras.get("metrics") or {},
                }
            )
    return entries


def _bench_scenarios(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The accuracy matrix: every registered scenario on every backend.

    Unlike the other suites this one is gated on *accuracy*, not speed:
    each cell records recall/precision@k against exact ground truth, the
    worst over/under-estimate versus the ε·N bound, and the hard
    guarantee-violation count — which must be zero everywhere, including
    (especially) the adversarial rows, because the adversaries are built
    to saturate Space Saving's bounds, not to break them.
    """
    from repro.scenarios import (
        BACKENDS,
        SCENARIOS,
        ScenarioParams,
        run_scenario,
    )

    scenario_params = ScenarioParams(
        length=int(params["length"]),
        alphabet=int(params["alphabet"]),
        capacity=int(params["capacity"]),
        seed=int(params["seed"]),
    )
    k = int(params["k"])
    entries: List[Dict[str, Any]] = []
    for name in SCENARIOS:
        for backend in BACKENDS:
            run = run_scenario(
                name,
                backend,
                scenario_params,
                k=k,
                threads=int(params["threads"]),
                workers=int(params["workers"]),
                chunk_elements=int(params["chunk_elements"]),
                timeout=float(params["timeout"]),
                metrics=MetricsRegistry(),
            )
            accuracy = run.accuracy
            entries.append(
                {
                    "name": f"{name}-{backend}",
                    "kind": "scenario",
                    "scenario": name,
                    "scenario_kind": run.scenario_kind,
                    "backend": backend,
                    "elements": run.elements,
                    "distinct": run.distinct,
                    "k": k,
                    "recall_at_k": accuracy.recall_at_k,
                    "precision_at_k": accuracy.precision_at_k,
                    "max_overestimate": accuracy.max_overestimate,
                    "max_underestimate": accuracy.max_underestimate,
                    "error_bound": accuracy.error_bound,
                    "bound_excess": accuracy.bound_excess,
                    "guarantee_violations": accuracy.guarantee_violations,
                    "monitored": accuracy.monitored,
                    "wall_seconds": run.wall_seconds,
                    "throughput_eps": run.throughput_eps,
                    "peak_rss_kb": _peak_rss_kb(),
                    "metrics": run.metrics,
                }
            )
    return entries


def _bench_sketch(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The sketch ladder: scalar → pre-agg → vectorized → one-table mp.

    The first three rungs are the kernel story (same seed, tables must
    stay bit-identical so the speedup is a pure implementation win);
    the mp rungs compare the one-table mode's zero-merge snapshot read
    against the sharded pool's snapshot+merge path at matched worker
    counts, with per-rung bound-compliance checked against exact ground
    truth (an underestimating Count-Min table is a correctness bug, not
    a perf trade).
    """
    import numpy as np

    from repro.backend.adapters import SketchCMVecBackend
    from repro.core.sketches.count_min import CountMinSketch
    from repro.core.sketches.count_sketch import CountSketch
    from repro.mp.config import MPConfig
    from repro.mp.one_table import OneTablePool
    from repro.mp.pool import ShardedProcessPool
    from repro.schedcheck.auditor import exact_counts
    from repro.workloads.zipf import zipf_stream

    stream = zipf_stream(
        int(params["length"]),
        int(params["alphabet"]),
        float(params["alpha"]),
        seed=int(params["seed"]),
    )
    length = len(stream)
    capacity = int(params["capacity"])
    chunk = int(params["chunk_elements"])
    epsilon = float(params["epsilon"])
    delta = float(params["delta"])
    sketch_seed = int(params["sketch_seed"])
    repeats = int(params["repeats"])
    timeout = float(params["timeout"])
    entries: List[Dict[str, Any]] = []

    scalar_holder: Dict[str, Any] = {}

    def run_scalar_per_element() -> None:
        sketch = CountMinSketch(
            epsilon=epsilon, delta=delta, seed=sketch_seed
        )
        update = sketch.update
        for element in stream:
            update(element, 1)
        scalar_holder["sketch"] = sketch

    preagg_holder: Dict[str, Any] = {}

    def run_scalar_preagg() -> None:
        sketch = CountMinSketch(
            epsilon=epsilon, delta=delta, seed=sketch_seed
        )
        sketch.process_many(stream)
        preagg_holder["sketch"] = sketch

    vec_holder: Dict[str, Any] = {}

    def run_vectorized() -> None:
        registry = MetricsRegistry()
        backend = SketchCMVecBackend(
            capacity=capacity, epsilon=epsilon, delta=delta,
            seed=sketch_seed, metrics=registry,
        )
        try:
            for index in range(0, length, chunk):
                backend.ingest(stream[index:index + chunk])
            backend.snapshot()  # populates the occupancy gauge
            vec_holder["sketch"] = backend._sketch
            vec_holder["metrics"] = registry.snapshot()
        finally:
            backend.close()

    scalar_secs = _best_of(repeats, run_scalar_per_element)
    preagg_secs = _best_of(repeats, run_scalar_preagg)
    vec_secs = _best_of(repeats, run_vectorized)
    scalar_table = scalar_holder["sketch"].table
    identical_preagg = bool(
        np.array_equal(scalar_table, preagg_holder["sketch"].table)
    )
    identical_vec = bool(
        np.array_equal(scalar_table, vec_holder["sketch"].table)
    )
    entries.extend(
        [
            {
                "name": "sketch-cm-scalar-per-element",
                "kind": "wallclock",
                "elements": length,
                "wall_seconds": scalar_secs,
                "throughput_eps": length / scalar_secs,
                "peak_rss_kb": _peak_rss_kb(),
                "metrics": {},
            },
            {
                "name": "sketch-cm-scalar-preagg",
                "kind": "wallclock",
                "elements": length,
                "wall_seconds": preagg_secs,
                "throughput_eps": length / preagg_secs,
                "speedup_vs_per_element": scalar_secs / preagg_secs,
                "identical_results": identical_preagg,
                "peak_rss_kb": _peak_rss_kb(),
                "metrics": {},
            },
            {
                "name": "sketch-cm-vectorized",
                "kind": "wallclock",
                "elements": length,
                "wall_seconds": vec_secs,
                "throughput_eps": length / vec_secs,
                "speedup_vs_per_element": scalar_secs / vec_secs,
                "identical_results": identical_vec,
                "peak_rss_kb": _peak_rss_kb(),
                "metrics": vec_holder["metrics"],
            },
        ]
    )

    cs_holder: Dict[str, Any] = {}

    def run_count_sketch() -> None:
        sketch = CountSketch(
            width=int(params["cs_width"]),
            depth=int(params["cs_depth"]),
            seed=sketch_seed,
        )
        for index in range(0, length, chunk):
            codes, weights = sketch.codec.encode_chunk(
                stream[index:index + chunk]
            )
            sketch.process_weighted(codes, weights)
        cs_holder["sketch"] = sketch

    cs_secs = _best_of(repeats, run_count_sketch)
    entries.append(
        {
            "name": "sketch-countsketch-vectorized",
            "kind": "wallclock",
            "elements": length,
            "wall_seconds": cs_secs,
            "throughput_eps": length / cs_secs,
            "peak_rss_kb": _peak_rss_kb(),
            "metrics": {},
        }
    )

    truth = exact_counts(stream)
    for workers in params["workers"]:
        workers = int(workers)
        with ShardedProcessPool(
            MPConfig(
                workers=workers,
                capacity=capacity,
                chunk_elements=chunk,
                timeout=timeout,
            )
        ) as pool:
            count_started = time.perf_counter()
            pool.count(stream)
            pool.merged()  # quiesce + warm the snapshot path
            sharded_count_secs = time.perf_counter() - count_started
            sharded_merge_secs = _best_of(
                repeats, lambda pool=pool: pool.merged()
            )
        registry = MetricsRegistry()
        with OneTablePool(
            MPConfig(
                workers=workers,
                capacity=capacity,
                chunk_elements=chunk,
                timeout=timeout,
                mode="one_table",
                sketch_epsilon=epsilon,
                sketch_delta=delta,
                sketch_seed=sketch_seed,
            ),
            metrics=registry,
        ) as pool:
            count_started = time.perf_counter()
            pool.count(stream)
            merged = pool.merged()  # flush + strict read
            count_secs = time.perf_counter() - count_started
            # ingest is quiescent now: the zero-merge top-k read is the
            # mode's headline quantity (sharded must merge all shards to
            # answer the same query); the full-summary peek is secondary
            pool.top_k(10, strict=True)  # warm, like merged() above
            snapshot_secs = _best_of(
                repeats, lambda pool=pool: pool.top_k(10, strict=True)
            )
            peek_secs = _best_of(
                repeats, lambda pool=pool: pool.peek(strict=True)
            )
            band_bound = int(pool.band_bounds().max(initial=0))
        max_under = 0
        max_over = 0
        violations = 0
        for entry in merged.entries():
            true_count = truth.get(entry.element, 0)
            over = entry.count - true_count
            max_over = max(max_over, over)
            max_under = max(max_under, -over)
            if entry.count < true_count:
                violations += 1
            if entry.count - entry.error > true_count:
                violations += 1
            if over > entry.error:
                violations += 1
        entries.append(
            {
                "name": f"sketch-one-table-w{workers}",
                "kind": "sketch-mp",
                "workers": workers,
                "elements": length,
                "wall_seconds": count_secs,
                "throughput_eps": length / count_secs,
                "snapshot_seconds": snapshot_secs,
                "peek_seconds": peek_secs,
                "sharded_wall_seconds": sharded_count_secs,
                "sharded_merge_seconds": sharded_merge_secs,
                "snapshot_ratio_vs_sharded": (
                    snapshot_secs / sharded_merge_secs
                    if sharded_merge_secs > 0
                    else 0.0
                ),
                "max_band_bound": band_bound,
                "max_overestimate": max_over,
                "max_underestimate": max_under,
                "bound_compliant": violations == 0,
                "peak_rss_kb": _peak_rss_kb(),
                "metrics": registry.snapshot(),
            }
        )
    return entries


def default_output(suite: str) -> pathlib.Path:
    """The conventional report file for ``suite`` (BENCH_<suite>.json)."""
    return pathlib.Path(f"BENCH_{suite}.json")


def run_suite(scale: str = "tiny", suite: str = "core") -> Dict[str, Any]:
    """Run one pinned benchmark suite and return the report dict."""
    if suite not in SUITES:
        raise ConfigurationError(
            f"suite must be one of {sorted(SUITES)}, got {suite!r}"
        )
    scales = {
        "core": SCALES,
        "mp": MP_SCALES,
        "scenarios": SCENARIO_SCALES,
        "sketch": SKETCH_SCALES,
    }[suite]
    if scale not in scales:
        raise ConfigurationError(
            f"scale must be one of {sorted(scales)}, got {scale!r}"
        )
    params = dict(scales[scale])
    results: List[Dict[str, Any]] = []
    if suite == "core":
        results.extend(_bench_hot_path(params))
        results.extend(_bench_simulated(params))
    elif suite == "scenarios":
        results.extend(_bench_scenarios(params))
    elif suite == "sketch":
        results.extend(_bench_sketch(params))
    else:
        results.extend(_bench_mp(params))
    report = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "scale": scale,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "params": params,
        "results": results,
    }
    if suite in ("mp", "sketch"):
        # Real-parallelism numbers depend on the silicon: record it so
        # the speedup column is interpretable (a 1-core host cannot
        # show wall-clock scaling no matter what the code does).
        report["host_cores"] = os.cpu_count()
    return report


def write_report(report: Dict[str, Any], output: pathlib.Path) -> None:
    output.write_text(json.dumps(report, indent=2) + "\n")


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable one-line-per-result summary of a report."""
    lines = [
        f"bench suite={report['suite']} scale={report['scale']} "
        f"python={report['python']}"
    ]
    if "host_cores" in report:
        lines[0] += f" host_cores={report['host_cores']}"
    for entry in report["results"]:
        if entry["kind"] == "wallclock":
            line = (
                f"  {entry['name']:32s} {entry['wall_seconds'] * 1e3:10.1f} ms"
                f"  {entry['throughput_eps'] / 1e6:8.2f} M el/s (wall)"
            )
            if "speedup_vs_per_element" in entry:
                line += (
                    f"  x{entry['speedup_vs_per_element']:.2f} vs per-element"
                    f"  identical={entry['identical_results']}"
                )
        elif entry["kind"] == "scenario":
            line = (
                f"  {entry['name']:32s} "
                f"recall@{entry['k']}={entry['recall_at_k']:.2f}"
                f"  max_over={entry['max_overestimate']}"
                f"/{entry['error_bound']:.0f}"
                f"  violations={entry['guarantee_violations']}"
                f"  [{entry['wall_seconds'] * 1e3:.0f} ms]"
            )
        elif entry["kind"] == "mp":
            line = (
                f"  {entry['name']:32s} {entry['wall_seconds'] * 1e3:10.1f} ms"
                f"  {entry['throughput_eps'] / 1e6:8.2f} M el/s (wall)"
                f"  x{entry['speedup_vs_sequential']:.2f} vs sequential"
                f"  equivalent={entry['equivalent']}"
            )
        elif entry["kind"] == "sketch-mp":
            line = (
                f"  {entry['name']:32s} {entry['wall_seconds'] * 1e3:10.1f} ms"
                f"  snapshot={entry['snapshot_seconds'] * 1e3:.2f} ms"
                f" ({entry['snapshot_ratio_vs_sharded'] * 100:.1f}% of "
                f"sharded merge)"
                f"  bound_compliant={entry['bound_compliant']}"
            )
        else:
            line = (
                f"  {entry['name']:32s} {entry['sim_cycles']:12d} cycles"
                f"  {entry['sim_throughput_eps'] / 1e6:8.2f} M el/s (sim)"
                f"  [{entry['wall_seconds']:.1f}s host]"
            )
        lines.append(line)
    return "\n".join(lines)
