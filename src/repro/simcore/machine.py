"""Description of the simulated machine.

The default machine mirrors the paper's evaluation platform: an Intel
Core 2 Quad Q6600 — four cores at 2.4 GHz with a shared last-level cache.
A "lean camp" preset (UltraSPARC T2-like: many simple hardware contexts at
a low clock) is provided for the ablation study the paper defers to future
work.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """Static parameters of the simulated chip multiprocessor."""

    cores: int = 4                 #: hardware contexts that run in parallel
    clock_hz: float = 2.4e9        #: per-core clock; converts cycles → secs
    cache_line_bytes: int = 64     #: used by cache-conscious layouts
    timeslice: int = 50_000        #: cycles a thread may hold a core while
    #: others wait (OS scheduling quantum, ~20 µs at 2.4 GHz)
    name: str = "intel-q6600"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {self.cores}")
        if self.clock_hz <= 0:
            raise ConfigurationError(
                f"clock_hz must be > 0, got {self.clock_hz}"
            )
        if self.cache_line_bytes < 1:
            raise ConfigurationError(
                f"cache_line_bytes must be >= 1, got {self.cache_line_bytes}"
            )
        if self.timeslice < 1:
            raise ConfigurationError(
                f"timeslice must be >= 1, got {self.timeslice}"
            )

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count into simulated wall-clock seconds."""
        return cycles / self.clock_hz

    @staticmethod
    def fat_camp() -> "MachineSpec":
        """The paper's evaluation machine (Intel Core 2 Quad Q6600)."""
        return MachineSpec(cores=4, clock_hz=2.4e9, name="intel-q6600")

    @staticmethod
    def lean_camp() -> "MachineSpec":
        """An UltraSPARC T2-like machine: 64 hardware threads at 1.2 GHz."""
        return MachineSpec(cores=64, clock_hz=1.2e9, name="ultrasparc-t2")
