"""Effects yielded by simulated threads.

A simulated thread is a Python generator.  Instead of *performing* work it
*describes* work by yielding effect objects; the engine charges the cycle
cost of each effect, resolves contention (core scheduling, cache-line
serialization, lock queues) and sends the effect's result back into the
generator::

    def worker(cell):
        observed = yield AtomicOp(cell, "add", 1, tag="hash")
        yield Compute(25, tag="structure")

Every effect carries a ``tag`` — a free-form category string under which
the engine accounts both the busy cycles and any waiting time.  The
profiling figures of the paper (Figures 4 and 5) are direct reads of these
accounts.
"""

from __future__ import annotations

from typing import Any, Tuple

#: Atomic operations understood by the engine.
ATOMIC_OPS: Tuple[str, ...] = ("load", "store", "add", "cas", "swap")


class Effect:
    """Base class for everything a simulated thread may yield."""

    __slots__ = ("tag",)

    def __init__(self, tag: str = "rest") -> None:
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for cls in type(self).__mro__
            for name in getattr(cls, "__slots__", ())
        )
        return f"{type(self).__name__}({fields})"


class Compute(Effect):
    """Burn ``cycles`` of CPU time on the thread's core."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int, tag: str = "rest") -> None:
        super().__init__(tag)
        self.cycles = cycles


class AtomicOp(Effect):
    """Perform one hardware atomic operation on an :class:`AtomicCell`.

    ``op`` is one of :data:`ATOMIC_OPS`:

    ``load``
        result = current value.
    ``store``
        value = ``operand``; result = None.
    ``add``
        value += ``operand``; result = the *new* value (``xadd`` +
        operand, i.e. atomic increment-and-fetch as used by Algorithm 2).
    ``cas``
        if value == ``expected``: value = ``operand``; result = True,
        else result = False.
    ``swap``
        old = value; value = ``operand``; result = old.
    """

    __slots__ = ("cell", "op", "operand", "expected")

    def __init__(
        self,
        cell: "AtomicCell",  # noqa: F821 - forward ref, see atomics.py
        op: str,
        operand: Any = None,
        expected: Any = None,
        tag: str = "rest",
    ) -> None:
        super().__init__(tag)
        if op not in ATOMIC_OPS:
            raise ValueError(f"unknown atomic op {op!r}")
        self.cell = cell
        self.op = op
        self.operand = operand
        self.expected = expected


class MutexAcquire(Effect):
    """Acquire a blocking mutex; blocks (releasing the core) if held."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: "Mutex", tag: str = "rest") -> None:  # noqa: F821
        super().__init__(tag)
        self.mutex = mutex


class MutexRelease(Effect):
    """Release a blocking mutex (hand-off to the first waiter, if any)."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: "Mutex", tag: str = "rest") -> None:  # noqa: F821
        super().__init__(tag)
        self.mutex = mutex


class SpinAcquire(Effect):
    """Acquire a spin lock, busy-waiting (and burning core cycles) if held."""

    __slots__ = ("lock",)

    def __init__(self, lock: "SpinLock", tag: str = "rest") -> None:  # noqa: F821
        super().__init__(tag)
        self.lock = lock


class SpinRelease(Effect):
    """Release a spin lock."""

    __slots__ = ("lock",)

    def __init__(self, lock: "SpinLock", tag: str = "rest") -> None:  # noqa: F821
        super().__init__(tag)
        self.lock = lock


class BarrierWait(Effect):
    """Block until all parties have arrived at the barrier."""

    __slots__ = ("barrier",)

    def __init__(self, barrier: "Barrier", tag: str = "rest") -> None:  # noqa: F821
        super().__init__(tag)
        self.barrier = barrier


class Park(Effect):
    """Put this thread to sleep until another thread unparks it.

    The result of the effect is the token passed to :class:`Unpark`.
    """

    __slots__ = ()


class Unpark(Effect):
    """Wake a parked thread, delivering ``token`` as its Park result.

    If the target is not currently parked the wakeup is *remembered*
    (permit semantics, like ``LockSupport.unpark``): the target's next
    Park returns immediately.
    """

    __slots__ = ("thread", "token")

    def __init__(self, thread: Any, token: Any = None, tag: str = "rest") -> None:
        super().__init__(tag)
        self.thread = thread
        self.token = token


class Latency(Effect):
    """Block off-core for ``cycles`` without consuming CPU.

    Models operations whose cost is *latency* rather than computation: a
    syscall round-trip, an allocator lock, a DMA — the "heavy weight
    synchronization primitives" the paper charges per stream element in
    its CoTS implementation.  The core is released for other threads
    while this thread sleeps, which is exactly why oversubscription
    (threads ≫ cores) raises throughput in Figure 11.
    """

    __slots__ = ("cycles",)

    def __init__(self, cycles: int, tag: str = "rest") -> None:
        super().__init__(tag)
        self.cycles = cycles


class YieldCPU(Effect):
    """Voluntarily give up the core (go to the back of the ready queue)."""

    __slots__ = ()


class Now(Effect):
    """Zero-cost effect whose result is the current simulated time."""

    __slots__ = ()


__all__ = [
    "ATOMIC_OPS",
    "Effect",
    "Compute",
    "AtomicOp",
    "Latency",
    "MutexAcquire",
    "MutexRelease",
    "SpinAcquire",
    "SpinRelease",
    "BarrierWait",
    "Park",
    "Unpark",
    "YieldCPU",
    "Now",
]
