"""Blocking synchronization primitives for simulated threads.

These objects hold only *state*; the scheduling behaviour (descheduling a
blocked thread, charging syscall costs, waking waiters) lives in the
engine.  Two lock flavours are provided because Section 4.3 of the paper
contrasts them: blocking pthread-style mutexes, and spin locks whose
busy-waiting also burns CPU ("the performance was worse with Spin Locks").
"""

from __future__ import annotations

import collections
import itertools
from typing import Any, Deque, Optional

from repro.simcore.effects import (
    BarrierWait,
    MutexAcquire,
    MutexRelease,
    SpinAcquire,
    SpinRelease,
)

_ids = itertools.count()


class Mutex:
    """A blocking mutual-exclusion lock with FIFO hand-off.

    A contended acquire deschedules the thread (futex path); the release
    hands the lock directly to the first waiter, which resumes after the
    configured wakeup latency.
    """

    __slots__ = ("mutex_id", "name", "owner", "waiters")

    def __init__(self, name: str = "") -> None:
        self.mutex_id: int = next(_ids)
        self.name = name or f"mutex-{self.mutex_id}"
        self.owner: Optional[Any] = None       # SimThread or None
        self.waiters: Deque[Any] = collections.deque()

    def reset(self) -> None:
        """Clear ownership state (used when an engine starts a fresh run)."""
        self.owner = None
        self.waiters.clear()

    def acquire(self, tag: str = "rest") -> MutexAcquire:
        """Build the acquire effect: ``yield mutex.acquire(tag=...)``."""
        return MutexAcquire(self, tag=tag)

    def release(self, tag: str = "rest") -> MutexRelease:
        """Build the release effect."""
        return MutexRelease(self, tag=tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        holder = getattr(self.owner, "name", None)
        return f"Mutex({self.name!r}, owner={holder}, waiters={len(self.waiters)})"


class SpinLock:
    """A test-and-set spin lock.

    A failed acquire does *not* deschedule the thread: it burns a spin
    quantum on its core and retries, so oversubscribed spinning degrades
    overall progress — the behaviour the paper observed.
    """

    __slots__ = ("lock_id", "name", "owner")

    def __init__(self, name: str = "") -> None:
        self.lock_id: int = next(_ids)
        self.name = name or f"spin-{self.lock_id}"
        self.owner: Optional[Any] = None

    def reset(self) -> None:
        """Clear ownership state (used when an engine starts a fresh run)."""
        self.owner = None

    def acquire(self, tag: str = "rest") -> SpinAcquire:
        """Build the acquire effect."""
        return SpinAcquire(self, tag=tag)

    def release(self, tag: str = "rest") -> SpinRelease:
        """Build the release effect."""
        return SpinRelease(self, tag=tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        holder = getattr(self.owner, "name", None)
        return f"SpinLock({self.name!r}, owner={holder})"


class Barrier:
    """A reusable barrier for ``parties`` threads.

    Used by the hierarchical merge of the Independent Structures design,
    where every merge level ends with all participating threads
    synchronizing — the overhead the paper blames for hierarchical merge
    not beating serial merge in practice.
    """

    __slots__ = ("barrier_id", "name", "parties", "arrived", "generation")

    def __init__(self, parties: int, name: str = "") -> None:
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.barrier_id: int = next(_ids)
        self.name = name or f"barrier-{self.barrier_id}"
        self.parties = parties
        self.arrived: Deque[Any] = collections.deque()
        self.generation = 0

    def reset(self) -> None:
        """Clear arrival state (used when an engine starts a fresh run)."""
        self.arrived.clear()
        self.generation = 0

    def wait(self, tag: str = "rest") -> BarrierWait:
        """Build the wait effect: ``yield barrier.wait(tag=...)``."""
        return BarrierWait(self, tag=tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Barrier({self.name!r}, parties={self.parties}, "
            f"arrived={len(self.arrived)})"
        )
