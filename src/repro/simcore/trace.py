"""Execution tracing and core-utilization analysis for the simulator.

Attach a :class:`TraceRecorder` to an :class:`~repro.simcore.engine.
Engine` before running and it collects one record per executed effect
(thread, core, effect type, tag, start/end).  From the trace you get

* per-core utilization (busy cycles / makespan),
* an ASCII timeline ("who ran where, when") for debugging schedules,
* per-thread effect histograms.

Tracing costs host time and memory, so it is opt-in; the experiment
drivers never enable it.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, List, Optional

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One executed effect."""

    thread: str
    core: int
    effect: str       #: effect class name (Compute, AtomicOp, ...)
    tag: str
    start: int        #: cycle the effect began occupying its core
    end: int          #: completion cycle


class TraceRecorder:
    """Collects :class:`TraceEvent` records from an engine run."""

    def __init__(self, limit: int = 1_000_000) -> None:
        if limit < 1:
            raise ConfigurationError(f"limit must be >= 1, got {limit}")
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped = 0

    # Called by the engine (see Engine.tracer).
    def record(
        self, thread: str, core: int, effect: str, tag: str, start: int, end: int
    ) -> None:
        """Append one event (drops beyond the limit, counting drops)."""
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(thread, core, effect, tag, start, end))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    @property
    def truncated(self) -> bool:
        """True when events were dropped past ``limit``.

        A truncated recorder covers only a *prefix* of the execution:
        makespan, utilization and timelines silently describe that
        prefix unless the caller checks this flag.  The exporters in
        :mod:`repro.obs.export` propagate it into every artifact.
        """
        return self.dropped > 0

    @property
    def makespan(self) -> int:
        """Last recorded completion cycle."""
        return max((event.end for event in self.events), default=0)

    def core_utilization(self) -> Dict[int, float]:
        """Busy fraction per core over the traced makespan."""
        span = self.makespan
        if span == 0:
            return {}
        busy: Dict[int, int] = collections.Counter()
        for event in self.events:
            busy[event.core] += event.end - event.start
        return {core: cycles / span for core, cycles in sorted(busy.items())}

    def effect_histogram(self) -> Dict[str, int]:
        """Count of executed effects by effect type."""
        histogram: Dict[str, int] = collections.Counter()
        for event in self.events:
            histogram[event.effect] += 1
        return dict(histogram)

    def thread_activity(self) -> Dict[str, int]:
        """Busy cycles per thread."""
        activity: Dict[str, int] = collections.Counter()
        for event in self.events:
            activity[event.thread] += event.end - event.start
        return dict(activity)

    def timeline(
        self,
        width: int = 80,
        until: Optional[int] = None,
    ) -> str:
        """An ASCII core-occupancy chart.

        Each row is one core; each column a time slice of
        ``makespan / width`` cycles.  The cell shows the first letter of
        the thread that was busiest in that slice, or ``.`` when idle.
        """
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        span = until if until is not None else self.makespan
        if span == 0:
            return "(empty trace)"
        slice_len = max(1, span // width)
        cores = sorted({event.core for event in self.events})
        # per core per column: busiest thread
        grids: Dict[int, List[Dict[str, int]]] = {
            core: [collections.Counter() for _ in range(width)] for core in cores
        }
        for event in self.events:
            if event.start >= span:
                continue
            first = min(width - 1, event.start // slice_len)
            last = min(width - 1, max(event.start, event.end - 1) // slice_len)
            for column in range(first, last + 1):
                cell_start = column * slice_len
                cell_end = cell_start + slice_len
                overlap = min(event.end, cell_end) - max(event.start, cell_start)
                if overlap > 0:
                    grids[event.core][column][event.thread] += overlap
        lines = [f"timeline: {span} cycles, {slice_len} cycles/column"]
        if self.truncated:
            lines.append(
                f"WARNING: trace truncated ({self.dropped} events dropped past "
                f"limit={self.limit}); timeline covers a prefix only"
            )
        for core in cores:
            cells = []
            for column in grids[core]:
                if not column:
                    cells.append(".")
                else:
                    busiest = max(column, key=column.get)  # type: ignore[arg-type]
                    cells.append(busiest[0] if busiest else "?")
            lines.append(f"core {core}: " + "".join(cells))
        return "\n".join(lines)

    def summary(self) -> str:
        """A short human-readable trace digest."""
        utilization = self.core_utilization()
        parts = [f"{len(self.events)} events"]
        if self.dropped:
            parts.append(f"{self.dropped} dropped")
        parts.append(
            "utilization: "
            + ", ".join(f"core{c}={u:.0%}" for c, u in utilization.items())
        )
        return "; ".join(parts)
