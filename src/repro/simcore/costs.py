"""Cycle-cost model for the simulated chip multiprocessor.

All costs are expressed in CPU cycles of a single core.  The defaults are
calibrated so that

* the *sequential* Space Saving implementation spends roughly 120 cycles
  per stream element (about 20M elements/s/core at 2.4 GHz, the order of
  magnitude reported in Table 2 of the paper), and
* the relative penalties follow well-known microarchitectural ratios for
  the 2008-era Intel Core 2 Quad the paper evaluates on: an uncontended
  atomic RMW costs a few tens of cycles, a cache-line transfer between
  cores costs on the order of a hundred cycles, and a futex-style blocking
  mutex acquisition costs thousands of cycles (syscall + scheduler).

The constants are deliberately centralized here so that the ablation
benchmarks can sweep them and demonstrate that the *shape* of every
reproduced figure is robust to the exact calibration.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Cycle costs charged by the simulator for each kind of effect.

    Instances are immutable; derive variants with :meth:`replace`.
    """

    # -- plain computation -------------------------------------------------
    stream_fetch: int = 10        #: read the next element from the input
    hash_compute: int = 18        #: compute a hash of an element key
    key_compare: int = 4          #: compare two keys in a chain
    pointer_chase: int = 8        #: follow one pointer (cache-friendly)
    alloc: int = 40               #: allocate a node / bucket
    free: int = 20                #: release a node / bucket
    list_splice: int = 12         #: unlink/link an element in a list
    counter_update: int = 6       #: bump an ordinary (non-atomic) counter

    # -- atomic operations and cache coherence -----------------------------
    atomic_rmw: int = 20          #: uncontended LOCK-prefixed RMW (CAS/XADD)
    atomic_load: int = 4          #: plain atomic load
    atomic_store: int = 8         #: plain atomic store
    line_transfer: int = 32       #: cache-line ping between cores (the
    #: Q6600's cores share an L2, so transfers are cheap)
    local_hit: int = 2            #: access to a line already owned

    # -- blocking mutexes (pthread mutex; futex path when contended) -------
    mutex_acquire: int = 35       #: lock an uncontended mutex
    mutex_release: int = 30       #: unlock
    mutex_block: int = 1400       #: syscall + deschedule when contended
    mutex_wakeup: int = 1100      #: latency until a woken waiter runs

    # -- spin locks ---------------------------------------------------------
    spin_try: int = 12            #: one test-and-set attempt
    spin_quantum: int = 48        #: busy-wait burned per failed attempt

    # -- OS scheduling ------------------------------------------------------
    context_switch: int = 40      #: resume a software thread on a core
    #: (futex-wake fast path with a warm cache; a full cold switch is
    #: modelled by the mutex costs above)
    park: int = 1300              #: put a pool thread to sleep
    unpark: int = 900             #: wake a pool thread
    sync_latency: int = 4000      #: per-element off-core latency of the
    #: CoTS implementation's heavyweight synchronization/allocation calls
    #: (§6: "invoked for every stream element"); latency, not CPU — it
    #: overlaps across threads, which is what Figure 11 exploits

    # -- request queues and merging ----------------------------------------
    queue_enqueue: int = 26       #: MPSC enqueue (one CAS + link)
    queue_dequeue: int = 12       #: owner-side dequeue
    relinquish_check: int = 300   #: owner-side scan for pending work before
    #: relinquishing an element ("before it relinquishes control over R,
    #: it will check for any pending requests on R").  This window is
    #: also what lets back-to-back occurrences of a hot element land on
    #: the still-held counter and be absorbed as bulk increments.
    request_alloc: int = 1800     #: build + log one summary request (§6:
    #: "memory allocations in the CoTS framework [are] much higher
    #: because of request logging and related book keeping, and these
    #: allocation calls again invoke system routines").  Paid per request
    #: crossing the boundary — delegated elements skip it, which is why
    #: CoTS pulls ahead of sequential only when skew makes delegation
    #: common (Table 2's α ordering)
    merge_per_counter: int = 30   #: merge one counter into a global summary
    barrier_wait: int = 600       #: synchronize at a merge barrier

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"cost {field.name!r} must be a non-negative int, "
                    f"got {value!r}"
                )

    def replace(self, **overrides: int) -> "CostModel":
        """Return a copy of this model with the given costs overridden."""
        return dataclasses.replace(self, **overrides)

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every cost multiplied by ``factor``.

        Useful for ablation sweeps; costs are rounded to whole cycles but
        never below 1 so that ordering effects survive.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be > 0, got {factor}")
        updates = {
            field.name: max(1, round(getattr(self, field.name) * factor))
            for field in dataclasses.fields(self)
        }
        return dataclasses.replace(self, **updates)
