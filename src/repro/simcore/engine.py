"""Deterministic discrete-event engine for the simulated CMP.

Simulated threads are Python generators that yield :mod:`effects
<repro.simcore.effects>`.  The engine owns all scheduling decisions:

* **Cores.**  Ready threads queue FIFO for the machine's cores.  A core
  runs one effect at a time; switching a core between different threads
  charges a context-switch penalty.  With more software threads than
  cores this yields round-robin-like timesharing, matching the paper's
  observation that contention effects flatten once threads exceed cores.
* **Atomics.**  Operations on the same cache line serialize, and a line
  previously owned by another core pays a coherence-transfer penalty.
* **Mutexes.**  Contended acquires deschedule the thread (it releases its
  core); releases hand the lock to the first waiter, which resumes after
  a wakeup latency plus the modelled syscall overhead.
* **Spin locks.**  Failed acquires keep the thread on the ready queue,
  burning a spin quantum per retry, so spinning contends for CPU.
* **Park / Unpark.**  Thread-pool primitives with permit semantics used
  by the CoTS dynamic auto-configuration.

All state transitions happen in simulated-time order (ties broken by a
monotone sequence number), so a run is a pure function of its inputs —
re-running with the same machine, costs and thread programs reproduces
the identical trace.  This determinism is property-tested.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, ProtocolError, SimulationError
from repro.simcore.atomics import apply_atomic
from repro.simcore.costs import CostModel
from repro.simcore.effects import (
    AtomicOp,
    BarrierWait,
    Compute,
    Effect,
    Latency,
    MutexAcquire,
    MutexRelease,
    Now,
    Park,
    SpinAcquire,
    SpinRelease,
    Unpark,
    YieldCPU,
)
from repro.simcore.machine import MachineSpec
from repro.simcore.stats import ExecutionResult, ThreadStats

# Thread lifecycle states.
_READY = "ready"        # wants a core (pending_effect set)
_RUNNING = "running"    # effect in flight (DONE event scheduled)
_BLOCKED = "blocked"    # descheduled on a mutex or barrier
_PARKED = "parked"      # descheduled in the thread pool
_DONE = "done"

# Event kinds in the heap.
_EV_DONE = 0
_EV_WAKE = 1


class SimThread:
    """A simulated software thread driving one effect generator."""

    __slots__ = (
        "name",
        "gen",
        "state",
        "pending_effect",
        "stats",
        "daemon",
        "_ready_at",
        "_busy_cost",
        "_wait_extra",
        "_core",
        "_last_core",
        "_wake_result",
        "_blocked_at",
        "_blocked_tag",
        "_spinning",
        "_permit",
        "_permit_token",
        "_slice_used",
    )

    def __init__(
        self,
        name: str,
        gen: Generator[Effect, Any, Any],
        daemon: bool = False,
    ) -> None:
        self.name = name
        self.gen = gen
        self.state = _READY
        self.pending_effect: Optional[Effect] = None
        self.stats = ThreadStats(name=name)
        #: daemon threads may still be parked when the run ends
        self.daemon = daemon
        self._ready_at = 0
        self._busy_cost = 0
        self._wait_extra = 0
        self._core: Optional[int] = None
        self._last_core: Optional[int] = None
        self._wake_result: Any = None
        self._blocked_at = 0
        self._blocked_tag = "rest"
        self._spinning = False
        self._permit = False
        self._permit_token: Any = None
        self._slice_used = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimThread({self.name!r}, state={self.state})"


class Engine:
    """Discrete-event simulator for one machine running many threads.

    Effect semantics are resolved through type-keyed dispatch tables
    (``_TIMING`` / ``_APPLY``) instead of ``isinstance`` ladders — the
    engine processes one table lookup per effect, which keeps the
    per-event overhead flat no matter which effect is yielded.  Subclasses
    of a registered effect type resolve to their nearest registered base
    (cached on first use).
    """

    __slots__ = (
        "machine",
        "costs",
        "tracer",
        "sched_policy",
        "probe",
        "now",
        "events_processed",
        "_seq",
        "_heap",
        "_cpu_waiters",
        "_waiter_head",
        "_core_free",
        "_core_last",
        "_core_busy",
        "_threads",
        "_live",
        "_ran",
    )

    def __init__(
        self,
        machine: Optional[MachineSpec] = None,
        costs: Optional[CostModel] = None,
        tracer: Optional[Any] = None,
        sched_policy: Optional[Any] = None,
        probe: Optional[Any] = None,
    ) -> None:
        self.machine = machine if machine is not None else MachineSpec()
        self.costs = costs if costs is not None else CostModel()
        #: optional TraceRecorder-like object with a .record(...) method
        self.tracer = tracer
        #: optional scheduling-perturbation policy (see
        #: repro.schedcheck.perturb).  Consulted at the two points where
        #: the engine makes a discretionary choice: which CPU waiter runs
        #: next, and whether a thread is preempted before its quantum
        #: expires.  None means the default deterministic FIFO schedule.
        self.sched_policy = sched_policy
        #: optional callable invoked as probe(engine) after every
        #: processed event — the schedcheck auditor's checkpoint hook.
        self.probe = probe
        self.now = 0
        self.events_processed = 0
        self._seq = itertools.count()
        self._heap: List[Tuple[int, int, int, SimThread]] = []
        self._cpu_waiters: List[SimThread] = []  # used as FIFO via index
        self._waiter_head = 0
        self._core_free: List[int] = [0] * self.machine.cores
        self._core_last: List[Optional[SimThread]] = [None] * self.machine.cores
        self._core_busy: List[int] = [0] * self.machine.cores
        self._threads: List[SimThread] = []
        self._live = 0  # threads not DONE
        self._ran = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def spawn(
        self,
        gen: Generator[Effect, Any, Any],
        name: Optional[str] = None,
        daemon: bool = False,
        start_at: int = 0,
    ) -> SimThread:
        """Register a thread.  Must be called before :meth:`run`."""
        thread = SimThread(
            name=name if name is not None else f"thread-{len(self._threads)}",
            gen=gen,
            daemon=daemon,
        )
        thread._ready_at = start_at
        self._threads.append(thread)
        self._live += 1
        return thread

    def run(self, max_events: Optional[int] = None) -> ExecutionResult:
        """Run until every non-daemon thread terminates.

        Daemon threads that are still parked when all other work finishes
        are stopped in place (their generators are closed).  If progress
        stops while non-daemon threads are blocked, :class:`DeadlockError`
        is raised.
        """
        if self._ran:
            raise SimulationError("an Engine can only run once; build a new one")
        self._ran = True
        for thread in self._threads:
            self._advance(thread, None, thread._ready_at)
        while self._heap:
            if max_events is not None and self.events_processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "possible livelock in the simulated program"
                )
            when, _, kind, thread = heapq.heappop(self._heap)
            self.now = when
            self.events_processed += 1
            if kind == _EV_DONE:
                self._complete(thread, when)
            else:
                self._wake(thread, when)
            if self.probe is not None:
                self.probe(self)
            if self._only_daemons_left():
                break
        self._finish_run()
        return ExecutionResult(
            makespan=self.now,
            threads={t.name: t.stats for t in self._threads},
            events=self.events_processed,
            clock_hz=self.machine.clock_hz,
            core_busy=list(self._core_busy),
        )

    # ------------------------------------------------------------------
    # Lifecycle helpers
    # ------------------------------------------------------------------
    def _only_daemons_left(self) -> bool:
        if self._live == 0:
            return True
        return all(
            t.state == _DONE or (t.daemon and t.state == _PARKED)
            for t in self._threads
        )

    def _finish_run(self) -> None:
        stuck = [
            t
            for t in self._threads
            if t.state in (_BLOCKED, _READY, _RUNNING)
            or (t.state == _PARKED and not t.daemon)
        ]
        if stuck:
            # READY/RUNNING threads can only be stuck here if the heap
            # drained early, which indicates an engine bug rather than a
            # user-program deadlock — but both deserve a loud failure.
            names = ", ".join(sorted(t.name for t in stuck))
            raise DeadlockError(
                f"run ended with non-terminated threads: {names}"
            )
        for thread in self._threads:
            if thread.state == _PARKED:
                thread.gen.close()
                thread.state = _DONE
                thread.stats.finish_time = self.now

    def _advance(
        self,
        thread: SimThread,
        result: Any,
        when: int,
        core: Optional[int] = None,
    ) -> None:
        """Send ``result`` into the generator and schedule its next effect.

        ``core`` is a keep-the-core hint: when the thread's scheduling
        quantum has not expired, it continues on the core it already
        holds without paying a context switch or requeueing.
        """
        try:
            effect = thread.gen.send(result)
        except StopIteration as stop:
            thread.state = _DONE
            thread.stats.finish_time = when
            thread.stats.return_value = stop.value
            self._live -= 1
            if core is not None:
                # the core this thread was keeping is now free
                waiter = self._pop_cpu_waiter()
                if waiter is not None:
                    self._assign(waiter, core, when)
            return
        if not isinstance(effect, Effect):
            raise SimulationError(
                f"thread {thread.name!r} yielded {effect!r}, "
                "which is not a simcore Effect"
            )
        thread.pending_effect = effect
        thread._spinning = False
        if core is not None and self._core_free[core] <= when:
            thread._ready_at = when
            thread.state = _READY
            self._assign(thread, core, when)
        else:
            self._request_cpu(thread, when)

    def _request_cpu(self, thread: SimThread, when: int) -> None:
        thread._ready_at = when
        thread.state = _READY
        core = self._find_free_core(thread, when)
        if core is None:
            self._cpu_waiters.append(thread)
        else:
            self._assign(thread, core, when)

    def _find_free_core(self, thread: SimThread, when: int) -> Optional[int]:
        preferred = thread._last_core
        if (
            preferred is not None
            and self._core_free[preferred] <= when
            and not self._has_cpu_waiters()
        ):
            return preferred
        best = None
        for core in range(self.machine.cores):
            if self._core_free[core] <= when:
                if self._core_last[core] is thread:
                    return core
                if best is None:
                    best = core
        return best

    def _has_cpu_waiters(self) -> bool:
        return self._waiter_head < len(self._cpu_waiters)

    def _pop_cpu_waiter(self) -> Optional[SimThread]:
        if self._waiter_head >= len(self._cpu_waiters):
            return None
        pending = len(self._cpu_waiters) - self._waiter_head
        if self.sched_policy is not None and pending > 1:
            offset = self.sched_policy.pick_waiter(pending)
            if offset:
                # Perturbed pick: pull a waiter from inside the queue.
                # The element is removed outright (not None-ed) so the
                # head/compaction bookkeeping below stays untouched.
                index = self._waiter_head + offset
                thread = self._cpu_waiters[index]
                del self._cpu_waiters[index]
                return thread
        thread = self._cpu_waiters[self._waiter_head]
        self._cpu_waiters[self._waiter_head] = None  # type: ignore[call-overload]
        self._waiter_head += 1
        # Periodically compact the FIFO so memory stays bounded.
        if self._waiter_head > 64 and self._waiter_head * 2 > len(
            self._cpu_waiters
        ):
            del self._cpu_waiters[: self._waiter_head]
            self._waiter_head = 0
        return thread

    # ------------------------------------------------------------------
    # Effect assignment (start of execution on a core)
    # ------------------------------------------------------------------
    def _assign(self, thread: SimThread, core: int, when: int) -> None:
        effect = thread.pending_effect
        start = max(when, self._core_free[core])
        previous = self._core_last[core]
        if previous is not thread:
            # switching between threads costs; first use of an idle core
            # does not
            if previous is not None:
                start += self.costs.context_switch
            thread._slice_used = 0
        cost, extra_wait = self._effect_timing(thread, effect, core, start)
        end = start + extra_wait + cost
        thread._slice_used += end - start
        thread.state = _RUNNING
        thread._core = core
        thread._last_core = core
        thread._busy_cost = cost
        # wait = time from becoming ready to actually starting work; this
        # covers queueing for a core, the context switch, and cache-line
        # stalls (extra_wait).
        thread._wait_extra = (start + extra_wait) - thread._ready_at
        self._core_free[core] = end
        self._core_last[core] = thread
        self._core_busy[core] += end - start
        if self.tracer is not None:
            self.tracer.record(
                thread.name, core, type(effect).__name__, effect.tag,
                start, end,
            )
        heapq.heappush(self._heap, (end, next(self._seq), _EV_DONE, thread))

    def _effect_timing(
        self, thread: SimThread, effect: Effect, core: int, start: int
    ) -> Tuple[int, int]:
        """Return (busy_cost, extra_wait) for executing ``effect``."""
        handler = _TIMING.get(effect.__class__)
        if handler is None:
            handler = _resolve_handler(_TIMING, effect, "timing")
        return handler(self, thread, effect, core, start)

    # -- per-type timing handlers (registered in _TIMING below) ----------
    def _time_compute(self, thread, effect, core, start):
        return effect.cycles, 0

    def _time_atomic(self, thread, effect, core, start):
        costs = self.costs
        line = effect.cell.line
        stall = max(0, line.free_at - start)
        if effect.op == "load":
            base = costs.atomic_load
        elif effect.op == "store":
            base = costs.atomic_store
        else:
            base = costs.atomic_rmw
        if line.owner_core is None or line.owner_core == core:
            base += costs.local_hit
        else:
            base += costs.line_transfer
        line.free_at = start + stall + base
        line.owner_core = core
        return base, stall

    def _time_mutex_acquire(self, thread, effect, core, start):
        return self.costs.mutex_acquire, 0

    def _time_mutex_release(self, thread, effect, core, start):
        return self.costs.mutex_release, 0

    def _time_spin_acquire(self, thread, effect, core, start):
        costs = self.costs
        return (costs.spin_quantum if thread._spinning else costs.spin_try), 0

    def _time_spin_release(self, thread, effect, core, start):
        return self.costs.spin_try, 0

    def _time_barrier(self, thread, effect, core, start):
        return self.costs.atomic_rmw, 0

    def _time_park(self, thread, effect, core, start):
        return self.costs.park, 0

    def _time_unpark(self, thread, effect, core, start):
        return self.costs.unpark, 0

    def _time_latency(self, thread, effect, core, start):
        # issuing the operation is nearly free; the latency itself is
        # spent off-core (handled at completion)
        return 1, 0

    def _time_yield(self, thread, effect, core, start):
        return 1, 0

    def _time_now(self, thread, effect, core, start):
        return 0, 0

    # ------------------------------------------------------------------
    # Effect completion (semantics applied in simulated-time order)
    # ------------------------------------------------------------------
    def _complete(self, thread: SimThread, when: int) -> None:
        effect = thread.pending_effect
        core = thread._core
        acct = thread.stats.account(effect.tag)
        acct.add(busy=thread._busy_cost, wait=thread._wait_extra)
        result, disposition = self._apply(thread, effect, when)
        if disposition == "continue":
            self._handover_then(thread, core, when, result, advance=True)
        elif disposition == "retry":
            thread._spinning = True
            thread.stats.spin_retries += 1
            self._handover_then(thread, core, when, None, advance=False)
        elif disposition == "blocked":
            waiter = self._pop_cpu_waiter()
            if waiter is not None:
                self._assign(waiter, core, when)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown disposition {disposition!r}")

    def _handover_then(
        self,
        thread: SimThread,
        core: int,
        when: int,
        result: Any,
        advance: bool,
    ) -> None:
        """Hand the core over if the thread's quantum expired, else keep it.

        A thread below its scheduling quantum keeps the core across
        effects (real OSes do not preempt per instruction); once the
        quantum is spent and someone is waiting, the core goes to the
        head CPU waiter and this thread requeues at the tail.
        """
        expired = thread._slice_used >= self.machine.timeslice
        if (
            not expired
            and self.sched_policy is not None
            and self._has_cpu_waiters()
            and self.sched_policy.force_preempt(thread.pending_effect)
        ):
            # Perturbed schedule: preempt at an effect boundary even
            # though the quantum has cycles left.
            expired = True
        if expired and self._has_cpu_waiters():
            waiter = self._pop_cpu_waiter()
            self._assign(waiter, core, when)
            thread._slice_used = 0
            if advance:
                self._advance(thread, result, when)
            else:
                self._request_cpu(thread, when)
            return
        if advance:
            self._advance(thread, result, when, core=core)
        else:
            thread._ready_at = when
            thread.state = _READY
            self._assign(thread, core, when)

    def _apply(
        self, thread: SimThread, effect: Effect, when: int
    ) -> Tuple[Any, str]:
        """Apply effect semantics at completion time ``when``."""
        handler = _APPLY.get(effect.__class__)
        if handler is None:
            handler = _resolve_handler(_APPLY, effect, "apply")
        return handler(self, thread, effect, when)

    # -- per-type apply handlers (registered in _APPLY below) ------------
    def _apply_compute(self, thread, effect, when):
        return None, "continue"

    def _apply_atomic(self, thread, effect, when):
        value = apply_atomic(
            effect.cell, effect.op, effect.operand, effect.expected
        )
        return value, "continue"

    def _apply_mutex_acquire(self, thread, effect, when):
        mutex = effect.mutex
        if mutex.owner is None:
            mutex.owner = thread
            return None, "continue"
        if mutex.owner is thread:
            raise ProtocolError(
                f"thread {thread.name!r} re-acquired non-recursive "
                f"{mutex.name!r}"
            )
        mutex.waiters.append(thread)
        self._block(thread, effect.tag, when)
        return None, "blocked"

    def _apply_mutex_release(self, thread, effect, when):
        costs = self.costs
        mutex = effect.mutex
        if mutex.owner is not thread:
            raise ProtocolError(
                f"thread {thread.name!r} released {mutex.name!r} "
                f"owned by {getattr(mutex.owner, 'name', None)!r}"
            )
        if mutex.waiters:
            heir = mutex.waiters.popleft()
            mutex.owner = heir
            self._schedule_wake(
                heir, when + costs.mutex_wakeup + costs.mutex_block, None
            )
        else:
            mutex.owner = None
        return None, "continue"

    def _apply_spin_acquire(self, thread, effect, when):
        lock = effect.lock
        if lock.owner is None:
            lock.owner = thread
            return None, "continue"
        if lock.owner is thread:
            raise ProtocolError(
                f"thread {thread.name!r} re-acquired spin lock "
                f"{lock.name!r}"
            )
        return None, "retry"

    def _apply_spin_release(self, thread, effect, when):
        lock = effect.lock
        if lock.owner is not thread:
            raise ProtocolError(
                f"thread {thread.name!r} released spin lock "
                f"{lock.name!r} owned by "
                f"{getattr(lock.owner, 'name', None)!r}"
            )
        lock.owner = None
        return None, "continue"

    def _apply_barrier(self, thread, effect, when):
        barrier = effect.barrier
        barrier.arrived.append(thread)
        if len(barrier.arrived) >= barrier.parties:
            barrier.generation += 1
            wake_at = when + self.costs.barrier_wait
            for waiter in barrier.arrived:
                if waiter is not thread:
                    self._schedule_wake(waiter, wake_at, barrier.generation)
            barrier.arrived.clear()
            return barrier.generation, "continue"
        self._block(thread, effect.tag, when)
        return None, "blocked"

    def _apply_park(self, thread, effect, when):
        if thread._permit:
            thread._permit = False
            token = thread._permit_token
            thread._permit_token = None
            return token, "continue"
        thread.state = _PARKED
        thread._blocked_at = when
        thread._blocked_tag = effect.tag
        return None, "blocked"

    def _apply_unpark(self, thread, effect, when):
        target: SimThread = effect.thread
        if target.state == _PARKED:
            self._schedule_wake(
                target, when + self.costs.mutex_wakeup, effect.token
            )
            target.state = _BLOCKED  # wake already scheduled
        elif target.state != _DONE:
            target._permit = True
            target._permit_token = effect.token
        return None, "continue"

    def _apply_latency(self, thread, effect, when):
        self._block(thread, effect.tag, when)
        self._schedule_wake(thread, when + effect.cycles, None)
        return None, "blocked"

    def _apply_yield(self, thread, effect, when):
        # Treat the quantum as spent so the handover logic rotates the
        # core to the next waiter.
        thread._slice_used = self.machine.timeslice
        return None, "continue"

    def _apply_now(self, thread, effect, when):
        return when, "continue"

    # ------------------------------------------------------------------
    # Blocking / waking
    # ------------------------------------------------------------------
    def _block(self, thread: SimThread, tag: str, when: int) -> None:
        thread.state = _BLOCKED
        thread._blocked_at = when
        thread._blocked_tag = tag
        thread.stats.block_events += 1

    def _schedule_wake(self, thread: SimThread, when: int, result: Any) -> None:
        thread._wake_result = result
        heapq.heappush(self._heap, (when, next(self._seq), _EV_WAKE, thread))

    def _wake(self, thread: SimThread, when: int) -> None:
        if thread.state not in (_BLOCKED, _PARKED):
            raise SimulationError(
                f"wake event for thread {thread.name!r} in state "
                f"{thread.state!r}"
            )
        thread.stats.account(thread._blocked_tag).add(
            wait=when - thread._blocked_at
        )
        result = thread._wake_result
        thread._wake_result = None
        self._advance(thread, result, when)


# ----------------------------------------------------------------------
# Type-keyed dispatch tables.  Built once at import time; `_resolve_handler`
# lets Effect *subclasses* inherit their nearest registered base's
# semantics (the resolution is cached so the mro walk happens once per
# subclass, not once per event).
# ----------------------------------------------------------------------
_TIMING = {
    Compute: Engine._time_compute,
    AtomicOp: Engine._time_atomic,
    MutexAcquire: Engine._time_mutex_acquire,
    MutexRelease: Engine._time_mutex_release,
    SpinAcquire: Engine._time_spin_acquire,
    SpinRelease: Engine._time_spin_release,
    BarrierWait: Engine._time_barrier,
    Park: Engine._time_park,
    Unpark: Engine._time_unpark,
    Latency: Engine._time_latency,
    YieldCPU: Engine._time_yield,
    Now: Engine._time_now,
}

_APPLY = {
    Compute: Engine._apply_compute,
    AtomicOp: Engine._apply_atomic,
    MutexAcquire: Engine._apply_mutex_acquire,
    MutexRelease: Engine._apply_mutex_release,
    SpinAcquire: Engine._apply_spin_acquire,
    SpinRelease: Engine._apply_spin_release,
    BarrierWait: Engine._apply_barrier,
    Park: Engine._apply_park,
    Unpark: Engine._apply_unpark,
    Latency: Engine._apply_latency,
    YieldCPU: Engine._apply_yield,
    Now: Engine._apply_now,
}


def _resolve_handler(table: dict, effect: Effect, table_name: str):
    """Find (and cache) the handler for an unregistered effect subclass."""
    for base in type(effect).__mro__[1:]:
        handler = table.get(base)
        if handler is not None:
            table[type(effect)] = handler
            return handler
    raise SimulationError(
        f"unhandled effect type {type(effect).__name__} "
        f"(no {table_name} handler registered)"
    )
