"""Per-thread, per-category time accounting and run results.

The paper's profiling figures (Figures 4 and 5) report the *percentage of
total time* each algorithm phase consumes ("Counting" vs "Merge" for the
Independent design; "Hash Opns", "Structure Opns", "Min-Max Locks",
"Bucket Locks" and "Rest" for the Shared design).  The engine attributes
both busy cycles and waiting cycles of every effect to the effect's tag;
this module aggregates those accounts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional


@dataclasses.dataclass
class TagAccount:
    """Cycles spent under one category tag."""

    busy: int = 0   #: cycles actually consuming a core / cache line
    wait: int = 0   #: cycles spent queued for a core, line, lock or wakeup

    @property
    def total(self) -> int:
        """Busy plus wait cycles."""
        return self.busy + self.wait

    def add(self, busy: int = 0, wait: int = 0) -> None:
        """Accumulate cycles into this account."""
        self.busy += busy
        self.wait += wait


@dataclasses.dataclass
class ThreadStats:
    """Everything the engine recorded about one simulated thread."""

    name: str
    accounts: Dict[str, TagAccount] = dataclasses.field(default_factory=dict)
    finish_time: Optional[int] = None   #: simulated cycle of termination
    spin_retries: int = 0               #: failed spin-lock attempts
    block_events: int = 0               #: times descheduled on a mutex/barrier
    return_value: object = None         #: StopIteration value of the generator

    def account(self, tag: str) -> TagAccount:
        """Return (creating if needed) the account for ``tag``."""
        acct = self.accounts.get(tag)
        if acct is None:
            acct = TagAccount()
            self.accounts[tag] = acct
        return acct

    @property
    def busy_cycles(self) -> int:
        """Total busy cycles across all tags."""
        return sum(acct.busy for acct in self.accounts.values())

    @property
    def wait_cycles(self) -> int:
        """Total waiting cycles across all tags."""
        return sum(acct.wait for acct in self.accounts.values())

    @property
    def total_cycles(self) -> int:
        """Total attributed cycles (busy + wait) across all tags."""
        return self.busy_cycles + self.wait_cycles


@dataclasses.dataclass
class ExecutionResult:
    """Outcome of one :meth:`Engine.run` call."""

    makespan: int                       #: cycles from 0 to the last event
    threads: Dict[str, ThreadStats]
    events: int                         #: engine events processed
    clock_hz: float                     #: copied from the machine spec
    core_busy: list = dataclasses.field(default_factory=list)
    #: busy cycles per core (index = core id)

    @property
    def seconds(self) -> float:
        """Simulated wall-clock duration of the run."""
        return self.makespan / self.clock_hz

    def throughput(self, elements: int) -> float:
        """Elements processed per simulated second."""
        if self.makespan == 0:
            return float("inf") if elements else 0.0
        return elements / self.seconds

    def core_utilization(self) -> List[float]:
        """Busy fraction per core over the makespan (empty if untracked)."""
        if self.makespan == 0:
            return [0.0 for _ in self.core_busy]
        return [busy / self.makespan for busy in self.core_busy]

    def breakdown(
        self, thread_names: Optional[Iterable[str]] = None
    ) -> Dict[str, float]:
        """Fraction of total attributed time per tag, over selected threads.

        This is the quantity plotted on the y-axis of Figures 4 and 5.
        """
        selected = self._select(thread_names)
        totals: Dict[str, int] = {}
        for stats in selected:
            for tag, acct in stats.accounts.items():
                totals[tag] = totals.get(tag, 0) + acct.total
        grand = sum(totals.values())
        if grand == 0:
            return {tag: 0.0 for tag in totals}
        return {tag: cycles / grand for tag, cycles in totals.items()}

    def tag_cycles(
        self, thread_names: Optional[Iterable[str]] = None
    ) -> Dict[str, TagAccount]:
        """Aggregate busy/wait cycles per tag over selected threads."""
        selected = self._select(thread_names)
        merged: Dict[str, TagAccount] = {}
        for stats in selected:
            for tag, acct in stats.accounts.items():
                merged.setdefault(tag, TagAccount()).add(acct.busy, acct.wait)
        return merged

    def average_completion(
        self, thread_names: Optional[Iterable[str]] = None
    ) -> float:
        """Mean finish time (cycles) of the selected threads.

        The paper reports "the average time for completion of each thread"
        for the surface plots (Figures 6, 7 and 12); this is that metric.
        """
        finish_times = [
            stats.finish_time
            for stats in self._select(thread_names)
            if stats.finish_time is not None
        ]
        if not finish_times:
            return 0.0
        return sum(finish_times) / len(finish_times)

    def _select(
        self, thread_names: Optional[Iterable[str]]
    ) -> Iterable[ThreadStats]:
        if thread_names is None:
            return list(self.threads.values())
        return [self.threads[name] for name in thread_names]


def execution_metrics(
    execution: ExecutionResult, registry=None
) -> Dict[str, Dict]:
    """Record an :class:`ExecutionResult` as a metrics snapshot.

    This is the bridge that makes *simulated* runs emit the same
    observability schema as *real* (multiprocess) runs: makespan and
    duration as ``sim.*`` gauges, engine events and the per-tag
    busy/wait cycle accounts (the data behind the paper's Figures 4
    and 5) as counters, and per-core utilization as gauges.  Records
    into ``registry`` when given (so a driver can co-locate simulator
    and algorithm metrics in one snapshot), else into a fresh
    :class:`repro.obs.MetricsRegistry`; returns the snapshot either way.
    """
    from repro.obs.registry import MetricsRegistry

    registry = registry if registry is not None else MetricsRegistry()
    registry.gauge("sim.makespan_cycles").set(execution.makespan)
    registry.gauge("sim.seconds").set(execution.seconds)
    registry.counter("sim.events").inc(execution.events)
    for tag, acct in sorted(execution.tag_cycles().items()):
        registry.counter(f"sim.busy_cycles.{tag}").inc(acct.busy)
        registry.counter(f"sim.wait_cycles.{tag}").inc(acct.wait)
    for index, utilization in enumerate(execution.core_utilization()):
        registry.gauge(f"sim.core_utilization.{index}").set(utilization)
    return registry.snapshot()


def merge_breakdowns(
    breakdowns: Iterable[Mapping[str, float]]
) -> Dict[str, float]:
    """Average several breakdown mappings tag-by-tag (repeated runs)."""
    collected: Dict[str, list] = {}
    count = 0
    for one in breakdowns:
        count += 1
        for tag, fraction in one.items():
            collected.setdefault(tag, []).append(fraction)
    if count == 0:
        return {}
    return {
        tag: sum(values) / count for tag, values in collected.items()
    }
