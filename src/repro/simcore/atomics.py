"""Atomic cells and the cache-line contention model.

Hardware atomics are the foundation of the CoTS delegation protocol
(Algorithm 2 uses an atomic increment-and-fetch to "log" a request and a
CAS/swap pair to relinquish an element).  The simulator models each atomic
as an operation on an :class:`AtomicCell` that lives on a
:class:`CacheLine`:

* operations on the *same* line serialize (the line is a single resource),
* an operation issued from a core other than the line's current owner pays
  a coherence-transfer penalty.

This is what makes a heavily shared counter cheap-but-bounded: under a
zipfian stream the hot element's delegation counter becomes a serialized
hardware resource, which is precisely the effect that caps and shapes the
scalability curves in the paper's Figure 11.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.simcore.effects import AtomicOp

_line_ids = itertools.count()


class CacheLine:
    """A cache line: the unit of coherence traffic and serialization.

    The engine stores transient scheduling state here (``free_at`` — when
    the line's current operation completes, and ``owner_core`` — which core
    last touched it).
    """

    __slots__ = ("line_id", "free_at", "owner_core")

    def __init__(self) -> None:
        self.line_id: int = next(_line_ids)
        self.free_at: int = 0
        self.owner_core: Optional[int] = None

    def reset(self) -> None:
        """Clear scheduling state (used when an engine starts a fresh run)."""
        self.free_at = 0
        self.owner_core = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLine(id={self.line_id}, free_at={self.free_at}, "
            f"owner={self.owner_core})"
        )


class AtomicCell:
    """A machine word supporting atomic load/store/add/cas/swap.

    The *value* is mutated by the engine at the simulated completion time
    of each :class:`AtomicOp`, so concurrent accesses are linearized in
    simulated-time order.  Cells may share a :class:`CacheLine` (e.g. the
    entries of one block of the cache-conscious hash table) to model false
    or true sharing.

    The ``load``/``store``/... methods are effect *builders*; simulated
    threads use them as ``value = yield cell.add(1, tag="hash")``.
    """

    __slots__ = ("value", "line")

    def __init__(self, value: Any = 0, line: Optional[CacheLine] = None) -> None:
        self.value = value
        self.line = line if line is not None else CacheLine()

    # -- effect builders ----------------------------------------------------
    def load(self, tag: str = "rest") -> AtomicOp:
        """Atomically read the value."""
        return AtomicOp(self, "load", tag=tag)

    def store(self, value: Any, tag: str = "rest") -> AtomicOp:
        """Atomically write ``value``."""
        return AtomicOp(self, "store", operand=value, tag=tag)

    def add(self, amount: int, tag: str = "rest") -> AtomicOp:
        """Atomic increment-and-fetch: returns the *new* value."""
        return AtomicOp(self, "add", operand=amount, tag=tag)

    def cas(self, expected: Any, new: Any, tag: str = "rest") -> AtomicOp:
        """Atomic compare-and-swap: returns True iff the swap happened."""
        return AtomicOp(self, "cas", operand=new, expected=expected, tag=tag)

    def swap(self, new: Any, tag: str = "rest") -> AtomicOp:
        """Atomic exchange: returns the previous value."""
        return AtomicOp(self, "swap", operand=new, tag=tag)

    # -- non-simulated access (tests, post-quiescence inspection) -----------
    def peek(self) -> Any:
        """Read the value outside the simulation (no cost, no ordering)."""
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicCell(value={self.value!r}, line={self.line.line_id})"


def apply_atomic(cell: AtomicCell, op: str, operand: Any, expected: Any) -> Any:
    """Apply one atomic operation to ``cell`` and return its result.

    Called by the engine at the operation's simulated completion time.
    """
    if op == "load":
        return cell.value
    if op == "store":
        cell.value = operand
        return None
    if op == "add":
        cell.value += operand
        return cell.value
    if op == "cas":
        if cell.value == expected:
            cell.value = operand
            return True
        return False
    if op == "swap":
        old = cell.value
        cell.value = operand
        return old
    raise ValueError(f"unknown atomic op {op!r}")
