"""Discrete-event chip-multiprocessor simulator (the repro substrate).

CPython's GIL prevents real intra-operator thread parallelism, so the
paper's concurrency experiments run on this deterministic simulator: the
algorithms are written as generators yielding :mod:`effects
<repro.simcore.effects>`, and the :class:`~repro.simcore.engine.Engine`
resolves core scheduling, cache-line contention, lock queues and wakeups
in simulated time.  See DESIGN.md §2 and §5 for the substitution argument.
"""

from repro.simcore.atomics import AtomicCell, CacheLine
from repro.simcore.costs import CostModel
from repro.simcore.effects import (
    AtomicOp,
    BarrierWait,
    Compute,
    Effect,
    Latency,
    MutexAcquire,
    MutexRelease,
    Now,
    Park,
    SpinAcquire,
    SpinRelease,
    Unpark,
    YieldCPU,
)
from repro.simcore.trace import TraceEvent, TraceRecorder
from repro.simcore.engine import Engine, SimThread
from repro.simcore.machine import MachineSpec
from repro.simcore.stats import (
    ExecutionResult,
    TagAccount,
    ThreadStats,
    execution_metrics,
    merge_breakdowns,
)
from repro.simcore.sync import Barrier, Mutex, SpinLock

__all__ = [
    "AtomicCell",
    "AtomicOp",
    "Barrier",
    "BarrierWait",
    "CacheLine",
    "Compute",
    "CostModel",
    "Effect",
    "Engine",
    "ExecutionResult",
    "Latency",
    "MachineSpec",
    "Mutex",
    "MutexAcquire",
    "MutexRelease",
    "Now",
    "Park",
    "SimThread",
    "SpinAcquire",
    "SpinLock",
    "SpinRelease",
    "TagAccount",
    "ThreadStats",
    "TraceEvent",
    "TraceRecorder",
    "Unpark",
    "YieldCPU",
    "execution_metrics",
    "merge_breakdowns",
]
