"""``python -m repro top``: a live terminal dashboard for a server.

The dashboard is a thin *client* of the live telemetry plane: it
connects to a running server's NDJSON port, issues one ``metrics``
subscription (``{"op": "metrics", "period": ...}``) and renders each
pushed frame — windowed rates, latency quantiles, per-worker beacon
occupancy and the SLO alert table — as plain text.  All derivation
happens server-side in :mod:`repro.obs.live`; ``top`` only formats.

Three modes share one code path:

``--once``
    Fetch a single one-shot ``metrics`` answer, render it, exit — the
    scriptable form (CI smoke uses it to assert on alert state).
``--json``
    Print each payload as one raw JSON line instead of rendering
    (compose with ``--once`` for machine-readable probes).
``--frames N``
    Render N pushed frames then disconnect cleanly (0 = until ^C).

Alert transition events pushed between metrics frames (the frames with
``"event": "alert"``) are folded into a rolling "recent events" pane.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, Dict, List, Optional

#: metric -> short row label for the rates pane (rendered in this order)
RATE_ROWS = (
    ("serve.ingest.events", "ingest events/s"),
    ("serve.query.requests", "queries/s"),
    ("serve.subscriptions.pushes", "pushes/s"),
    ("serve.ingest.rejected", "rejected/s"),
    ("serve.batch.flush_failures", "flush failures/s"),
)

#: histogram -> short row label for the latency pane
LATENCY_ROWS = (
    ("serve.query.seconds", "query"),
    ("serve.batch.flush_seconds", "flush"),
    ("serve.snapshot.seconds", "snapshot"),
)

#: gauge -> short row label for the gauges pane
GAUGE_ROWS = (
    ("serve.connections.active", "connections"),
    ("serve.subscriptions.active", "subscriptions"),
    ("serve.queue.depth", "queue depth"),
    ("serve.snapshot.staleness", "staleness lag (s)"),
    ("serve.accuracy.bound_excess", "accuracy excess"),
)


def _fmt(value: Optional[float], digits: int = 1) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.{digits}f}"
    return f"{value:,}"


def _ms(seconds: Optional[float]) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:.2f}"


def worker_beacon_rows(beacons: Dict[str, Dict]) -> List[Dict[str, Any]]:
    """Fold ``mp.beacon.<i>.*`` series into one row per worker index."""
    rows: Dict[int, Dict[str, Any]] = {}
    for name, value in beacons.get("counters", {}).items():
        parts = name.split(".")
        if len(parts) == 4 and parts[:2] == ["mp", "beacon"]:
            try:
                index = int(parts[2])
            except ValueError:
                continue
            rows.setdefault(index, {"worker": index})[parts[3]] = value
    for name, value in beacons.get("gauges", {}).items():
        parts = name.split(".")
        if len(parts) == 4 and parts[:2] == ["mp", "beacon"]:
            try:
                index = int(parts[2])
            except ValueError:
                continue
            rows.setdefault(index, {"worker": index})[parts[3]] = value
    return [rows[index] for index in sorted(rows)]


def render_dashboard(
    payload: Dict[str, Any],
    events: Optional[List[Dict[str, Any]]] = None,
    width: int = 72,
) -> str:
    """One metrics payload -> one plain-text dashboard frame."""
    summary = payload.get("summary") or {}
    rates = summary.get("rates") or {}
    quantiles = summary.get("quantiles") or {}
    gauges = summary.get("gauges") or {}
    alerts = payload.get("alerts") or []
    firing = payload.get("firing") or []
    lines: List[str] = []
    rule = "-" * width
    header = (
        f"repro top — backend={payload.get('backend', '?')} "
        f"processed={_fmt(payload.get('processed'), 0)} "
        f"accepted={_fmt(payload.get('accepted'), 0)} "
        f"view_age={_fmt(payload.get('staleness'), 3)}s"
    )
    lines.append(header[:width])
    status = (
        f"window={_fmt(summary.get('window_seconds'), 1)}s "
        f"samples={summary.get('samples', 0)} "
        f"alerts={'FIRING: ' + ', '.join(firing) if firing else 'all quiet'}"
    )
    lines.append(status[:width])
    lines.append(rule)

    lines.append("rates")
    for metric, label in RATE_ROWS:
        lines.append(f"  {label:<22s} {_fmt(rates.get(metric, 0.0)):>12s}")
    lines.append("latency (ms)            p50        p90        p99     obs/s")
    for metric, label in LATENCY_ROWS:
        q = quantiles.get(metric) or {}
        lines.append(
            f"  {label:<18s} {_ms(q.get('p50')):>10s} "
            f"{_ms(q.get('p90')):>10s} {_ms(q.get('p99')):>10s} "
            f"{_fmt(q.get('rate', 0.0)):>9s}"
        )
    lines.append("gauges")
    for metric, label in GAUGE_ROWS:
        info = gauges.get(metric)
        last = info.get("last") if isinstance(info, dict) else None
        if last is None:
            continue
        lines.append(f"  {label:<22s} {_fmt(last, 3):>12s}")

    workers = worker_beacon_rows(payload.get("beacons") or {})
    if workers:
        lines.append("workers (beacons)    processed    batches    ring busy")
        for row in workers:
            lines.append(
                f"  worker {row['worker']:<10d} "
                f"{_fmt(row.get('processed', 0), 0):>11s} "
                f"{_fmt(row.get('batches', 0), 0):>10s} "
                f"{_fmt(row.get('ring_busy', 0.0), 0):>12s}"
            )

    if alerts:
        lines.append(rule)
        lines.append("alerts                 state      value   threshold")
        for state in alerts:
            flag = "FIRING" if state.get("firing") else "ok"
            lines.append(
                f"  {state.get('alert', '?'):<20s} {flag:<8s} "
                f"{_fmt(state.get('value'), 2):>10s} "
                f"{_fmt(state.get('threshold'), 2):>11s}"
            )
    if events:
        lines.append(rule)
        lines.append("recent alert events")
        for event in events[-5:]:
            lines.append(
                f"  [{event.get('state', '?'):>8s}] {event.get('alert', '?')} "
                f"value={_fmt(event.get('value'), 2)}"
            )
    return "\n".join(lines)


class TopError(Exception):
    """The server refused or the connection failed."""


async def _read_frame(reader: asyncio.StreamReader, timeout: float) -> Dict:
    line = await asyncio.wait_for(reader.readline(), timeout)
    if not line:
        raise TopError("server closed the connection")
    return json.loads(line)


async def run_top(
    host: str,
    port: int,
    period: float = 1.0,
    frames: int = 0,
    once: bool = False,
    as_json: bool = False,
    raw: bool = False,
    timeout: float = 10.0,
    out=None,
) -> int:
    """Attach to a server and stream the dashboard; returns exit code."""
    out = out if out is not None else sys.stdout
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as exc:
        print(f"top: cannot connect to {host}:{port}: {exc}",
              file=sys.stderr)
        return 2
    try:
        request: Dict[str, Any] = {"op": "metrics"}
        if raw:
            request["raw"] = True
        if not once:
            request["period"] = period
        writer.write((json.dumps(request) + "\n").encode("utf-8"))
        await writer.drain()
        first = await _read_frame(reader, timeout)
        if not first.get("ok"):
            raise TopError(
                f"server refused metrics: {first.get('error')}: "
                f"{first.get('message')}"
            )
        events: List[Dict[str, Any]] = []
        shown = 0

        def emit(payload: Dict[str, Any]) -> None:
            if as_json:
                print(json.dumps(payload, sort_keys=True), file=out,
                      flush=True)
            else:
                if not once and out is sys.stdout and out.isatty():
                    print("\x1b[2J\x1b[H", end="", file=out)
                print(render_dashboard(payload, events), file=out,
                      flush=True)

        emit(first)
        shown += 1
        if once:
            return 0
        while frames <= 0 or shown < frames:
            frame = await _read_frame(reader, timeout + period)
            if frame.get("event") == "alert":
                events.append(frame)
                continue
            if "summary" not in frame:
                continue            # unrelated push on a shared connection
            emit(frame)
            shown += 1
        sub = first.get("subscription")
        if sub is not None:
            writer.write(
                (json.dumps({"op": "unsubscribe", "subscription": sub})
                 + "\n").encode("utf-8")
            )
            await writer.drain()
        return 0
    except (TopError, asyncio.TimeoutError, json.JSONDecodeError,
            ConnectionResetError) as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
