"""The serve-tier load generator: ``python -m repro serve-bench``.

Boots a :class:`~repro.serve.server.StreamServer` in-process on an
ephemeral port, simulates **N thousand concurrent client connections**
feeding zipfian keys through real sockets, and writes a
``BENCH_serve.json`` in the same report shape as the other suites
(schema docs: docs/benchmarks.md).  Each simulated client connects,
holds its socket open while every other client connects (so the
concurrency number is genuinely simultaneous), streams its slice of
one seeded zipf stream as ``ingest`` frames — retrying on
``backpressure`` exactly like a production client — and interleaves
point and top-k queries whose latencies and reported staleness are
sampled client-side.

After the load phase a control connection issues ``flush`` (the read
barrier) and **audits the guarantee**: every answer is checked against
the exact ground-truth counts of the full stream — monitored estimates
must upper-bound truth within the reported ε·N ``error_bound``, and
unmonitored elements must have truth at or below the bound (the
Count-Sketch backend is two-sided, so its check is ``|est - truth| <=
bound``, mirroring the conformance suite).  ``guarantee_violations``
in the report must be zero; the CI serve-smoke job gates on it.
"""

from __future__ import annotations

import asyncio
import collections
import json
import os
import platform
import resource
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

import bisect

from repro.errors import ConfigurationError
from repro.obs.live import histogram_quantile
from repro.obs.registry import TIME_BUCKETS, Histogram, MetricsRegistry
from repro.serve.protocol import is_push
from repro.serve.server import ServeConfig, StreamServer
from repro.workloads.zipf import zipf_stream

#: pinned workload parameters per scale preset.  ``connections`` is the
#: simultaneously-open socket count the run must sustain; ``alpha`` is
#: mild so the audit exercises both monitored and unmonitored elements.
SERVE_SCALES: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "connections": 1000,
        "events_per_client": 30,
        "ingest_frame_events": 10,
        "queries_per_client": 2,
        "alphabet": 2_000,
        "alpha": 1.3,
        "capacity": 256,
        "batch_events": 4_096,
        "batch_interval": 0.02,
        "max_pending_batches": 64,
        "snapshot_interval": 0.1,
        "point_checks": 200,
        "top_k": 10,
        "seed": 7,
    },
    "default": {
        "connections": 2_000,
        "events_per_client": 100,
        "ingest_frame_events": 25,
        "queries_per_client": 4,
        "alphabet": 10_000,
        "alpha": 1.3,
        "capacity": 512,
        "batch_events": 8_192,
        "batch_interval": 0.02,
        "max_pending_batches": 64,
        "snapshot_interval": 0.1,
        "point_checks": 400,
        "top_k": 20,
        "seed": 7,
    },
}

#: schema shared with repro.bench reports
SCHEMA_VERSION = 1

#: cap on simultaneous connection *attempts* (the listen backlog is
#: finite; established sockets stay open so concurrency still peaks at
#: the full connection count)
_CONNECT_GATE = 200


def _peak_rss_kb() -> int:
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(usage + children)


def _raise_nofile_limit(wanted: int) -> None:
    """Best-effort soft-limit bump so N thousand sockets fit."""
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < wanted:
            resource.setrlimit(
                resource.RLIMIT_NOFILE, (min(wanted, hard), hard)
            )
    except (ValueError, OSError):
        pass


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def latency_crosscheck(
    samples: List[float], quantiles: Tuple[float, ...] = (0.50, 0.99)
) -> Dict[str, Any]:
    """Cross-check sampled percentiles against histogram quantiles.

    The same latency samples are derived two ways — exact order
    statistics (:func:`_percentile`) and the bucketed estimator every
    live consumer sees (:func:`repro.obs.live.histogram_quantile` over
    a :data:`TIME_BUCKETS` histogram).  Both land in the report, and
    the check fails when they disagree by more than one bucket: the
    histogram estimator interpolates inside a bucket, so anything
    further apart means the quantile math (not the bucketing) is wrong.
    """
    hist = Histogram(TIME_BUCKETS)
    for value in samples:
        hist.observe(value)
    result: Dict[str, Any] = {"ok": True}
    for q in quantiles:
        key = f"p{int(q * 100)}"
        sampled = _percentile(samples, q)
        derived = histogram_quantile(q, hist.bounds, hist.counts)
        result[f"sampled_{key}_s"] = sampled
        result[f"hist_{key}_s"] = derived
        if derived is None:
            result["ok"] = result["ok"] and not samples
            continue
        sampled_bucket = bisect.bisect_left(hist.bounds, sampled)
        derived_bucket = bisect.bisect_left(hist.bounds, derived)
        if abs(sampled_bucket - derived_bucket) > 1:
            result["ok"] = False
    return result


class _Client:
    """One simulated connection: lockstep NDJSON request/response."""

    def __init__(self, host: str, port: int, limit: int = 1 << 22) -> None:
        self._host = host
        self._port = port
        self._limit = limit
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self, attempts: int = 20) -> None:
        for attempt in range(attempts):
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self._host, self._port, limit=self._limit
                )
                return
            except OSError:
                if attempt == attempts - 1:
                    raise
                await asyncio.sleep(0.05 * (attempt + 1))

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._writer.write(
            json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        )
        await self._writer.drain()
        while True:
            line = await self._reader.readline()
            if not line:
                raise ConnectionResetError("server closed the connection")
            response = json.loads(line)
            if not is_push(response):
                return response

    async def ingest(self, events: List[Any]) -> Dict[str, Any]:
        """Send one ingest frame, retrying on backpressure like a
        production client (bounded exponential backoff)."""
        delay = 0.01
        while True:
            response = await self.request({"op": "ingest", "events": events})
            if response.get("ok"):
                return response
            if response.get("error") != "backpressure":
                raise ConfigurationError(
                    f"unexpected ingest error: {response}"
                )
            await asyncio.sleep(delay)
            delay = min(delay * 2, 0.2)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def _run_bench(
    params: Dict[str, Any], backend: str
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    connections = params["connections"]
    events_per_client = params["events_per_client"]
    frame_events = params["ingest_frame_events"]
    queries_per_client = params["queries_per_client"]
    _raise_nofile_limit(connections * 2 + 512)

    stream = zipf_stream(
        length=connections * events_per_client,
        alphabet=params["alphabet"],
        alpha=params["alpha"],
        seed=params["seed"],
    )
    truth = collections.Counter(stream)

    metrics = MetricsRegistry()
    config = ServeConfig(
        backend=backend,
        port=0,
        capacity=params["capacity"],
        batch_events=params["batch_events"],
        batch_interval=params["batch_interval"],
        max_pending_batches=params["max_pending_batches"],
        snapshot_interval=params["snapshot_interval"],
        seed=params["seed"],
        metrics_port=0,
    )
    latencies: List[float] = []
    staleness: List[float] = []
    connected = 0
    peak_connected = 0
    ingest_start: Optional[float] = None
    all_connected = asyncio.Event()
    connect_gate = asyncio.Semaphore(_CONNECT_GATE)

    async with StreamServer(config, metrics=metrics) as server:
        host, port = config.host, server.port

        async def one_client(index: int) -> None:
            nonlocal connected, peak_connected, ingest_start
            client = _Client(host, port)
            async with connect_gate:
                await client.connect()
            connected += 1
            peak_connected = max(peak_connected, connected)
            if connected == connections:
                all_connected.set()
            try:
                # hold the socket until *every* client is connected, so
                # the reported concurrency is genuinely simultaneous
                await all_connected.wait()
                # the first client through the barrier starts the load
                # clock: connection ramp-up must not deflate ingest_eps
                if ingest_start is None:
                    ingest_start = time.perf_counter()
                slice_ = stream[
                    index * events_per_client:(index + 1) * events_per_client
                ]
                for offset in range(0, len(slice_), frame_events):
                    await client.ingest(slice_[offset:offset + frame_events])
                for q in range(queries_per_client):
                    if q % 2 == 0:
                        payload = {
                            "op": "query", "kind": "point",
                            "element": slice_[q % len(slice_)],
                        }
                    else:
                        payload = {
                            "op": "query", "kind": "topk",
                            "k": params["top_k"],
                        }
                    start = time.perf_counter()
                    response = await client.request(payload)
                    latencies.append(time.perf_counter() - start)
                    if not response.get("ok"):
                        raise ConfigurationError(
                            f"query failed: {response}"
                        )
                    staleness.append(response["staleness"])
            finally:
                connected -= 1
                await client.close()

        # the live-telemetry probe runs *while the load is in flight*:
        # one metrics op on the NDJSON port and one Prometheus scrape,
        # both issued the moment every client is connected and streaming
        probe: Dict[str, bool] = {
            "metrics_op_ok": False, "prometheus_scrape_ok": False,
        }

        async def live_probe() -> None:
            await all_connected.wait()
            client = _Client(host, port)
            try:
                await client.connect()
                answer = await client.request({"op": "metrics"})
                probe["metrics_op_ok"] = bool(
                    answer.get("ok") and "summary" in answer
                )
            finally:
                await client.close()
            reader, writer = await asyncio.open_connection(
                host, server.metrics_http_port
            )
            try:
                writer.write(
                    f"GET /metrics HTTP/1.0\r\nHost: {host}\r\n\r\n".encode()
                )
                await writer.drain()
                text = (await reader.read()).decode("utf-8", "replace")
                probe["prometheus_scrape_ok"] = (
                    "repro_serve_ingest_events_total" in text
                )
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass

        connect_start = time.perf_counter()
        await asyncio.gather(
            live_probe(),
            *(one_client(index) for index in range(connections))
        )
        load_end = time.perf_counter()
        # ingest_start is set once every client passed the barrier; the
        # fallback only matters if gather somehow returned without it
        if ingest_start is None:
            ingest_start = connect_start
        connect_seconds = ingest_start - connect_start
        load_seconds = load_end - ingest_start

        # ---- guarantee audit (exact ground truth, post-flush) --------
        control = _Client(host, port)
        await control.connect()
        flush = await control.request({"op": "flush"})
        assert flush.get("ok"), flush
        error_bound = flush["error_bound"]
        processed = flush["processed"]
        two_sided = backend == "sketch-cs-vec"
        violations = 0

        def audit(estimate: int, true_count: int) -> int:
            if two_sided:
                return 0 if abs(estimate - true_count) <= error_bound else 1
            if estimate < true_count:
                return 1
            return 0 if estimate - true_count <= error_bound else 1

        if processed != len(stream):
            violations += 1

        top = await control.request(
            {"op": "query", "kind": "topk", "k": params["capacity"]}
        )
        for entry in top["results"]:
            violations += audit(entry["count"], truth[entry["element"]])

        # point-check the hottest elements plus a cold/absent sample
        ranked = [element for element, _ in truth.most_common()]
        sample = ranked[: params["point_checks"] // 2]
        sample += ranked[-(params["point_checks"] // 4):]
        sample += [params["alphabet"] + offset for offset in range(
            params["point_checks"] // 4)]
        for element in sample:
            answer = await control.request(
                {"op": "query", "kind": "point", "element": element}
            )
            true_count = truth.get(element, 0)
            if answer["monitored"]:
                violations += audit(answer["count"], true_count)
            elif true_count > error_bound:
                violations += 1     # unmonitored ⇒ truth must be <= ε·N

        stats = (await control.request({"op": "stats"}))["stats"]
        await control.close()
        snapshot = metrics.snapshot()

    counters = snapshot["counters"]
    crosscheck = latency_crosscheck(latencies)
    entry = {
        "name": f"serve-{backend}",
        "backend": backend,
        "connections": connections,
        "peak_concurrent": peak_connected,
        "ingest_events": counters.get("serve.ingest.events", 0),
        "connect_seconds": round(connect_seconds, 4),
        "load_seconds": round(load_seconds, 4),
        "ingest_eps": round(len(stream) / load_seconds, 1),
        "query_count": len(latencies),
        "query_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "query_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "hist_p50_ms": round((crosscheck["hist_p50_s"] or 0.0) * 1e3, 3),
        "hist_p99_ms": round((crosscheck["hist_p99_s"] or 0.0) * 1e3, 3),
        "latency_crosscheck_ok": crosscheck["ok"],
        "metrics_op_ok": probe["metrics_op_ok"],
        "prometheus_scrape_ok": probe["prometheus_scrape_ok"],
        "staleness_p50_s": round(_percentile(staleness, 0.50), 4),
        "staleness_max_s": round(max(staleness), 4) if staleness else 0.0,
        "staleness_bound_s": config.staleness_bound,
        "error_bound": error_bound,
        "processed": processed,
        "guarantee_violations": violations,
        "protocol_errors": counters.get("serve.protocol.errors", 0),
        "backpressure_rejections": counters.get("serve.ingest.rejected", 0),
        "peak_rss_kb": _peak_rss_kb(),
        "metrics": snapshot,
    }
    return entry, stats


def run_serve_bench(
    scale: str = "smoke", backend: str = "sequential"
) -> Dict[str, Any]:
    """Run the serve load bench and return the report dict."""
    if scale not in SERVE_SCALES:
        raise ConfigurationError(
            f"scale must be one of {sorted(SERVE_SCALES)}, got {scale!r}"
        )
    params = dict(SERVE_SCALES[scale])
    params["backend"] = backend
    entry, _stats = asyncio.run(_run_bench(params, backend))
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "serve",
        "scale": scale,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "params": params,
        "results": [entry],
        "host_cores": os.cpu_count(),
    }


def format_serve_report(report: Dict[str, Any]) -> str:
    """Human-readable one-line summary (mirrors ``repro.bench``)."""
    lines = [
        f"serve bench — scale={report['scale']} "
        f"python={report['python']}",
    ]
    for entry in report["results"]:
        lines.append(
            f"  {entry['name']:<24} conns={entry['peak_concurrent']} "
            f"eps={entry['ingest_eps']:.0f} "
            f"p50={entry['query_p50_ms']:.2f}ms "
            f"p99={entry['query_p99_ms']:.2f}ms "
            f"staleness_max={entry['staleness_max_s']:.3f}s "
            f"violations={entry['guarantee_violations']} "
            f"proto_errors={entry['protocol_errors']}"
        )
        lines.append(
            f"  {'':<24} hist_p50={entry['hist_p50_ms']:.2f}ms "
            f"hist_p99={entry['hist_p99_ms']:.2f}ms "
            f"crosscheck={'ok' if entry['latency_crosscheck_ok'] else 'FAIL'} "
            f"metrics_op={'ok' if entry['metrics_op_ok'] else 'FAIL'} "
            f"prometheus={'ok' if entry['prometheus_scrape_ok'] else 'FAIL'}"
        )
    return "\n".join(lines)
