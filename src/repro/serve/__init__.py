"""The serve tier: async TCP ingest + the live §3.2 query model.

``python -m repro serve`` boots a :class:`StreamServer`;
``python -m repro serve-bench`` runs the N-thousand-connection load
generator.  Protocol reference and operator guide: docs/serve.md.
"""

from repro.serve.bench import (
    SERVE_SCALES,
    format_serve_report,
    run_serve_bench,
)
from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    QUERY_KINDS,
    QuerySpec,
    WireProtocolError,
    decode_request,
    encode_frame,
    encode_request,
    error_payload,
    is_push,
)
from repro.serve.server import (
    SERVE_FAULTS,
    ServeConfig,
    StreamServer,
    run_server,
)
from repro.serve.top import render_dashboard, run_top

__all__ = [
    "ERROR_CODES",
    "OPS",
    "QUERY_KINDS",
    "QuerySpec",
    "SERVE_FAULTS",
    "SERVE_SCALES",
    "ServeConfig",
    "StreamServer",
    "WireProtocolError",
    "decode_request",
    "encode_frame",
    "encode_request",
    "error_payload",
    "format_serve_report",
    "is_push",
    "render_dashboard",
    "run_server",
    "run_serve_bench",
    "run_top",
]
