"""The asyncio serve tier: live ingest + the §3.2 query model on sockets.

One :class:`StreamServer` owns one backend from
:func:`repro.backend.create_backend` — any of the nine registered
engines — and splits the work across three concerns so the hot ingest
path never waits on a reader (the Gulisano-style snapshot-read design
the ISSUE motivates):

**Ingest plane.**  ``ingest`` frames append to a pending buffer; full
micro-batches of ``batch_events`` elements move onto a bounded
:class:`asyncio.Queue` (``max_pending_batches`` deep — the backpressure
budget) that a single flusher task drains into ``backend.ingest``
inside a one-thread executor, so the event loop never blocks on the
counting core and backend access stays serialized.  A ticker flushes
partial batches every ``batch_interval`` seconds so a trickle of
events still lands.

**Query plane.**  Queries are answered from an immutable
:class:`~repro.backend.base.Snapshot` refreshed every
``snapshot_interval`` seconds — never from live backend state — so a
million concurrent readers cost the ingest path nothing.  Every answer
reports its ``staleness`` (seconds since the view was built); the
worst case an acknowledged event can remain invisible is
``batch_interval + snapshot_interval`` plus one backend ingest, which
``stats`` reports as ``staleness_bound``.

**Backpressure.**  When admitting a frame would need more micro-batch
slots than the queue has free, the server answers an error with code
``backpressure`` and drops the events (the client retries); the budget
is structural — the queue's ``maxsize`` makes exceeding it impossible,
not merely unlikely.  A subscriber whose socket buffer exceeds
``max_buffer_bytes`` is disconnected instead of letting its unread
pushes grow server memory without bound.

Wire protocol: :mod:`repro.serve.protocol`; reference and operator
guide: docs/serve.md.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import itertools
import json
import sys
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.backend.base import Snapshot
from repro.backend.registry import BACKEND_NAMES, create_backend
from repro.errors import ConfigurationError
from repro.obs.live import RollingWindow, Watchdog, render_prometheus
from repro.obs.registry import (
    TIME_BUCKETS,
    MetricsRegistry,
    coerce,
    merge_snapshots,
)
from repro.obs.tracing import Tracer, coerce_tracer
from repro.serve.protocol import (
    FlushRequest,
    IngestRequest,
    IntervalRequest,
    MetricsRequest,
    PingRequest,
    QueryRequest,
    QuerySpec,
    StatsRequest,
    SubscribeRequest,
    UnsubscribeRequest,
    WireProtocolError,
    decode_request,
    encode_frame,
    error_payload,
)

#: serve-tier fault-injection hooks (testing/drills only)
SERVE_FAULTS = ("flush-failure",)


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`StreamServer` needs, validated up front."""

    host: str = "127.0.0.1"
    port: int = 0                       #: 0 = ephemeral (read it back)
    backend: str = "sequential"
    capacity: int = 256
    threads: int = 4                    #: simulated/native-thread engines
    workers: int = 2                    #: multiprocess engines
    epsilon: float = 0.001              #: sketch engines
    delta: float = 0.01
    seed: int = 0
    batch_events: int = 2048            #: micro-batch size (elements)
    batch_interval: float = 0.05        #: partial-batch flush period (s)
    max_pending_batches: int = 16       #: backpressure budget (batches)
    snapshot_interval: float = 0.2      #: query-view refresh period (s)
    max_frame_bytes: int = 65536        #: one NDJSON line's byte budget
    max_buffer_bytes: int = 1 << 20     #: slow-subscriber disconnect line
    metrics_port: Optional[int] = None  #: Prometheus text endpoint (None = off)
    watchdog_interval: float = 0.5      #: telemetry sample + SLO eval period (s)
    window_samples: int = 120           #: rolling-window ring size (samples)
    probe_keys: int = 128               #: shadow-truth accuracy probe keys (0 = off)
    fault: Optional[str] = None         #: testing-only serve fault injection

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"backend must be one of {list(BACKEND_NAMES)}, "
                f"got {self.backend!r}"
            )
        for field, minimum in (
            ("capacity", 1), ("batch_events", 1), ("max_pending_batches", 1),
            ("max_frame_bytes", 1024), ("max_buffer_bytes", 1024),
            ("window_samples", 2), ("probe_keys", 0),
        ):
            if getattr(self, field) < minimum:
                raise ConfigurationError(
                    f"{field} must be >= {minimum}, got {getattr(self, field)}"
                )
        for field in ("batch_interval", "snapshot_interval",
                      "watchdog_interval"):
            if not getattr(self, field) > 0:
                raise ConfigurationError(
                    f"{field} must be > 0, got {getattr(self, field)}"
                )
        if self.metrics_port is not None and not (
            0 <= self.metrics_port <= 65535
        ):
            raise ConfigurationError(
                f"metrics_port must be in [0, 65535] or None, "
                f"got {self.metrics_port}"
            )
        if self.fault is not None and self.fault not in SERVE_FAULTS:
            raise ConfigurationError(
                f"fault must be one of {SERVE_FAULTS} or None, "
                f"got {self.fault!r}"
            )

    @property
    def staleness_bound(self) -> float:
        """Worst-case seconds an acked event stays invisible to queries."""
        return self.batch_interval + self.snapshot_interval


@dataclasses.dataclass(frozen=True)
class _View:
    """One immutable query view: a snapshot plus its point-lookup index."""

    snapshot: Snapshot
    index: Dict[Any, Any]               #: element -> CounterEntry
    refreshed_at: float                 #: monotonic clock at build time

    def staleness(self) -> float:
        return time.monotonic() - self.refreshed_at


class _Subscription:
    """One registered continuous (period), interval (every) or metrics sub.

    ``spec`` is the inner query for query subscriptions and ``None``
    for metrics subscriptions (``raw`` then says whether each push
    carries the full cumulative snapshot).
    """

    __slots__ = ("sub_id", "spec", "period", "every", "writer",
                 "last_processed", "seq", "task", "raw")

    def __init__(self, sub_id, spec, writer, period=None, every=None,
                 raw=False):
        self.sub_id: str = sub_id
        self.spec: Optional[QuerySpec] = spec
        self.writer: asyncio.StreamWriter = writer
        self.period: Optional[float] = period
        self.every: Optional[int] = every
        self.last_processed = 0
        self.seq = 0
        self.task: Optional[asyncio.Task] = None
        self.raw: bool = raw


class StreamServer:
    """The serve tier: one backend, many sockets, snapshot reads.

    Lifecycle::

        server = StreamServer(ServeConfig(backend="sequential"))
        await server.start()          # backend up, listening, tasks running
        ...                           # server.port is the bound port
        await server.stop()           # drain, close backend, release all

    or ``async with StreamServer(cfg) as server: ...``.
    """

    def __init__(
        self,
        config: ServeConfig,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        self.metrics = coerce(metrics)
        self.tracer = coerce_tracer(tracer)
        self._backend = None
        self._server: Optional[asyncio.AbstractServer] = None
        # one thread: backend calls are serialized *and* off the loop
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-backend"
        )
        self._pending: List[Any] = []
        self._queue: asyncio.Queue = asyncio.Queue(
            maxsize=config.max_pending_batches
        )
        self._view: Optional[_View] = None
        self._processed = 0             #: acked into the backend
        self._accepted = 0              #: acked off the wire (>= processed)
        self._tasks: List[asyncio.Task] = []
        self._subs: Dict[str, _Subscription] = {}
        self._sub_ids = itertools.count(1)
        self._connections = 0
        self._closed = False
        m = self.metrics
        self._m_accepted = m.counter("serve.connections.accepted")
        self._m_active = m.gauge("serve.connections.active")
        self._m_dropped_slow = m.counter("serve.connections.dropped_slow")
        self._m_events = m.counter("serve.ingest.events")
        self._m_frames = m.counter("serve.ingest.frames")
        self._m_rejected = m.counter("serve.ingest.rejected")
        self._m_batch_fill = m.histogram("serve.batch.fill")
        self._m_flush_seconds = m.histogram(
            "serve.batch.flush_seconds", TIME_BUCKETS
        )
        self._m_flush_failures = m.counter("serve.batch.flush_failures")
        self._m_queue_depth = m.gauge("serve.queue.depth")
        self._m_refreshes = m.counter("serve.snapshot.refreshes")
        self._m_snap_seconds = m.histogram(
            "serve.snapshot.seconds", TIME_BUCKETS
        )
        self._m_staleness = m.histogram(
            "serve.snapshot.staleness_seconds", TIME_BUCKETS
        )
        self._m_queries = m.counter("serve.query.requests")
        self._m_query_seconds = m.histogram(
            "serve.query.seconds", TIME_BUCKETS
        )
        self._m_subs_active = m.gauge("serve.subscriptions.active")
        self._m_pushes = m.counter("serve.subscriptions.pushes")
        self._m_proto_errors = m.counter("serve.protocol.errors")
        self._m_staleness_now = m.gauge("serve.snapshot.staleness")
        self._m_probe_keys = m.gauge("serve.accuracy.tracked_keys")
        self._m_probe_over = m.gauge("serve.accuracy.max_overestimate")
        self._m_probe_bound = m.gauge("serve.accuracy.error_bound")
        self._m_probe_excess = m.gauge("serve.accuracy.bound_excess")
        self._m_alerts_firing = m.gauge("serve.alerts.firing")
        self._m_alert_transitions = m.counter("serve.alerts.transitions")
        # -- live telemetry plane ---------------------------------------
        self._live = RollingWindow(config.window_samples)
        # the deployment's real staleness bound drives the static rule:
        # fire when acked events stay invisible well past the promise
        # (the slack absorbs one watchdog tick + one slow backend ingest)
        self._watch = Watchdog(thresholds={
            "serve-staleness":
                3.0 * config.staleness_bound + config.watchdog_interval,
        })
        self._beacons: Dict[str, Dict] = {}
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._flushes = 0
        #: shadow truth: exact counts of the first ``probe_keys``
        #: distinct keys (admitted at first sight, so never undercounted)
        self._probe: Dict[Any, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the backend, bind the socket, start the service tasks."""
        loop = asyncio.get_running_loop()
        cfg = self.config
        self._backend = await loop.run_in_executor(
            self._executor,
            lambda: create_backend(
                cfg.backend,
                capacity=cfg.capacity,
                threads=cfg.threads,
                workers=cfg.workers,
                epsilon=cfg.epsilon,
                delta=cfg.delta,
                seed=cfg.seed,
                metrics=self.metrics if self.metrics.enabled else None,
            ),
        )
        await self._refresh_view()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=cfg.host,
            port=cfg.port,
            limit=cfg.max_frame_bytes,
        )
        if cfg.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http,
                host=cfg.host,
                port=cfg.metrics_port,
            )
        # baseline window sample at t=0: a failure burst that completes
        # before the first watchdog tick still shows up as an increase
        self._live.sample(self._full_snapshot(), time.monotonic())
        self._tasks = [
            asyncio.create_task(self._flusher(), name="serve-flusher"),
            asyncio.create_task(self._ticker(), name="serve-ticker"),
            asyncio.create_task(self._refresher(), name="serve-refresher"),
            asyncio.create_task(self._watchdog_loop(), name="serve-watchdog"),
        ]

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise ConfigurationError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_http_port(self) -> Optional[int]:
        """The bound Prometheus port (None when the endpoint is off)."""
        if self._metrics_server is None or not self._metrics_server.sockets:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Drain pending work, close every task, socket and the backend."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        for sub in list(self._subs.values()):
            self._drop_subscription(sub.sub_id)
        # drain what was already acked so close() honours the contract;
        # the batch leaves _pending *before* the await so a concurrent
        # ticker/flush can never re-queue or drop the same events
        while self._pending:
            batch = self._pending[: self.config.batch_events]
            del self._pending[: len(batch)]
            await self._queue.put(batch)
        await self._queue.join()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()
        backend = self._backend
        if backend is not None:
            await loop.run_in_executor(self._executor, backend.close)
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "StreamServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Service tasks
    # ------------------------------------------------------------------
    async def _flusher(self) -> None:
        """Drain micro-batches into the backend (the only ingest path)."""
        loop = asyncio.get_running_loop()
        backend = self._backend
        fault = self.config.fault
        while True:
            batch = await self._queue.get()
            try:
                self._flushes += 1
                if fault == "flush-failure" and self._flushes % 2 == 0:
                    # alert drill: every other micro-batch fails exactly
                    # like a raising backend.ingest would (the odd ones
                    # land, so the server keeps making progress)
                    raise RuntimeError("injected flush-failure fault")
                with self.tracer.span(
                    "serve", "flush", "serve", {"events": len(batch)}
                ):
                    start = time.perf_counter()
                    await loop.run_in_executor(
                        self._executor, backend.ingest, batch
                    )
                    self._m_flush_seconds.observe(time.perf_counter() - start)
                self._processed += len(batch)
            except asyncio.CancelledError:
                raise
            except Exception as exc:    # noqa: BLE001 - the flusher must live
                # one bad batch must not kill the only ingest path: the
                # queue would fill forever and flush/stop would hang on
                # join().  The batch's events are lost from the counts
                # (stats shows processed < accepted_events), metered here.
                self._m_flush_failures.inc()
                print(
                    f"serve: backend.ingest failed, dropping batch of "
                    f"{len(batch)} events: {type(exc).__name__}: {exc}",
                    file=sys.stderr, flush=True,
                )
            finally:
                self._queue.task_done()
                self._m_queue_depth.set(self._queue.qsize())

    async def _ticker(self) -> None:
        """Move partial batches onto the queue every ``batch_interval``."""
        while True:
            await asyncio.sleep(self.config.batch_interval)
            self._flush_pending(partial=True)

    async def _refresher(self) -> None:
        """Rebuild the query view every ``snapshot_interval``."""
        while True:
            await asyncio.sleep(self.config.snapshot_interval)
            view = self._view
            if view is not None and self._processed == view.snapshot.processed:
                continue            # nothing new: keep the current view
            await self._refresh_view()
            self._fire_interval_subscriptions()

    async def _refresh_view(self) -> None:
        loop = asyncio.get_running_loop()
        backend = self._backend
        with self.tracer.span("serve", "snapshot.refresh", "serve"):
            start = time.perf_counter()
            snapshot = await loop.run_in_executor(self._executor, backend.snapshot)
            self._m_snap_seconds.observe(time.perf_counter() - start)
        self._view = _View(
            snapshot=snapshot,
            index={entry.element: entry for entry in snapshot.entries},
            refreshed_at=time.monotonic(),
        )
        self._m_refreshes.inc()

    # ------------------------------------------------------------------
    # Live telemetry plane
    # ------------------------------------------------------------------
    async def _watchdog_loop(self) -> None:
        """Sample the registry, evaluate SLO rules, emit alert events."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.watchdog_interval)
            try:
                await self._watchdog_tick(loop)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - telemetry must not die
                print(
                    f"serve: watchdog tick failed: "
                    f"{type(exc).__name__}: {exc}",
                    file=sys.stderr, flush=True,
                )

    async def _watchdog_tick(self, loop: asyncio.AbstractEventLoop) -> None:
        view = self._view
        # staleness gauge: the view's age *while it is behind* — an idle
        # server's old-but-complete view is not stale in the SLO sense
        behind = (
            view is None
            or self._processed != view.snapshot.processed
            or bool(self._pending)
            or self._queue.qsize() > 0
        )
        lag = view.staleness() if (behind and view is not None) else 0.0
        self._m_staleness_now.set(round(lag, 6))
        self._update_probe_gauges(view)
        telemetry = getattr(self._backend, "telemetry", None)
        if telemetry is not None:
            try:
                self._beacons = await loop.run_in_executor(
                    self._executor, telemetry
                )
            except Exception:  # noqa: BLE001 - beacons are advisory
                pass
        self._live.sample(self._full_snapshot(), time.monotonic())
        events = self._watch.evaluate(self._live, time.time())
        if events:
            self._m_alert_transitions.inc(len(events))
            for event in events:
                print(json.dumps(event, sort_keys=True),
                      file=sys.stderr, flush=True)
            self._push_alert_events(events)
        self._m_alerts_firing.set(len(self._watch.firing()))

    def _update_probe_gauges(self, view: Optional[_View]) -> None:
        """Shadow-truth accuracy drift: live bound-excess over probe keys.

        Truth counts *accepted* events while the view reflects
        *processed* ones, so a lagging view can only shrink the measured
        over-estimate — the drift alert never false-fires, it can only
        fire one refresh late.  Count Sketch backends have no additive
        L1 contract (``error_bound`` is 0), so excess stays unmeasured
        there.
        """
        probe = self._probe
        if not probe or view is None:
            return
        self._m_probe_keys.set(len(probe))
        bound = view.snapshot.error_bound
        self._m_probe_bound.set(bound)
        index = view.index
        worst = None
        for element, truth in probe.items():
            entry = index.get(element)
            estimate = entry.count if entry is not None else bound
            over = estimate - truth
            if worst is None or over > worst:
                worst = over
        if worst is None:
            return
        self._m_probe_over.set(worst)
        if self.config.backend != "sketch-cs-vec" and bound > 0:
            self._m_probe_excess.set(max(0.0, float(worst - bound)))

    def _full_snapshot(self) -> Dict[str, Dict]:
        """Registry snapshot merged with the latest worker beacons."""
        snap = self.metrics.snapshot()
        if self._beacons:
            snap = merge_snapshots(snap, self._beacons)
        return snap

    def _metrics_payload(self, raw: bool) -> Dict[str, Any]:
        """The ``metrics`` answer: windowed summary, alerts, beacons."""
        view = self._view
        payload: Dict[str, Any] = {
            "summary": self._live.summary(),
            "alerts": self._watch.states(),
            "firing": self._watch.firing(),
            "beacons": self._beacons,
            "backend": self.config.backend,
            "processed": self._processed,
            "accepted": self._accepted,
            "staleness": (
                round(view.staleness(), 6) if view is not None else None
            ),
        }
        if raw:
            payload["snapshot"] = self._full_snapshot()
        return payload

    def _push_alert_events(self, events: List[Dict[str, Any]]) -> None:
        """Fan alert transitions out to metrics subscribers immediately."""
        for sub in list(self._subs.values()):
            if sub.spec is not None or sub.period is None:
                continue
            for event in events:
                if not self._push_frame(sub, dict(event)):
                    break

    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One Prometheus scrape: minimal HTTP/1.0, zero dependencies."""
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=5.0
            )
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else ""
            while True:     # drain headers up to the blank line
                header = await asyncio.wait_for(
                    reader.readline(), timeout=5.0
                )
                if header in (b"\r\n", b"\n", b""):
                    break
            if path.split("?")[0] == "/metrics":
                body = render_prometheus(self._full_snapshot()).encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
                status = "200 OK"
            elif path.split("?")[0] == "/healthz":
                body = b'{"ok":true}\n'
                content_type = "application/json"
                status = "200 OK"
            else:
                body = b"not found\n"
                content_type = "text/plain"
                status = "404 Not Found"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            writer.write(body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # Ingest plane
    # ------------------------------------------------------------------
    def _flush_pending(self, partial: bool) -> None:
        """Move pending events onto the queue; partial flushes allow a
        short tail batch (the ticker and ``flush`` use them)."""
        batch_events = self.config.batch_events
        while self._pending:
            if len(self._pending) < batch_events and not partial:
                break
            batch = self._pending[:batch_events]
            try:
                self._queue.put_nowait(batch)
            except asyncio.QueueFull:
                break               # budget full; admission keeps this rare
            del self._pending[: len(batch)]
            self._m_batch_fill.observe(len(batch))
        self._m_queue_depth.set(self._queue.qsize())

    def _admit(self, events: Tuple[Any, ...]) -> bool:
        """True when the pending-batch budget can absorb ``events``."""
        batch_events = self.config.batch_events
        total = len(self._pending) + len(events)
        needed = (total + batch_events - 1) // batch_events
        free = self.config.max_pending_batches - self._queue.qsize()
        return needed <= free

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        self._m_accepted.inc()
        self._m_active.set(self._connections)
        self.tracer.instant("serve", "accept", "serve")
        owned_subs: List[str] = []
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._m_proto_errors.inc()
                    writer.write(encode_frame(error_payload(
                        "frame-too-large",
                        f"frame exceeds {self.config.max_frame_bytes} bytes",
                    )))
                    break           # framing is lost: drop the connection
                if not line:
                    break
                if line.strip() == b"":
                    continue
                await self._handle_frame(line, writer, owned_subs)
                if writer.is_closing():
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            for sub_id in owned_subs:
                self._drop_subscription(sub_id)
            self._connections -= 1
            self._m_active.set(self._connections)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_frame(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        owned_subs: List[str],
    ) -> None:
        try:
            request = decode_request(line)
        except WireProtocolError as exc:
            self._m_proto_errors.inc()
            writer.write(encode_frame(error_payload(exc.code, str(exc))))
            await writer.drain()
            return
        try:
            payload = await self._dispatch(request, writer, owned_subs)
        except WireProtocolError as exc:
            # backpressure is flow control, not a protocol violation —
            # it is metered by serve.ingest.rejected instead
            if exc.code != "backpressure":
                self._m_proto_errors.inc()
            payload = error_payload(exc.code, str(exc), request.id)
        except Exception as exc:    # noqa: BLE001 - report, don't kill the loop
            self._m_proto_errors.inc()
            payload = error_payload(
                "server-error", f"{type(exc).__name__}: {exc}", request.id
            )
        writer.write(encode_frame(payload))
        await writer.drain()

    async def _dispatch(
        self,
        request,
        writer: asyncio.StreamWriter,
        owned_subs: List[str],
    ) -> Dict[str, Any]:
        if isinstance(request, IngestRequest):
            return self._do_ingest(request)
        if isinstance(request, QueryRequest):
            return self._do_query(request.spec, request.id)
        if isinstance(request, IntervalRequest):
            return self._register_interval(request, writer, owned_subs)
        if isinstance(request, SubscribeRequest):
            return self._register_continuous(request, writer, owned_subs)
        if isinstance(request, UnsubscribeRequest):
            return self._do_unsubscribe(request, owned_subs)
        if isinstance(request, FlushRequest):
            return await self._do_flush(request)
        if isinstance(request, StatsRequest):
            return self._do_stats(request)
        if isinstance(request, MetricsRequest):
            if request.period is None:
                return self._ok(
                    request.id, **self._metrics_payload(request.raw)
                )
            return self._register_metrics(request, writer, owned_subs)
        assert isinstance(request, PingRequest)
        return self._ok(request.id, pong=True)

    @staticmethod
    def _ok(request_id, **fields) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"ok": True}
        if request_id is not None:
            payload["id"] = request_id
        payload.update(fields)
        return payload

    # ------------------------------------------------------------------
    # Op implementations
    # ------------------------------------------------------------------
    def _do_ingest(self, request: IngestRequest) -> Dict[str, Any]:
        if self._closed:
            raise WireProtocolError("server-error", "server is stopping")
        if not self._admit(request.events):
            self._m_rejected.inc(len(request.events))
            raise WireProtocolError(
                "backpressure",
                f"pending-batch budget full "
                f"({self.config.max_pending_batches} batches of "
                f"{self.config.batch_events}); retry after a delay",
            )
        self._pending.extend(request.events)
        probe = self._probe
        room = self.config.probe_keys
        if room:
            # shadow truth for the drift alert: exact counts of the first
            # ``probe_keys`` distinct keys, admitted at first sight so
            # every occurrence from the stream's start is captured
            for event in request.events:
                truth = probe.get(event)
                if truth is not None:
                    probe[event] = truth + 1
                elif len(probe) < room:
                    probe[event] = 1
        self._accepted += len(request.events)
        self._m_events.inc(len(request.events))
        self._m_frames.inc()
        self._flush_pending(partial=False)
        return self._ok(request.id, accepted=len(request.events))

    def _answer(self, spec: QuerySpec) -> Dict[str, Any]:
        """Evaluate one point/set/topk spec against the current view."""
        view = self._view
        snapshot = view.snapshot
        answer: Dict[str, Any] = {
            "kind": spec.kind,
            "processed": snapshot.processed,
            "error_bound": snapshot.error_bound,
            "staleness": round(view.staleness(), 6),
        }
        if spec.kind == "point":
            answer.update(self._point(view, spec.element))
            if spec.phi is not None:
                # §3.2 Query 1: is the element's frequency above phi*N?
                answer["frequent"] = (
                    answer["count"] >= spec.phi * snapshot.processed
                )
            if spec.k is not None:
                # §3.2 Query 2: does it sit in the current top-k set?
                top = {entry.element for entry in snapshot.top_k(spec.k)}
                answer["in_top_k"] = spec.element in top
        elif spec.kind == "set":
            if spec.elements is not None:
                answer["results"] = [
                    dict(self._point(view, element), element=element)
                    for element in spec.elements
                ]
            else:
                threshold = spec.phi * snapshot.processed
                answer["results"] = [
                    self._entry_wire(entry)
                    for entry in snapshot.entries
                    if entry.count >= threshold
                ]
                answer["threshold"] = threshold
        else:  # topk
            answer["results"] = [
                self._entry_wire(entry) for entry in snapshot.top_k(spec.k)
            ]
        return answer

    def _point(self, view: _View, element) -> Dict[str, Any]:
        entry = view.index.get(element)
        if entry is not None:
            return {
                "count": entry.count, "error": entry.error, "monitored": True,
            }
        # unmonitored: the summary guarantees truth <= error_bound, so
        # the bound itself is the tightest safe upper-bounding estimate
        bound = view.snapshot.error_bound
        return {"count": bound, "error": bound, "monitored": False}

    @staticmethod
    def _entry_wire(entry) -> Dict[str, Any]:
        return {
            "element": entry.element, "count": entry.count,
            "error": entry.error,
        }

    def _do_query(self, spec: QuerySpec, request_id) -> Dict[str, Any]:
        self._m_queries.inc()
        with self.tracer.span("serve", "query", "serve", {"kind": spec.kind}):
            start = time.perf_counter()
            answer = self._answer(spec)
            self._m_query_seconds.observe(time.perf_counter() - start)
        self._m_staleness.observe(answer["staleness"])
        return self._ok(request_id, **answer)

    # -- subscriptions -------------------------------------------------
    def _register_interval(
        self, request: IntervalRequest, writer, owned_subs
    ) -> Dict[str, Any]:
        sub = _Subscription(
            sub_id=f"sub-{next(self._sub_ids)}",
            spec=request.inner,
            writer=writer,
            every=request.every,
        )
        sub.last_processed = self._view.snapshot.processed
        self._subs[sub.sub_id] = sub
        owned_subs.append(sub.sub_id)
        self._m_subs_active.set(len(self._subs))
        # first answer rides on the response; later ones arrive as pushes
        answer = self._do_query(request.inner, request.id)
        answer.update(subscription=sub.sub_id, every=request.every)
        return answer

    def _register_continuous(
        self, request: SubscribeRequest, writer, owned_subs
    ) -> Dict[str, Any]:
        sub = _Subscription(
            sub_id=f"sub-{next(self._sub_ids)}",
            spec=request.inner,
            writer=writer,
            period=request.period,
        )
        self._subs[sub.sub_id] = sub
        owned_subs.append(sub.sub_id)
        sub.task = asyncio.create_task(
            self._continuous_pusher(sub), name=sub.sub_id
        )
        self._m_subs_active.set(len(self._subs))
        return self._ok(
            request.id, subscription=sub.sub_id, period=request.period
        )

    def _do_unsubscribe(self, request, owned_subs) -> Dict[str, Any]:
        # only the registering connection may cancel a subscription; an
        # unowned (or dead) id gets the same answer so ids leak nothing
        if (
            request.subscription not in owned_subs
            or request.subscription not in self._subs
        ):
            raise WireProtocolError(
                "unknown-subscription",
                f"no active subscription {request.subscription!r} "
                "on this connection",
            )
        self._drop_subscription(request.subscription)
        owned_subs.remove(request.subscription)
        return self._ok(request.id, unsubscribed=request.subscription)

    def _drop_subscription(self, sub_id: str) -> None:
        sub = self._subs.pop(sub_id, None)
        if sub is not None and sub.task is not None:
            sub.task.cancel()
        self._m_subs_active.set(len(self._subs))

    def _push_frame(self, sub: _Subscription, payload: Dict[str, Any]) -> bool:
        """Send one push frame; returns False when the subscriber dropped."""
        writer = sub.writer
        if writer.is_closing():
            self._drop_subscription(sub.sub_id)
            return False
        transport = writer.transport
        if (
            transport is not None
            and transport.get_write_buffer_size() > self.config.max_buffer_bytes
        ):
            # a reader this far behind would grow server memory forever
            self._m_dropped_slow.inc()
            self._drop_subscription(sub.sub_id)
            writer.close()
            return False
        sub.seq += 1
        payload = dict(payload, push=sub.sub_id, seq=sub.seq)
        writer.write(encode_frame(payload))
        self._m_pushes.inc()
        return True

    def _push(self, sub: _Subscription) -> bool:
        """Send one query push; returns False when the subscriber dropped."""
        return self._push_frame(sub, self._answer(sub.spec))

    async def _continuous_pusher(self, sub: _Subscription) -> None:
        """§3.2 Query 4: the inner query pushed every ``period`` seconds."""
        while True:
            await asyncio.sleep(sub.period)
            if not self._push(sub):
                return

    def _register_metrics(
        self, request: MetricsRequest, writer, owned_subs
    ) -> Dict[str, Any]:
        """A periodic metrics push stream on the same subscription plumbing."""
        sub = _Subscription(
            sub_id=f"sub-{next(self._sub_ids)}",
            spec=None,
            writer=writer,
            period=request.period,
            raw=request.raw,
        )
        self._subs[sub.sub_id] = sub
        owned_subs.append(sub.sub_id)
        sub.task = asyncio.create_task(
            self._metrics_pusher(sub), name=sub.sub_id
        )
        self._m_subs_active.set(len(self._subs))
        # first payload rides on the response; later ones arrive as pushes
        answer = self._ok(request.id, **self._metrics_payload(request.raw))
        answer.update(subscription=sub.sub_id, period=request.period)
        return answer

    async def _metrics_pusher(self, sub: _Subscription) -> None:
        """The metrics stream: one summary frame every ``period`` seconds."""
        while True:
            await asyncio.sleep(sub.period)
            if not self._push_frame(sub, self._metrics_payload(sub.raw)):
                return

    def _fire_interval_subscriptions(self) -> None:
        """§3.2 Query 3 on refresh: push when ``every`` events elapsed."""
        processed = self._view.snapshot.processed
        for sub in list(self._subs.values()):
            if sub.every is None:
                continue
            if processed - sub.last_processed >= sub.every:
                sub.last_processed = processed
                self._push(sub)

    # -- flush & stats -------------------------------------------------
    async def _do_flush(self, request: FlushRequest) -> Dict[str, Any]:
        """A read barrier: everything acked before this is queryable after."""
        # claim the batch synchronously: if the await suspends on a full
        # queue, the ticker or a concurrent flush sees _pending without
        # these events, so nothing is queued twice or deleted unqueued
        while self._pending:
            batch = self._pending[: self.config.batch_events]
            del self._pending[: len(batch)]
            await self._queue.put(batch)    # waits for budget, never drops
            self._m_batch_fill.observe(len(batch))
        await self._queue.join()
        await self._refresh_view()
        self._fire_interval_subscriptions()
        return self._ok(
            request.id,
            processed=self._view.snapshot.processed,
            error_bound=self._view.snapshot.error_bound,
        )

    def _do_stats(self, request: StatsRequest) -> Dict[str, Any]:
        view = self._view
        cfg = self.config
        return self._ok(request.id, stats={
            "backend": cfg.backend,
            "connections": self._connections,
            "accepted_events": self._accepted,
            "processed": self._processed,
            "pending_events": len(self._pending),
            "queue_depth": self._queue.qsize(),
            "max_pending_batches": cfg.max_pending_batches,
            "batch_events": cfg.batch_events,
            "subscriptions": len(self._subs),
            "snapshot_processed": view.snapshot.processed,
            "error_bound": view.snapshot.error_bound,
            "staleness": round(view.staleness(), 6),
            "staleness_bound": cfg.staleness_bound,
            "alerts_firing": self._watch.firing(),
        })


async def run_server(
    config: ServeConfig,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    ready: Optional[asyncio.Event] = None,
) -> None:
    """Start a server and serve until cancelled (the CLI entry point)."""
    server = StreamServer(config, metrics=metrics, tracer=tracer)
    await server.start()
    if ready is not None:
        ready.set()
    print(
        f"serving backend={config.backend} on "
        f"{config.host}:{server.port} "
        f"(batch={config.batch_events} budget={config.max_pending_batches} "
        f"staleness_bound={config.staleness_bound:.2f}s)",
        flush=True,
    )
    if server.metrics_http_port is not None:
        print(
            f"metrics: http://{config.host}:{server.metrics_http_port}"
            f"/metrics (Prometheus text)",
            flush=True,
        )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
