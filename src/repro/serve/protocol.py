"""The serve tier's wire protocol: newline-delimited JSON frames.

One frame is one JSON object on one line, UTF-8, terminated by ``\\n``
(the full reference with worked examples is docs/serve.md).  Requests
carry an ``op`` discriminator; everything the server sends back is a
JSON object without one — a *response* (echoing the request's optional
``id``) or a *push* (carrying the ``push`` subscription id), so a
client can always tell the three frame species apart.

The request surface maps the paper's §3.2 query model onto sockets:

========== =======================================================
``op``     meaning
========== =======================================================
ingest     feed stream events (micro-batched into the backend)
query      one-shot ``point`` / ``set`` / ``topk`` query, plus the
           §3.2 *interval* query (``kind: "interval"``): an inner
           point/set/topk query re-answered every ``every`` ingested
           events, pushed to the requesting connection
subscribe  *continuous* query (§3.2 Query 4): the inner query pushed
           on a configurable time ``period`` — the densest schedule a
           snapshot-serving tier can honour
unsubscribe cancel an interval/continuous registration by id
flush      force pending micro-batches into the backend and refresh
           the snapshot (a read barrier: answers after the response
           reflect everything ingested before the flush)
stats      server counters, staleness, config echo
metrics    live telemetry: the rolling-window summary (rates, gauge
           trends, histogram quantiles), alert states and worker
           beacons — one-shot, or a periodic push subscription with
           ``period`` (seconds); ``raw: true`` adds the full
           cumulative registry snapshot
ping       liveness probe
========== =======================================================

Decoding is strict: every malformed frame raises
:class:`WireProtocolError` with a machine-readable ``code`` that the
server echoes back verbatim, so a client can distinguish its own bug
(``bad-request``) from transient refusal (``backpressure``).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError

#: every request discriminator, in documentation order
OPS = (
    "ingest", "query", "subscribe", "unsubscribe", "flush", "stats",
    "metrics", "ping",
)

#: one-shot query kinds ("interval" additionally registers a push)
QUERY_KINDS = ("point", "set", "topk", "interval")

#: query kinds an interval/continuous registration may wrap
INNER_KINDS = ("point", "set", "topk")

#: error codes the server emits (docs/serve.md lists the semantics)
ERROR_CODES = (
    "bad-json",          # the line is not valid JSON
    "bad-frame",         # valid JSON but not an object
    "unknown-op",        # object without a registered "op"
    "bad-request",       # a field failed validation
    "frame-too-large",   # line exceeded the frame budget; connection drops
    "backpressure",      # pending-batch budget full; retry after a delay
    "unknown-subscription",
    "server-error",
)


class WireProtocolError(ReproError):
    """A frame violated the serve wire protocol.

    ``code`` is one of :data:`ERROR_CODES`; the server copies it into
    the error response so clients can branch without string-matching
    the human-readable message.
    """

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        self.code = code
        super().__init__(message)


#: JSON scalars accepted as stream elements (bool is an int in Python,
#: and JSON true/false round-trip confusingly — rejected explicitly)
def _is_element(value: Any) -> bool:
    return isinstance(value, (str, int)) and not isinstance(value, bool)


def _bad(message: str) -> WireProtocolError:
    return WireProtocolError("bad-request", message)


# ----------------------------------------------------------------------
# Request types
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class QuerySpec:
    """One point / set / topk query, shared by every querying op.

    ``point`` needs ``element`` (optional ``phi``/``k`` additionally
    answer the §3.2 membership forms); ``set`` needs either an explicit
    ``elements`` list (batch point estimates) or ``phi`` (the frequent
    set above ``phi * N``); ``topk`` needs ``k``.
    """

    kind: str
    element: Optional[Union[str, int]] = None
    elements: Optional[Tuple[Union[str, int], ...]] = None
    k: Optional[int] = None
    phi: Optional[float] = None

    def to_wire(self) -> Dict[str, Any]:
        wire: Dict[str, Any] = {"kind": self.kind}
        if self.element is not None:
            wire["element"] = self.element
        if self.elements is not None:
            wire["elements"] = list(self.elements)
        if self.k is not None:
            wire["k"] = self.k
        if self.phi is not None:
            wire["phi"] = self.phi
        return wire


@dataclasses.dataclass(frozen=True)
class IngestRequest:
    events: Tuple[Union[str, int], ...]
    id: Optional[Union[str, int]] = None


@dataclasses.dataclass(frozen=True)
class QueryRequest:
    spec: QuerySpec
    id: Optional[Union[str, int]] = None


@dataclasses.dataclass(frozen=True)
class IntervalRequest:
    """§3.2 Query 3: ``inner`` re-answered every ``every`` ingested events."""

    inner: QuerySpec
    every: int
    id: Optional[Union[str, int]] = None


@dataclasses.dataclass(frozen=True)
class SubscribeRequest:
    """§3.2 Query 4: ``inner`` pushed every ``period`` seconds."""

    inner: QuerySpec
    period: float
    id: Optional[Union[str, int]] = None


@dataclasses.dataclass(frozen=True)
class UnsubscribeRequest:
    subscription: str
    id: Optional[Union[str, int]] = None


@dataclasses.dataclass(frozen=True)
class FlushRequest:
    id: Optional[Union[str, int]] = None


@dataclasses.dataclass(frozen=True)
class StatsRequest:
    id: Optional[Union[str, int]] = None


@dataclasses.dataclass(frozen=True)
class MetricsRequest:
    """Live telemetry: one-shot, or a push subscription with ``period``.

    ``raw`` additionally includes the full cumulative registry snapshot
    in every answer (the windowed summary is always present).
    """

    period: Optional[float] = None
    raw: bool = False
    id: Optional[Union[str, int]] = None


@dataclasses.dataclass(frozen=True)
class PingRequest:
    id: Optional[Union[str, int]] = None


Request = Union[
    IngestRequest, QueryRequest, IntervalRequest, SubscribeRequest,
    UnsubscribeRequest, FlushRequest, StatsRequest, MetricsRequest,
    PingRequest,
]


# ----------------------------------------------------------------------
# Decoding (server side)
# ----------------------------------------------------------------------
def _decode_spec(obj: Dict[str, Any], kinds: Tuple[str, ...]) -> QuerySpec:
    kind = obj.get("kind")
    if kind not in kinds:
        raise _bad(f"query kind must be one of {list(kinds)}, got {kind!r}")
    element = obj.get("element")
    elements = obj.get("elements")
    k = obj.get("k")
    phi = obj.get("phi")
    if k is not None:
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise _bad(f"k must be an integer >= 1, got {k!r}")
    if phi is not None:
        if isinstance(phi, bool) or not isinstance(phi, (int, float)):
            raise _bad(f"phi must be a number in (0, 1), got {phi!r}")
        if not 0 < phi < 1:
            raise _bad(f"phi must be in (0, 1), got {phi!r}")
    if kind == "point":
        if not _is_element(element):
            raise _bad("point query needs an 'element' (string or integer)")
    elif kind == "set":
        if elements is None and phi is None:
            raise _bad("set query needs 'elements' (a list) or 'phi'")
        if elements is not None:
            if not isinstance(elements, list) or not elements:
                raise _bad("'elements' must be a non-empty list")
            for entry in elements:
                if not _is_element(entry):
                    raise _bad(
                        f"set element {entry!r} is not a string or integer"
                    )
    elif kind == "topk":
        if k is None:
            raise _bad("topk query needs 'k'")
    return QuerySpec(
        kind=kind,
        element=element if kind == "point" else None,
        elements=tuple(elements) if kind == "set" and elements else None,
        k=k,
        phi=phi,
    )


def _decode_id(obj: Dict[str, Any]) -> Optional[Union[str, int]]:
    request_id = obj.get("id")
    if request_id is not None and not _is_element(request_id):
        raise _bad(f"id must be a string or integer, got {request_id!r}")
    return request_id


def decode_request(raw: Union[str, bytes]) -> Request:
    """Parse one frame into a typed request (the server's entry point).

    Raises :class:`WireProtocolError` — ``bad-json`` / ``bad-frame`` /
    ``unknown-op`` / ``bad-request`` — on anything malformed.
    """
    if isinstance(raw, bytes):
        try:
            raw = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireProtocolError("bad-json", f"frame is not UTF-8: {exc}")
    try:
        obj = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise WireProtocolError("bad-json", f"frame is not JSON: {exc}")
    if not isinstance(obj, dict):
        raise WireProtocolError(
            "bad-frame", f"frame must be a JSON object, got {type(obj).__name__}"
        )
    op = obj.get("op")
    if op not in OPS:
        raise WireProtocolError(
            "unknown-op", f"op must be one of {list(OPS)}, got {op!r}"
        )
    request_id = _decode_id(obj)

    if op == "ingest":
        events = obj.get("events")
        if events is None and "event" in obj:
            events = [obj["event"]]
        if not isinstance(events, list) or not events:
            raise _bad("ingest needs 'events' (a non-empty list) or 'event'")
        for event in events:
            if not _is_element(event):
                raise _bad(f"event {event!r} is not a string or integer")
        return IngestRequest(events=tuple(events), id=request_id)

    if op == "query":
        spec = _decode_spec(obj, QUERY_KINDS)
        if spec.kind == "interval":
            inner = obj.get("inner")
            if not isinstance(inner, dict):
                raise _bad(
                    "interval query needs 'inner' (a point/set/topk object)"
                )
            every = obj.get("every")
            if not isinstance(every, int) or isinstance(every, bool) or every < 1:
                raise _bad(
                    f"interval query needs 'every' (an integer >= 1 events), "
                    f"got {every!r}"
                )
            return IntervalRequest(
                inner=_decode_spec(inner, INNER_KINDS),
                every=every,
                id=request_id,
            )
        return QueryRequest(spec=spec, id=request_id)

    if op == "subscribe":
        inner = obj.get("inner")
        if not isinstance(inner, dict):
            raise _bad("subscribe needs 'inner' (a point/set/topk object)")
        period = obj.get("period")
        if isinstance(period, bool) or not isinstance(period, (int, float)):
            raise _bad(f"subscribe needs 'period' (seconds > 0), got {period!r}")
        if not period > 0:
            raise _bad(f"period must be > 0, got {period!r}")
        return SubscribeRequest(
            inner=_decode_spec(inner, INNER_KINDS),
            period=float(period),
            id=request_id,
        )

    if op == "unsubscribe":
        subscription = obj.get("subscription")
        if not isinstance(subscription, str) or not subscription:
            raise _bad("unsubscribe needs 'subscription' (the id string)")
        return UnsubscribeRequest(subscription=subscription, id=request_id)

    if op == "flush":
        return FlushRequest(id=request_id)
    if op == "stats":
        return StatsRequest(id=request_id)

    if op == "metrics":
        period = obj.get("period")
        if period is not None:
            if isinstance(period, bool) or not isinstance(
                period, (int, float)
            ):
                raise _bad(
                    f"metrics 'period' must be seconds > 0, got {period!r}"
                )
            if not period > 0:
                raise _bad(f"period must be > 0, got {period!r}")
            period = float(period)
        raw = obj.get("raw", False)
        if not isinstance(raw, bool):
            raise _bad(f"metrics 'raw' must be a boolean, got {raw!r}")
        return MetricsRequest(period=period, raw=raw, id=request_id)

    return PingRequest(id=request_id)


# ----------------------------------------------------------------------
# Encoding (both sides)
# ----------------------------------------------------------------------
def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + the newline terminator."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def request_wire(request: Request) -> Dict[str, Any]:
    """The JSON object form of a typed request (client side)."""
    wire: Dict[str, Any]
    if isinstance(request, IngestRequest):
        wire = {"op": "ingest", "events": list(request.events)}
    elif isinstance(request, QueryRequest):
        wire = {"op": "query", **request.spec.to_wire()}
    elif isinstance(request, IntervalRequest):
        wire = {
            "op": "query", "kind": "interval",
            "inner": request.inner.to_wire(), "every": request.every,
        }
    elif isinstance(request, SubscribeRequest):
        wire = {
            "op": "subscribe",
            "inner": request.inner.to_wire(), "period": request.period,
        }
    elif isinstance(request, UnsubscribeRequest):
        wire = {"op": "unsubscribe", "subscription": request.subscription}
    elif isinstance(request, FlushRequest):
        wire = {"op": "flush"}
    elif isinstance(request, StatsRequest):
        wire = {"op": "stats"}
    elif isinstance(request, MetricsRequest):
        wire = {"op": "metrics"}
        if request.period is not None:
            wire["period"] = request.period
        if request.raw:
            wire["raw"] = True
    elif isinstance(request, PingRequest):
        wire = {"op": "ping"}
    else:  # pragma: no cover - the union above is exhaustive
        raise TypeError(f"not a request: {request!r}")
    if request.id is not None:
        wire["id"] = request.id
    return wire


def encode_request(request: Request) -> bytes:
    """A typed request as one wire frame (client side)."""
    return encode_frame(request_wire(request))


def error_payload(
    code: str,
    message: str,
    request_id: Optional[Union[str, int]] = None,
) -> Dict[str, Any]:
    """The error-response object for one failed request."""
    payload: Dict[str, Any] = {"ok": False, "error": code, "message": message}
    if request_id is not None:
        payload["id"] = request_id
    return payload


def is_push(payload: Dict[str, Any]) -> bool:
    """True when a received frame is a subscription push, not a response."""
    return "push" in payload
