"""Sample-and-Hold (Estan & Varghese, SIGCOMM 2002).

A counter-based technique with *probabilistic admission*: every packet
of an already-monitored flow is counted exactly ("hold"), while a new
flow enters the monitored set with probability ``sample_rate`` per
occurrence.  Estimates therefore undercount by a geometrically
distributed prefix (expected ``1/sample_rate - 1``) and then track
exactly.

Included for two reasons: it rounds out the §2 counter-based family from
the networking side, and — because a monitored element's count is
**monotonically increasing** with no decrements — it satisfies the CoTS
framework's §5.3 adaptation requirement, which
:mod:`repro.cots.adapters` exploits.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from repro.core.counters import CounterEntry, Element
from repro.errors import ConfigurationError


class SampleAndHold:
    """Probabilistic-admission, exact-hold frequency counting."""

    def __init__(
        self,
        sample_rate: float,
        max_entries: int = 0,
        seed: Optional[int] = None,
    ) -> None:
        if not 0 < sample_rate <= 1:
            raise ConfigurationError(
                f"sample_rate must be in (0, 1], got {sample_rate}"
            )
        if max_entries < 0:
            raise ConfigurationError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        self.sample_rate = sample_rate
        #: 0 = unbounded; otherwise new admissions stop at this size
        #: (the paper sizes memory so overflow "should not happen")
        self.max_entries = max_entries
        self._rng = random.Random(seed)
        self._counts: Dict[Element, int] = {}
        self._processed = 0
        self.admissions = 0
        self.rejected_full = 0

    @staticmethod
    def for_threshold(
        threshold_fraction: float,
        oversampling: int = 20,
        seed: Optional[int] = None,
    ) -> "SampleAndHold":
        """Size for catching flows above ``threshold_fraction`` of the
        stream with high probability (the paper's oversampling rule:
        sample_rate = oversampling / (threshold * N) per element — here
        expressed per unit of stream mass)."""
        if not 0 < threshold_fraction < 1:
            raise ConfigurationError(
                "threshold_fraction must be in (0, 1), got "
                f"{threshold_fraction}"
            )
        rate = min(1.0, oversampling * threshold_fraction)
        return SampleAndHold(sample_rate=rate, seed=seed)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def process(self, element: Element) -> None:
        """Consume one stream element."""
        counts = self._counts
        if element in counts:
            counts[element] += 1          # hold: exact from admission on
        elif self._rng.random() < self.sample_rate:
            if self.max_entries and len(counts) >= self.max_entries:
                self.rejected_full += 1
            else:
                counts[element] = 1       # sample: admitted
                self.admissions += 1
        self._processed += 1

    def process_many(self, elements: Iterable[Element]) -> None:
        """Consume every element of an iterable."""
        for element in elements:
            self.process(element)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def processed(self) -> int:
        """Number of stream elements consumed."""
        return self._processed

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, element: Element) -> bool:
        return element in self._counts

    def estimate(self, element: Element) -> int:
        """Estimated frequency (undercounts; never overcounts)."""
        return self._counts.get(element, 0)

    def entries(self) -> List[CounterEntry]:
        """Monitored elements by descending count; ``error`` carries the
        expected admission undercount ``1/rate - 1``."""
        expected_miss = round(1.0 / self.sample_rate) - 1
        ordered = sorted(
            self._counts.items(), key=lambda item: (-item[1], repr(item[0]))
        )
        return [
            CounterEntry(element, count, expected_miss)
            for element, count in ordered
        ]

    def frequent(self, phi: float) -> List[CounterEntry]:
        """Monitored elements whose corrected estimate exceeds ``phi*N``."""
        if not 0 < phi < 1:
            raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self._processed
        return [
            entry
            for entry in self.entries()
            if entry.count + entry.error > threshold
        ]

    def top_k(self, k: int) -> List[CounterEntry]:
        """The ``k`` monitored elements with the highest counts."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return self.entries()[:k]
