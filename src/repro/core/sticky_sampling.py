"""Sticky Sampling (Manku & Motwani, VLDB 2002).

A probabilistic counter-based technique: elements are *sampled into* the
monitored set with a rate that halves as the stream grows, and monitored
elements are counted exactly from the moment they are sampled.  With
support ``s``, error ``eps`` and failure probability ``delta`` it keeps an
expected ``(2/eps) * log(1/(s*delta))`` entries.

Included to round out the counter-based family the paper surveys; it is
the only randomized member, so its tests fix the RNG seed.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional

from repro.core.counters import CounterEntry, Element
from repro.errors import ConfigurationError


class StickySampling:
    """Probabilistic frequency counting with decaying sampling rate."""

    def __init__(
        self,
        support: float,
        epsilon: float,
        delta: float = 0.01,
        seed: Optional[int] = None,
    ) -> None:
        if not 0 < epsilon < support < 1:
            raise ConfigurationError(
                f"need 0 < epsilon < support < 1, got "
                f"epsilon={epsilon}, support={support}"
            )
        if not 0 < delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        self.support = support
        self.epsilon = epsilon
        self.delta = delta
        #: t controls window sizes: the first window is 2t, then 2t, 4t, ...
        self.t = math.ceil((1.0 / epsilon) * math.log(1.0 / (support * delta)))
        self._rng = random.Random(seed)
        self._counts: Dict[Element, int] = {}
        self._processed = 0
        self._rate = 1  # currently sampling 1-in-_rate
        self._window_end = 2 * self.t

    def process(self, element: Element) -> None:
        """Consume one stream element."""
        if self._processed == self._window_end:
            self._advance_window()
        counts = self._counts
        if element in counts:
            counts[element] += 1
        elif self._rng.randrange(self._rate) == 0:
            counts[element] = 1
        self._processed += 1

    def process_many(self, elements: Iterable[Element]) -> None:
        """Consume every element of an iterable."""
        for element in elements:
            self.process(element)

    def _advance_window(self) -> None:
        """Double the sampling period and re-toss monitored entries.

        For each monitored element we repeatedly flip a fair coin and
        diminish its count per tail, dropping entries that reach zero —
        exactly the adjustment Manku & Motwani prescribe so the state
        looks as if it had been sampled at the new (halved) rate all along.
        """
        self._rate *= 2
        self._window_end += self.t * self._rate
        for element in list(self._counts):
            count = self._counts[element]
            while count > 0 and self._rng.random() < 0.5:
                count -= 1
            if count == 0:
                del self._counts[element]
            else:
                self._counts[element] = count

    @property
    def processed(self) -> int:
        """Number of stream elements consumed."""
        return self._processed

    @property
    def sampling_rate(self) -> int:
        """Current 1-in-``rate`` sampling period."""
        return self._rate

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, element: Element) -> bool:
        return element in self._counts

    def estimate(self, element: Element) -> int:
        """Estimated frequency (undercounts; never overcounts)."""
        return self._counts.get(element, 0)

    def entries(self) -> List[CounterEntry]:
        """Monitored elements sorted by descending estimated count."""
        ordered = sorted(
            self._counts.items(), key=lambda item: (-item[1], repr(item[0]))
        )
        return [CounterEntry(element, count) for element, count in ordered]

    def frequent(self, phi: Optional[float] = None) -> List[CounterEntry]:
        """Elements with estimate >= ``(s - eps) * N`` (the paper's query)."""
        support = self.support if phi is None else phi
        threshold = (support - self.epsilon) * self._processed
        return [entry for entry in self.entries() if entry.count >= threshold]

    def top_k(self, k: int) -> List[CounterEntry]:
        """The ``k`` monitored elements with the highest estimates."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return self.entries()[:k]
