"""Counter records and the frequency-counter protocol.

Every frequency-counting algorithm in this package — exact or approximate,
sequential or parallel — exposes the same small query surface so that the
query layer (:mod:`repro.core.queries`) and the accuracy analysis
(:mod:`repro.analysis.accuracy`) can treat them uniformly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Iterable, List, Protocol, Tuple, runtime_checkable

Element = Hashable


@dataclasses.dataclass
class CounterEntry:
    """One monitored element with its estimated count.

    ``count`` is the estimated frequency; ``error`` is the maximum
    over-estimation, i.e. the true frequency lies in
    ``[count - error, count]`` (Space Saving's guarantee).
    """

    element: Element
    count: int
    error: int = 0

    @property
    def guaranteed(self) -> int:
        """Lower bound on the true frequency (``count - error``)."""
        return self.count - self.error


@runtime_checkable
class FrequencyCounter(Protocol):
    """Protocol satisfied by every counting algorithm in this package."""

    def process(self, element: Element) -> None:
        """Consume one stream element."""

    def estimate(self, element: Element) -> int:
        """Estimated frequency of ``element`` (0 if not monitored)."""

    def entries(self) -> List[CounterEntry]:
        """All monitored elements, sorted by descending count."""

    @property
    def processed(self) -> int:
        """Number of stream elements consumed so far."""


class ExactCounter:
    """Exact dictionary-based frequency counter (the ground truth).

    Memory is O(|alphabet|), which is exactly what streaming algorithms
    avoid — this class exists to validate their error bounds and to answer
    queries exactly in tests and accuracy studies.
    """

    def __init__(self) -> None:
        self._counts: Dict[Element, int] = {}
        self._processed = 0

    def process(self, element: Element) -> None:
        """Count one occurrence of ``element``."""
        self._counts[element] = self._counts.get(element, 0) + 1
        self._processed += 1

    def process_many(self, elements: Iterable[Element]) -> None:
        """Count every element of an iterable."""
        for element in elements:
            self.process(element)

    def estimate(self, element: Element) -> int:
        """True frequency of ``element`` so far."""
        return self._counts.get(element, 0)

    def entries(self) -> List[CounterEntry]:
        """All elements sorted by descending frequency (ties by element repr)."""
        ordered = sorted(
            self._counts.items(), key=lambda item: (-item[1], repr(item[0]))
        )
        return [CounterEntry(element, count) for element, count in ordered]

    @property
    def processed(self) -> int:
        """Number of elements consumed."""
        return self._processed

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, element: Element) -> bool:
        return element in self._counts

    def counts(self) -> Dict[Element, int]:
        """A copy of the underlying count dictionary."""
        return dict(self._counts)

    def top_k(self, k: int) -> List[Tuple[Element, int]]:
        """The ``k`` most frequent elements as (element, count) pairs."""
        return [
            (entry.element, entry.count) for entry in self.entries()[:k]
        ]

    def frequent(self, threshold: float) -> List[Tuple[Element, int]]:
        """Elements whose count is strictly above ``threshold``."""
        return [
            (entry.element, entry.count)
            for entry in self.entries()
            if entry.count > threshold
        ]
