"""ASCII rendering of Stream Summary structures (the paper's Figure 2).

Turns a :class:`~repro.core.stream_summary.StreamSummary` or a
:class:`~repro.cots.summary.ConcurrentStreamSummary` into the bucket
diagram of Figure 2 / Figure 10 — handy in doctests, debugging sessions
and the examples::

    [freq 1]: e1          [freq 2]: e2, e3
"""

from __future__ import annotations

from typing import List

from repro.core.stream_summary import StreamSummary


def render_summary(summary: StreamSummary, max_elements: int = 6) -> str:
    """One line per bucket, ascending frequency, elements abbreviated."""
    lines: List[str] = []
    for bucket in summary.buckets():
        elements = [repr(node.element) for node in bucket.nodes()]
        shown = elements[:max_elements]
        if len(elements) > max_elements:
            shown.append(f"... +{len(elements) - max_elements}")
        lines.append(f"[freq {bucket.freq}]: " + ", ".join(shown))
    if not lines:
        return "(empty summary)"
    return "\n".join(lines)


def render_concurrent_summary(summary, max_elements: int = 6) -> str:
    """Figure 10 view: buckets with their queue depths and owner flags."""
    lines: List[str] = []
    for bucket in summary.buckets():
        elements = [repr(node.element) for node in bucket.members]
        shown = elements[:max_elements]
        if len(elements) > max_elements:
            shown.append(f"... +{len(elements) - max_elements}")
        owner = "held" if bucket.owner.peek() else "free"
        lines.append(
            f"[freq {bucket.freq} | queue {len(bucket.queue)} | {owner}]: "
            + ", ".join(shown)
        )
    if not lines:
        return "(empty summary)"
    return "\n".join(lines)
