"""The stream query model of Section 3.2.

Four query shapes are supported:

* **Point queries** (Query 1) — ``IsElementFrequent(e)`` /
  ``IsElementInTopK(e)``;
* **Set queries** (Query 2) — all frequent elements / the top-k set;
* **Interval / discrete queries** (Query 3) — a point or set query posed
  every ``T`` updates;
* **Continuous queries** (Query 4) — interval queries with ``T = 1``.
  As the paper argues, under parallel processing "every update" loses its
  meaning, so continuous queries are treated as the densest interval
  schedule.

Queries are answered against any object satisfying the
:class:`~repro.core.counters.FrequencyCounter` protocol.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.counters import Element, FrequencyCounter
from repro.errors import QueryError


@dataclasses.dataclass(frozen=True)
class PointFrequentQuery:
    """Query 1(a): ``IsElementFrequent(element)`` at support ``phi``."""

    element: Element
    phi: float

    def __post_init__(self) -> None:
        if not 0 < self.phi < 1:
            raise QueryError(f"phi must be in (0, 1), got {self.phi}")


@dataclasses.dataclass(frozen=True)
class PointTopKQuery:
    """Query 1(b): ``IsElementInTopK(element)``."""

    element: Element
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")


@dataclasses.dataclass(frozen=True)
class FrequentSetQuery:
    """Query 2(a): all elements with frequency above ``phi * N``."""

    phi: float

    def __post_init__(self) -> None:
        if not 0 < self.phi < 1:
            raise QueryError(f"phi must be in (0, 1), got {self.phi}")


@dataclasses.dataclass(frozen=True)
class TopKSetQuery:
    """Query 2(b): the ``k`` most frequent elements."""

    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")


Query = Union[PointFrequentQuery, PointTopKQuery, FrequentSetQuery, TopKSetQuery]


def answer(query: Query, counter: FrequencyCounter) -> Any:
    """Answer one query against any frequency counter.

    Point queries return bool; set queries return a list of
    :class:`CounterEntry`.
    """
    if isinstance(query, PointFrequentQuery):
        threshold = query.phi * counter.processed
        return counter.estimate(query.element) > threshold
    if isinstance(query, PointTopKQuery):
        estimate = counter.estimate(query.element)
        if estimate == 0:
            return False
        entries = counter.entries()[: query.k]
        if len(entries) < query.k:
            return estimate > 0
        return estimate >= entries[-1].count
    if isinstance(query, FrequentSetQuery):
        threshold = query.phi * counter.processed
        return [e for e in counter.entries() if e.count > threshold]
    if isinstance(query, TopKSetQuery):
        return counter.entries()[: query.k]
    raise QueryError(f"unsupported query type {type(query).__name__}")


@dataclasses.dataclass(frozen=True)
class IntervalSchedule:
    """Query 3: pose ``queries`` every ``every_updates`` processed elements.

    ``every_updates = 1`` yields the continuous query of Query 4.
    """

    queries: Tuple[Query, ...]
    every_updates: int

    def __post_init__(self) -> None:
        if self.every_updates < 1:
            raise QueryError(
                f"every_updates must be >= 1, got {self.every_updates}"
            )
        if not self.queries:
            raise QueryError("schedule needs at least one query")

    @staticmethod
    def continuous(queries: Iterable[Query]) -> "IntervalSchedule":
        """Query 4 expressed as the densest interval schedule."""
        return IntervalSchedule(tuple(queries), every_updates=1)


@dataclasses.dataclass
class ScheduledAnswer:
    """One answered query instance within a driven stream."""

    position: int      #: number of elements processed when answered
    query: Query
    result: Any


def drive(
    stream: Iterable[Element],
    counter: FrequencyCounter,
    schedule: Optional[IntervalSchedule] = None,
) -> Iterator[ScheduledAnswer]:
    """Feed ``stream`` into ``counter``, yielding answers per the schedule.

    This is the sequential reference driver; the parallel schemes have
    their own drivers that additionally charge simulated time for query
    processing (merges, lock acquisition or lock-free traversal).
    """
    position = 0
    for element in stream:
        counter.process(element)
        position += 1
        if schedule is not None and position % schedule.every_updates == 0:
            for query in schedule.queries:
                yield ScheduledAnswer(position, query, answer(query, counter))


def answer_all(
    stream: Iterable[Element],
    counter: FrequencyCounter,
    schedule: Optional[IntervalSchedule] = None,
) -> List[ScheduledAnswer]:
    """Like :func:`drive` but eagerly collects every answer."""
    return list(drive(stream, counter, schedule))
