"""Sliding-window frequency counting on top of Space Saving.

The paper's operators answer queries over the *whole* stream.  Real
deployments (the paper's own click-stream motivation) usually ask about
the *recent* stream — "top-25 ads in the last hour".  This module adds
the standard jumping-window construction: the window of ``window_size``
elements is covered by ``panes`` fixed-size sub-summaries; the oldest
pane is dropped wholesale as the window advances, and queries merge the
live panes (Space Saving summaries are mergeable, see
:mod:`repro.core.merge`).

The result is an ε-approximate frequency counter over a window that is
accurate to within one pane of the requested size — the usual
jumping-window trade-off.
"""

from __future__ import annotations

import collections
from typing import Deque, List, Optional

from repro.core.counters import CounterEntry, Element
from repro.core.merge import merge_space_saving
from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError


class WindowedSpaceSaving:
    """Frequency counting over a jumping window of recent elements."""

    def __init__(
        self,
        window_size: int,
        capacity: int,
        panes: int = 8,
    ) -> None:
        if window_size < 1:
            raise ConfigurationError(
                f"window_size must be >= 1, got {window_size}"
            )
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if panes < 1 or panes > window_size:
            raise ConfigurationError(
                f"panes must be in [1, window_size], got {panes}"
            )
        self.window_size = window_size
        self.capacity = capacity
        self.panes = panes
        # Round *up* so `panes` full panes always cover >= window_size;
        # flooring here used to leave the queryable window short of the
        # requested size (e.g. window 10 / 8 panes covered at most 8).
        self.pane_size = -(-window_size // panes)
        self._panes: Deque[SpaceSaving] = collections.deque()
        self._current: Optional[SpaceSaving] = None
        self._current_fill = 0
        self._processed = 0
        self._merged_cache: Optional[SpaceSaving] = None

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def process(self, element: Element) -> None:
        """Consume one element, expiring panes that leave the window."""
        if self._current is None or self._current_fill >= self.pane_size:
            self._rotate()
        self._current.process(element)
        self._current_fill += 1
        self._processed += 1
        self._merged_cache = None

    def process_many(self, elements) -> None:
        """Consume an iterable through the panes' batched fast lanes.

        Elements are forwarded to each pane in slices that never cross a
        pane boundary, so rotation points are identical to per-element
        processing while each pane benefits from
        :meth:`SpaceSaving.process_many`'s bulk amortization.
        """
        buffered = list(elements)
        index = 0
        length = len(buffered)
        while index < length:
            if self._current is None or self._current_fill >= self.pane_size:
                self._rotate()
            take = min(length - index, self.pane_size - self._current_fill)
            self._current.process_many(buffered[index : index + take])
            self._current_fill += take
            self._processed += take
            index += take
        if length:
            self._merged_cache = None

    def _rotate(self) -> None:
        """Seal the current pane and drop panes outside the window.

        Retention keeps the fewest *sealed* panes whose combined size
        still covers ``window_size`` (plus the filling pane), so the
        queryable window is always at least the requested size and at
        most roughly one pane more.
        """
        self._current = SpaceSaving(capacity=self.capacity)
        self._panes.append(self._current)
        self._current_fill = 0
        # drop the oldest sealed pane only while the remaining sealed
        # panes still cover the whole window
        while (len(self._panes) - 2) * self.pane_size >= self.window_size:
            self._panes.popleft()

    # ------------------------------------------------------------------
    # Queries (over the live window)
    # ------------------------------------------------------------------
    @property
    def processed(self) -> int:
        """Elements consumed since construction (not just in-window)."""
        return self._processed

    @property
    def window_count(self) -> int:
        """Elements currently represented inside the window panes."""
        return sum(pane.processed for pane in self._panes)

    def _merged(self) -> SpaceSaving:
        if self._merged_cache is None:
            if not self._panes:
                self._merged_cache = SpaceSaving(capacity=self.capacity)
            else:
                self._merged_cache = merge_space_saving(
                    list(self._panes), capacity=self.capacity
                )
        return self._merged_cache

    def estimate(self, element: Element) -> int:
        """Estimated in-window frequency of ``element``."""
        return self._merged().estimate(element)

    def entries(self) -> List[CounterEntry]:
        """In-window elements sorted by descending estimate."""
        return self._merged().entries()

    def top_k(self, k: int) -> List[CounterEntry]:
        """The k most frequent elements of the current window."""
        return self._merged().top_k(k)

    def frequent(self, phi: float) -> List[CounterEntry]:
        """In-window elements above ``phi *`` (window count)."""
        if not 0 < phi < 1:
            raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * max(1, self.window_count)
        return [entry for entry in self.entries() if entry.count > threshold]

    def __len__(self) -> int:
        return len(self._merged())
