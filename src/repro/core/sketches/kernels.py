"""Vectorized NumPy kernels shared by the sketch hot paths.

The scalar sketches hash one element at a time with the 2-universal
``h(x) = ((a * x + b) mod p) mod width`` over the Mersenne prime
``p = 2^61 - 1``.  The batched lanes (``process_weighted``) need the
same function over a whole ``int64`` code array at once — but
``a * x`` is a ~122-bit product, far beyond ``uint64``, so a naive
numpy expression silently wraps.  :func:`row_hashes` computes the exact
residue with schoolbook 32-bit limb splitting plus Mersenne folding
(``2^61 ≡ 1 (mod p)`` turns every overflow shift into a cheap rotate),
so the vectorized lane lands in *precisely* the same cells as the
scalar path — pinned by the differential tests in
``tests/core/test_sketch_vectorized.py``.

:func:`collision_free_groups` supports the conservative-update lane:
conservative Count-Min is order-dependent when two batch elements share
a cell, so the batch is split into maximal prefixes in which no row
maps two elements to one cell.  Within such a group the two-phase
gather/scatter update is *exactly* the sequential result, and applying
groups in order preserves the scalar semantics bit-for-bit.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

#: the Mersenne prime 2^61 - 1 used by every sketch hash
MERSENNE_PRIME = (1 << 61) - 1

_P = np.uint64(MERSENNE_PRIME)
_MASK32 = np.uint64(0xFFFFFFFF)
_MASK29 = np.uint64((1 << 29) - 1)
_U61 = np.uint64(61)
_U32 = np.uint64(32)
_U29 = np.uint64(29)
_U8 = np.uint64(8)


def _mod_p(values: np.ndarray) -> np.ndarray:
    """Exact ``values mod p`` for any ``uint64`` input (vectorized).

    Two Mersenne folds bring any 64-bit value under ``2^61 + 7``; the
    final conditional subtraction lands in ``[0, p)``.
    """
    values = (values >> _U61) + (values & _P)
    values = (values >> _U61) + (values & _P)
    return np.where(values >= _P, values - _P, values)


def row_hashes(
    codes: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    width: int,
) -> np.ndarray:
    """``((a_r * x + b_r) mod p) mod width`` for every row r and code x.

    ``codes`` is any integer array (masked to 61 bits exactly like the
    scalar path's ``code & (2^61 - 1)``; two's-complement masking keeps
    negative codes consistent with Python's ``&``).  ``a``/``b`` are the
    per-row ``uint64`` hash parameters.  Returns a ``(depth, n)``
    ``intp`` array of cell indices.

    The 122-bit product is split into 32-bit limbs::

        a*x = a_hi*x_hi*2^64 + (a_hi*x_lo + a_lo*x_hi)*2^32 + a_lo*x_lo

    and each term is reduced with ``2^61 ≡ 1``: the ``2^64`` term
    becomes ``* 8``, the ``2^32`` term a 29/32-bit rotate.  Every
    intermediate stays below ``2^64``, so ``uint64`` arithmetic is exact.
    """
    x = codes.astype(np.uint64) & _P
    x_hi = x >> _U32
    x_lo = x & _MASK32
    a = a.astype(np.uint64).reshape(-1, 1)
    b = b.astype(np.uint64).reshape(-1, 1)
    a_hi = a >> _U32
    a_lo = a & _MASK32
    # high limb: a_hi*x_hi < 2^58, and 2^64 ≡ 8 (mod p) => * 8 < 2^61
    high = (a_hi * x_hi) * _U8
    # middle limbs: sum < 2^62, reduce then rotate by 32 bits
    mid = _mod_p(a_hi * x_lo + a_lo * x_hi)
    mid = ((mid & _MASK29) << _U32) + (mid >> _U29)
    # low limb: a_lo*x_lo < 2^64 exactly fits uint64
    low = _mod_p(a_lo * x_lo)
    total = _mod_p(high + mid + low + b)
    return (total % np.uint64(width)).astype(np.intp)


def sign_from_bits(bits: np.ndarray) -> np.ndarray:
    """Map hash parity ``{0, 1}`` to Count Sketch signs ``{-1, +1}``.

    Matches the scalar convention ``1 if h(x) else -1``: parity 1 is
    ``+1``, parity 0 is ``-1``.
    """
    return (bits.astype(np.int64) << 1) - 1


def collision_free_groups(
    cells: np.ndarray,
) -> Iterator[Tuple[int, int]]:
    """Split a batch into order-preserving groups with no shared cells.

    ``cells`` is the ``(depth, n)`` cell-index matrix of one batch.
    Yields ``(start, stop)`` prefixes such that within each group no two
    batch positions map to the same cell of the same row — the exact
    condition under which a gather/min/scatter conservative update is
    indistinguishable from the sequential per-element loop.  Progress is
    guaranteed: a single element can never collide with itself, so every
    group is non-empty.
    """
    n = cells.shape[1]
    start = 0
    while start < n:
        stop = n
        for row in cells:
            segment = row[start:stop]
            if len(segment) < 2:
                break
            order = np.argsort(segment, kind="stable")
            ranked = segment[order]
            duplicate = ranked[1:] == ranked[:-1]
            if duplicate.any():
                # the *later* original position of each colliding pair is
                # where sequential semantics first diverge; cut before
                # the earliest such position
                later = np.maximum(order[1:][duplicate], order[:-1][duplicate])
                stop = min(stop, start + int(later.min()))
        yield start, stop
        start = stop
