"""Sketch-based frequency estimators (the paper's related work, §2).

Sketch techniques represent the whole stream in sub-linear space but pay
a per-element cost of several hash evaluations and give weaker per-element
bounds than the counter-based family — the trade-off Section 2 describes.
They are included as accuracy/throughput baselines.
"""

from repro.core.sketches.count_min import CountMinSketch
from repro.core.sketches.count_sketch import CountSketch

__all__ = ["CountMinSketch", "CountSketch"]
