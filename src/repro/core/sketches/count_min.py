"""Count-Min sketch (Cormode & Muthukrishnan, 2005).

``depth = ceil(ln(1/delta))`` rows of ``width = ceil(e/eps)`` counters;
each row hashes the element with an independent universal hash and
increments one cell.  The estimate is the row-wise minimum and
overcounts by at most ``eps * N`` with probability ``1 - delta``.

An optional *conservative update* mode only raises the cells that equal
the current minimum, tightening estimates at the same memory.
A small candidate heap turns the sketch into a frequent-elements /
top-k answerer so it satisfies the package-wide counter protocol.

Two perf-relevant design points (PR 8):

* The table is a NumPy ``(depth, width)`` ``int64`` array and elements
  are hashed via their :class:`~repro.core.coding.StreamCodec` *codes*,
  never via builtin ``hash()`` — str/bytes hashing is salted by
  ``PYTHONHASHSEED``, so the old tables were not reproducible across
  processes.  Codes are stable (pure function of key arrival order).
* :meth:`CountMinSketch.process_weighted` is the vectorized lane: one
  :func:`~repro.core.sketches.kernels.row_hashes` pass computes every
  row's cells for a whole pre-aggregated ``(codes, weights)`` chunk and
  lands them with ``np.add.at`` (plain mode, commutative hence exactly
  the scalar result) or collision-free grouped scatter-max
  (conservative mode, bit-exact vs the sequential loop by
  construction).  The scalar :meth:`update` path is kept untouched as
  the differential reference.

The mergeable-summary algebra (:meth:`merge` / :meth:`serialize` /
:meth:`widen`) makes the sketch a first-class citizen of the
``repro.backend`` protocol: same-shape tables add cell-wise, error
bounds widen monotonically, and serialization round-trips bit-exactly.
"""

from __future__ import annotations

import collections
import math
import random
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.core.coding import SENTINEL_CODE, StreamCodec
from repro.core.counters import CounterEntry, Element
from repro.core.sketches.kernels import (
    MERSENNE_PRIME,
    collision_free_groups,
    row_hashes,
)
from repro.errors import ConfigurationError

_MERSENNE_PRIME = MERSENNE_PRIME
_MASK61 = (1 << 61) - 1


class _UniversalHash:
    """A 2-universal hash ``h(x) = ((a*x + b) mod p) mod width``.

    Hashes an ``int64`` *code* (see :class:`~repro.core.coding.
    StreamCodec`), never a Python object — builtin ``hash()`` of
    str/bytes depends on ``PYTHONHASHSEED`` and made sketch tables
    unreproducible across processes.
    """

    __slots__ = ("a", "b", "width")

    def __init__(self, rng: random.Random, width: int) -> None:
        self.a = rng.randrange(1, _MERSENNE_PRIME)
        self.b = rng.randrange(0, _MERSENNE_PRIME)
        self.width = width

    def __call__(self, code: int) -> int:
        x = code & _MASK61
        return ((self.a * x + self.b) % _MERSENNE_PRIME) % self.width


class CountMinSketch:
    """Count-Min sketch with an optional top-candidate tracker."""

    def __init__(
        self,
        epsilon: float = 0.001,
        delta: float = 0.01,
        conservative: bool = False,
        track_candidates: int = 0,
        seed: Optional[int] = None,
    ) -> None:
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0 < delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        if track_candidates < 0:
            raise ConfigurationError(
                f"track_candidates must be >= 0, got {track_candidates}"
            )
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed
        self.width = math.ceil(math.e / epsilon)
        self.depth = max(1, math.ceil(math.log(1.0 / delta)))
        self.conservative = conservative
        rng = random.Random(seed)
        self._hashes = [_UniversalHash(rng, self.width) for _ in range(self.depth)]
        # vectorized copies of the per-row hash parameters
        self._va = np.array([h.a for h in self._hashes], dtype=np.uint64)
        self._vb = np.array([h.b for h in self._hashes], dtype=np.uint64)
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)
        self._processed = 0
        self._slack = 0
        self._track = track_candidates
        self._candidates: Dict[Element, int] = {}
        self.codec = StreamCodec()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def process(self, element: Element) -> None:
        """Consume one stream element."""
        self.update(element, 1)

    def update(self, element: Element, count: int) -> None:
        """Add ``count`` occurrences of ``element`` (scalar reference path)."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        code = self.codec.encode_one(element)
        self.update_code(code, count)
        if self._track:
            self._note_candidate(element)

    def update_code(self, code: int, count: int) -> None:
        """Scalar update addressed by codec code (no candidate tracking)."""
        table = self._table
        cells = [h(code) for h in self._hashes]
        if self.conservative:
            target = min(
                int(table[row, cell]) for row, cell in enumerate(cells)
            ) + count
            for row, cell in enumerate(cells):
                if table[row, cell] < target:
                    table[row, cell] = target
        else:
            for row, cell in enumerate(cells):
                table[row, cell] += count
        self._processed += count

    def process_many(self, elements: Iterable[Element]) -> None:
        """Consume a whole iterable, one ``update`` per *distinct* element.

        Pre-aggregation (PR 1's fast lane, here via one ``Counter``
        pass) is equivalent to consuming the stream with equal elements
        grouped together: for a single element, ``update(e, k)`` equals
        ``k`` consecutive ``update(e, 1)`` calls in both plain and
        conservative modes, so only the interleaving *between* distinct
        elements is reordered — the same latitude
        ``SpaceSaving.process_many`` documents.
        """
        for element, count in collections.Counter(elements).items():
            self.update(element, count)

    def process_weighted(
        self, codes: np.ndarray, weights: np.ndarray
    ) -> None:
        """Vectorized lane: add a pre-aggregated ``(codes, weights)`` chunk.

        ``codes`` must come from :attr:`codec` (``encode_chunk`` /
        ``encode_one``) or be identity-coded ints — codes from a foreign
        codec would land non-integer keys in the wrong cells.  Candidate
        tracking is *not* performed here (the lane never sees keys);
        backends pair the sketch with a candidate tracker instead.

        Plain mode uses ``np.add.at`` per row — unbuffered scatter-add
        is commutative, so the table is *bit-identical* to the scalar
        path.  Conservative mode walks collision-free groups in order;
        within a group the gather-min/scatter-max two-phase update is
        exactly the sequential per-element result.
        """
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        weights = np.ascontiguousarray(weights, dtype=np.int64)
        if codes.shape != weights.shape or codes.ndim != 1:
            raise ConfigurationError(
                "codes and weights must be aligned 1-d arrays, got "
                f"{codes.shape} vs {weights.shape}"
            )
        if not len(codes):
            return
        if weights.min() < 1:
            raise ConfigurationError("weights must all be >= 1")
        table = self._table
        cells = row_hashes(codes, self._va, self._vb, self.width)
        if self.conservative:
            for start, stop in collision_free_groups(cells):
                sub = cells[:, start:stop]
                readings = np.take_along_axis(table, sub, axis=1)
                targets = readings.min(axis=0) + weights[start:stop]
                # no intra-group duplicates per row, so fancy-index
                # assignment is well-defined
                np.put_along_axis(
                    table, sub, np.maximum(readings, targets), axis=1
                )
        else:
            for row in range(self.depth):
                np.add.at(table[row], cells[row], weights)
        self._processed += int(weights.sum())

    def _note_candidate(self, element: Element) -> None:
        estimate = self.estimate(element)
        candidates = self._candidates
        candidates[element] = estimate
        if len(candidates) > self._track:
            weakest = min(candidates, key=lambda e: (candidates[e], repr(e)))
            del candidates[weakest]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def processed(self) -> int:
        """Total count added to the sketch."""
        return self._processed

    @property
    def table(self) -> np.ndarray:
        """Read-only view of the ``(depth, width)`` counter table."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    def estimate(self, element: Element) -> int:
        """Point estimate: row-wise minimum (overcounts by <= eps*N whp)."""
        code = self.codec.peek(element)
        if code is None:
            code = SENTINEL_CODE
        return self.estimate_code(code)

    def estimate_code(self, code: int) -> int:
        """Point estimate addressed by codec code."""
        table = self._table
        return min(
            int(table[row, h(code)]) for row, h in enumerate(self._hashes)
        )

    def error_bound(self) -> int:
        """Additive overcount bound: ``ceil(eps * N)`` plus any widening.

        Holds per element with probability ``1 - delta``; :meth:`widen`
        (merge staleness, one-table band sharing) only ever grows it.
        """
        return math.ceil(self.epsilon * self._processed) + self._slack

    def entries(self) -> List[CounterEntry]:
        """Tracked candidates sorted by descending estimate.

        Empty unless ``track_candidates`` was set — a pure sketch cannot
        enumerate elements, which is exactly why the paper's applications
        prefer counter-based techniques.
        """
        ordered = sorted(
            self._candidates, key=lambda e: (-self.estimate(e), repr(e))
        )
        return [CounterEntry(e, self.estimate(e)) for e in ordered]

    def frequent(self, phi: float) -> List[CounterEntry]:
        """Tracked candidates whose estimate exceeds ``phi * N``."""
        if not 0 < phi < 1:
            raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self._processed
        return [entry for entry in self.entries() if entry.count > threshold]

    def top_k(self, k: int) -> List[CounterEntry]:
        """The ``k`` tracked candidates with the highest estimates."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return self.entries()[:k]

    # ------------------------------------------------------------------
    # Mergeable-summary algebra
    # ------------------------------------------------------------------
    def widen(self, slack: int) -> None:
        """Grow the reported error bound by ``slack`` (never shrinks).

        Used by the one-table backend for unsynchronized band sharing
        and by bounded-staleness snapshots: the table itself is
        untouched, only the advertised +/- interval widens.
        """
        if slack < 0:
            raise ConfigurationError(f"slack must be >= 0, got {slack}")
        self._slack += slack

    def compatible_with(self, other: "CountMinSketch") -> bool:
        """True when ``other``'s table is cell-addressable like ours."""
        return (
            self.width == other.width
            and self.depth == other.depth
            and all(
                (mine.a, mine.b) == (theirs.a, theirs.b)
                for mine, theirs in zip(self._hashes, other._hashes)
            )
            and self.codec.aligned_with(other.codec)
        )

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Pure merge: a new sketch summarizing both input streams.

        Tables add cell-wise, so for every element the merged estimate
        dominates each part's estimate and never drops below the true
        combined count.  Requires identical shape and hash parameters
        *and* aligned codecs (one vocabulary a prefix of the other —
        guaranteed when both sketches coded the same key arrival order,
        e.g. codes fanned out from one parent codec); merging sketches
        that coded different non-integer streams independently would
        place the same key in different cells and silently undercount.
        """
        if not self.compatible_with(other):
            raise ConfigurationError(
                "cannot merge incompatible sketches: shapes, hash "
                "parameters, and codec vocabularies must align"
            )
        merged = CountMinSketch(
            epsilon=self.epsilon,
            delta=self.delta,
            conservative=self.conservative and other.conservative,
            track_candidates=max(self._track, other._track),
            seed=self.seed,
        )
        merged._table = self._table + other._table
        merged._processed = self._processed + other._processed
        merged._slack = self._slack + other._slack
        merged.codec = (
            self.codec if self.codec.vocab_size >= other.codec.vocab_size
            else other.codec
        ).clone()
        for element in {**other._candidates, **self._candidates}:
            merged._candidates[element] = merged.estimate(element)
        if merged._track:
            while len(merged._candidates) > merged._track:
                weakest = min(
                    merged._candidates,
                    key=lambda e: (merged._candidates[e], repr(e)),
                )
                del merged._candidates[weakest]
        return merged

    def serialize(self) -> Dict[str, Any]:
        """Plain-dict summary that :meth:`deserialize` restores bit-exactly.

        Values are stdlib/NumPy-free (lists of ints) so the document is
        JSON- and pickle-friendly; the vocabulary rides along as-is, so
        cross-process transport needs picklable keys (always true for
        the str/int/tuple keys the workloads produce).
        """
        return {
            "kind": "count-min",
            "epsilon": self.epsilon,
            "delta": self.delta,
            "conservative": self.conservative,
            "track_candidates": self._track,
            "seed": self.seed,
            "a": [h.a for h in self._hashes],
            "b": [h.b for h in self._hashes],
            "table": self._table.ravel().tolist(),
            "processed": self._processed,
            "slack": self._slack,
            "vocab": list(self.codec._rev),
            "candidates": dict(self._candidates),
        }

    @classmethod
    def deserialize(cls, doc: Dict[str, Any]) -> "CountMinSketch":
        """Inverse of :meth:`serialize` (bit-exact round-trip)."""
        if doc.get("kind") != "count-min":
            raise ConfigurationError(
                f"not a count-min summary: kind={doc.get('kind')!r}"
            )
        sketch = cls(
            epsilon=doc["epsilon"],
            delta=doc["delta"],
            conservative=doc["conservative"],
            track_candidates=doc["track_candidates"],
            seed=doc["seed"],
        )
        for hash_, a, b in zip(sketch._hashes, doc["a"], doc["b"]):
            hash_.a, hash_.b = a, b
        sketch._va = np.array(doc["a"], dtype=np.uint64)
        sketch._vb = np.array(doc["b"], dtype=np.uint64)
        sketch._table = np.array(doc["table"], dtype=np.int64).reshape(
            sketch.depth, sketch.width
        )
        sketch._processed = doc["processed"]
        sketch._slack = doc["slack"]
        for key in doc["vocab"]:
            sketch.codec.encode_one(key)
        sketch._candidates = dict(doc["candidates"])
        return sketch
