"""Count-Min sketch (Cormode & Muthukrishnan, 2005).

``depth = ceil(ln(1/delta))`` rows of ``width = ceil(e/eps)`` counters;
each row hashes the element with an independent universal hash and
increments one cell.  The estimate is the row-wise minimum and
overcounts by at most ``eps * N`` with probability ``1 - delta``.

An optional *conservative update* mode only raises the cells that equal
the current minimum, tightening estimates at the same memory.
A small candidate heap turns the sketch into a frequent-elements /
top-k answerer so it satisfies the package-wide counter protocol.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional

from repro.core.counters import CounterEntry, Element
from repro.errors import ConfigurationError

_MERSENNE_PRIME = (1 << 61) - 1


class _UniversalHash:
    """A 2-universal hash ``h(x) = ((a*x + b) mod p) mod width``."""

    __slots__ = ("a", "b", "width")

    def __init__(self, rng: random.Random, width: int) -> None:
        self.a = rng.randrange(1, _MERSENNE_PRIME)
        self.b = rng.randrange(0, _MERSENNE_PRIME)
        self.width = width

    def __call__(self, element: Element) -> int:
        x = hash(element) & ((1 << 61) - 1)
        return ((self.a * x + self.b) % _MERSENNE_PRIME) % self.width


class CountMinSketch:
    """Count-Min sketch with an optional top-candidate tracker."""

    def __init__(
        self,
        epsilon: float = 0.001,
        delta: float = 0.01,
        conservative: bool = False,
        track_candidates: int = 0,
        seed: Optional[int] = None,
    ) -> None:
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0 < delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        if track_candidates < 0:
            raise ConfigurationError(
                f"track_candidates must be >= 0, got {track_candidates}"
            )
        self.epsilon = epsilon
        self.delta = delta
        self.width = math.ceil(math.e / epsilon)
        self.depth = max(1, math.ceil(math.log(1.0 / delta)))
        self.conservative = conservative
        rng = random.Random(seed)
        self._hashes = [_UniversalHash(rng, self.width) for _ in range(self.depth)]
        self._rows = [[0] * self.width for _ in range(self.depth)]
        self._processed = 0
        self._track = track_candidates
        self._candidates: Dict[Element, int] = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def process(self, element: Element) -> None:
        """Consume one stream element."""
        self.update(element, 1)

    def update(self, element: Element, count: int) -> None:
        """Add ``count`` occurrences of ``element``."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        cells = [h(element) for h in self._hashes]
        if self.conservative:
            current = min(
                self._rows[row][cell] for row, cell in enumerate(cells)
            )
            target = current + count
            for row, cell in enumerate(cells):
                if self._rows[row][cell] < target:
                    self._rows[row][cell] = target
        else:
            for row, cell in enumerate(cells):
                self._rows[row][cell] += count
        self._processed += count
        if self._track:
            self._note_candidate(element)

    def process_many(self, elements: Iterable[Element]) -> None:
        """Consume every element of an iterable."""
        for element in elements:
            self.process(element)

    def _note_candidate(self, element: Element) -> None:
        estimate = self.estimate(element)
        candidates = self._candidates
        candidates[element] = estimate
        if len(candidates) > self._track:
            weakest = min(candidates, key=lambda e: (candidates[e], repr(e)))
            del candidates[weakest]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def processed(self) -> int:
        """Total count added to the sketch."""
        return self._processed

    def estimate(self, element: Element) -> int:
        """Point estimate: row-wise minimum (overcounts by <= eps*N whp)."""
        return min(
            self._rows[row][h(element)] for row, h in enumerate(self._hashes)
        )

    def entries(self) -> List[CounterEntry]:
        """Tracked candidates sorted by descending estimate.

        Empty unless ``track_candidates`` was set — a pure sketch cannot
        enumerate elements, which is exactly why the paper's applications
        prefer counter-based techniques.
        """
        ordered = sorted(
            self._candidates, key=lambda e: (-self.estimate(e), repr(e))
        )
        return [CounterEntry(e, self.estimate(e)) for e in ordered]

    def frequent(self, phi: float) -> List[CounterEntry]:
        """Tracked candidates whose estimate exceeds ``phi * N``."""
        if not 0 < phi < 1:
            raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self._processed
        return [entry for entry in self.entries() if entry.count > threshold]

    def top_k(self, k: int) -> List[CounterEntry]:
        """The ``k`` tracked candidates with the highest estimates."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return self.entries()[:k]
