"""Count Sketch (Charikar, Chen, Farach-Colton, ICALP 2002).

Like Count-Min but each row also hashes the element to a sign in
{-1, +1}; the estimate is the *median* of the signed row readings, which
is unbiased and has error bounded by the stream's L2 norm rather than L1.
Cited as [3] in the paper's related work.
"""

from __future__ import annotations

import math
import random
import statistics
from typing import Dict, Iterable, List, Optional

from repro.core.counters import CounterEntry, Element
from repro.errors import ConfigurationError
from repro.core.sketches.count_min import _UniversalHash

class CountSketch:
    """Median-of-signed-counters sketch with optional candidate tracking."""

    def __init__(
        self,
        width: int = 1024,
        depth: int = 5,
        track_candidates: int = 0,
        seed: Optional[int] = None,
    ) -> None:
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if track_candidates < 0:
            raise ConfigurationError(
                f"track_candidates must be >= 0, got {track_candidates}"
            )
        self.width = width
        self.depth = depth
        rng = random.Random(seed)
        self._bucket_hashes = [_UniversalHash(rng, width) for _ in range(depth)]
        self._sign_hashes = [_UniversalHash(rng, 2) for _ in range(depth)]
        self._rows = [[0] * width for _ in range(depth)]
        self._processed = 0
        self._track = track_candidates
        self._candidates: Dict[Element, int] = {}

    @staticmethod
    def for_error(epsilon: float, delta: float = 0.01, **kwargs) -> "CountSketch":
        """Size a sketch for L2 error ``epsilon`` with confidence ``1-delta``."""
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0 < delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        width = math.ceil(3.0 / (epsilon * epsilon))
        depth = max(1, math.ceil(math.log(1.0 / delta)))
        return CountSketch(width=width, depth=depth, **kwargs)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def process(self, element: Element) -> None:
        """Consume one stream element."""
        self.update(element, 1)

    def update(self, element: Element, count: int) -> None:
        """Add ``count`` occurrences of ``element``."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        for row in range(self.depth):
            cell = self._bucket_hashes[row](element)
            sign = 1 if self._sign_hashes[row](element) else -1
            self._rows[row][cell] += sign * count
        self._processed += count
        if self._track:
            self._note_candidate(element)

    def process_many(self, elements: Iterable[Element]) -> None:
        """Consume every element of an iterable."""
        for element in elements:
            self.process(element)

    def _note_candidate(self, element: Element) -> None:
        candidates = self._candidates
        candidates[element] = self.estimate(element)
        if len(candidates) > self._track:
            weakest = min(candidates, key=lambda e: (candidates[e], repr(e)))
            del candidates[weakest]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def processed(self) -> int:
        """Total count added to the sketch."""
        return self._processed

    def estimate(self, element: Element) -> int:
        """Unbiased median estimate (may be negative; clamped at 0)."""
        readings = []
        for row in range(self.depth):
            cell = self._bucket_hashes[row](element)
            sign = 1 if self._sign_hashes[row](element) else -1
            readings.append(sign * self._rows[row][cell])
        return max(0, round(statistics.median(readings)))

    def entries(self) -> List[CounterEntry]:
        """Tracked candidates sorted by descending estimate."""
        ordered = sorted(
            self._candidates, key=lambda e: (-self.estimate(e), repr(e))
        )
        return [CounterEntry(e, self.estimate(e)) for e in ordered]

    def frequent(self, phi: float) -> List[CounterEntry]:
        """Tracked candidates whose estimate exceeds ``phi * N``."""
        if not 0 < phi < 1:
            raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self._processed
        return [entry for entry in self.entries() if entry.count > threshold]

    def top_k(self, k: int) -> List[CounterEntry]:
        """The ``k`` tracked candidates with the highest estimates."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return self.entries()[:k]
