"""Count Sketch (Charikar, Chen, Farach-Colton, ICALP 2002).

Like Count-Min but each row also hashes the element to a sign in
{-1, +1}; the estimate is the *median* of the signed row readings, which
is unbiased and has error bounded by the stream's L2 norm rather than L1.
Cited as [3] in the paper's related work.

Shares Count-Min's PR 8 machinery: NumPy ``(depth, width)`` table,
codec-code hashing (stable across processes), a vectorized
``process_weighted`` lane (signed ``np.add.at`` is commutative, so it is
bit-identical to the scalar path), and the serialize/merge algebra
(signed tables add cell-wise — unbiasedness is preserved, though the
Count-Min dominance property does not apply to signed estimates).
"""

from __future__ import annotations

import collections
import math
import random
import statistics
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.core.coding import SENTINEL_CODE, StreamCodec
from repro.core.counters import CounterEntry, Element
from repro.core.sketches.count_min import _UniversalHash
from repro.core.sketches.kernels import row_hashes, sign_from_bits
from repro.errors import ConfigurationError


class CountSketch:
    """Median-of-signed-counters sketch with optional candidate tracking."""

    def __init__(
        self,
        width: int = 1024,
        depth: int = 5,
        track_candidates: int = 0,
        seed: Optional[int] = None,
    ) -> None:
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if track_candidates < 0:
            raise ConfigurationError(
                f"track_candidates must be >= 0, got {track_candidates}"
            )
        self.width = width
        self.depth = depth
        self.seed = seed
        rng = random.Random(seed)
        self._bucket_hashes = [_UniversalHash(rng, width) for _ in range(depth)]
        self._sign_hashes = [_UniversalHash(rng, 2) for _ in range(depth)]
        self._ba = np.array([h.a for h in self._bucket_hashes], dtype=np.uint64)
        self._bb = np.array([h.b for h in self._bucket_hashes], dtype=np.uint64)
        self._sa = np.array([h.a for h in self._sign_hashes], dtype=np.uint64)
        self._sb = np.array([h.b for h in self._sign_hashes], dtype=np.uint64)
        self._table = np.zeros((depth, width), dtype=np.int64)
        self._processed = 0
        self._track = track_candidates
        self._candidates: Dict[Element, int] = {}
        self.codec = StreamCodec()

    @staticmethod
    def for_error(epsilon: float, delta: float = 0.01, **kwargs) -> "CountSketch":
        """Size a sketch for L2 error ``epsilon`` with confidence ``1-delta``."""
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0 < delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        width = math.ceil(3.0 / (epsilon * epsilon))
        depth = max(1, math.ceil(math.log(1.0 / delta)))
        return CountSketch(width=width, depth=depth, **kwargs)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def process(self, element: Element) -> None:
        """Consume one stream element."""
        self.update(element, 1)

    def update(self, element: Element, count: int) -> None:
        """Add ``count`` occurrences of ``element`` (scalar reference path)."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        code = self.codec.encode_one(element)
        table = self._table
        for row in range(self.depth):
            cell = self._bucket_hashes[row](code)
            sign = 1 if self._sign_hashes[row](code) else -1
            table[row, cell] += sign * count
        self._processed += count
        if self._track:
            self._note_candidate(element)

    def process_many(self, elements: Iterable[Element]) -> None:
        """Consume a whole iterable, one ``update`` per *distinct* element.

        Signed additions commute, so the pre-aggregated table is
        identical to the per-element loop's; only candidate noting
        order changes (the same latitude ``process_many`` documents
        package-wide).
        """
        for element, count in collections.Counter(elements).items():
            self.update(element, count)

    def process_weighted(
        self, codes: np.ndarray, weights: np.ndarray
    ) -> None:
        """Vectorized lane: add a pre-aggregated ``(codes, weights)`` chunk.

        ``codes`` must come from :attr:`codec` (or be identity-coded
        ints).  Signed scatter-adds commute, so the resulting table is
        *bit-identical* to the scalar path for any ordering.  Candidate
        tracking is not performed here (the lane never sees keys).
        """
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        weights = np.ascontiguousarray(weights, dtype=np.int64)
        if codes.shape != weights.shape or codes.ndim != 1:
            raise ConfigurationError(
                "codes and weights must be aligned 1-d arrays, got "
                f"{codes.shape} vs {weights.shape}"
            )
        if not len(codes):
            return
        if weights.min() < 1:
            raise ConfigurationError("weights must all be >= 1")
        table = self._table
        cells = row_hashes(codes, self._ba, self._bb, self.width)
        signs = sign_from_bits(row_hashes(codes, self._sa, self._sb, 2))
        for row in range(self.depth):
            np.add.at(table[row], cells[row], signs[row] * weights)
        self._processed += int(weights.sum())

    def _note_candidate(self, element: Element) -> None:
        candidates = self._candidates
        candidates[element] = self.estimate(element)
        if len(candidates) > self._track:
            weakest = min(candidates, key=lambda e: (candidates[e], repr(e)))
            del candidates[weakest]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def processed(self) -> int:
        """Total count added to the sketch."""
        return self._processed

    @property
    def table(self) -> np.ndarray:
        """Read-only view of the ``(depth, width)`` counter table."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    def estimate(self, element: Element) -> int:
        """Unbiased median estimate (may be negative; clamped at 0)."""
        code = self.codec.peek(element)
        if code is None:
            code = SENTINEL_CODE
        return self.estimate_code(code)

    def estimate_code(self, code: int) -> int:
        """Median estimate addressed by codec code."""
        table = self._table
        readings = []
        for row in range(self.depth):
            cell = self._bucket_hashes[row](code)
            sign = 1 if self._sign_hashes[row](code) else -1
            readings.append(sign * int(table[row, cell]))
        return max(0, round(statistics.median(readings)))

    def entries(self) -> List[CounterEntry]:
        """Tracked candidates sorted by descending estimate."""
        ordered = sorted(
            self._candidates, key=lambda e: (-self.estimate(e), repr(e))
        )
        return [CounterEntry(e, self.estimate(e)) for e in ordered]

    def frequent(self, phi: float) -> List[CounterEntry]:
        """Tracked candidates whose estimate exceeds ``phi * N``."""
        if not 0 < phi < 1:
            raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self._processed
        return [entry for entry in self.entries() if entry.count > threshold]

    def top_k(self, k: int) -> List[CounterEntry]:
        """The ``k`` tracked candidates with the highest estimates."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return self.entries()[:k]

    # ------------------------------------------------------------------
    # Mergeable-summary algebra
    # ------------------------------------------------------------------
    def compatible_with(self, other: "CountSketch") -> bool:
        """True when ``other``'s table is cell-addressable like ours."""
        return (
            self.width == other.width
            and self.depth == other.depth
            and all(
                (mine.a, mine.b) == (theirs.a, theirs.b)
                for mine, theirs in zip(
                    self._bucket_hashes + self._sign_hashes,
                    other._bucket_hashes + other._sign_hashes,
                )
            )
            and self.codec.aligned_with(other.codec)
        )

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Pure merge: signed tables add cell-wise (unbiasedness holds)."""
        if not self.compatible_with(other):
            raise ConfigurationError(
                "cannot merge incompatible sketches: shapes, hash "
                "parameters, and codec vocabularies must align"
            )
        merged = CountSketch(
            width=self.width,
            depth=self.depth,
            track_candidates=max(self._track, other._track),
            seed=self.seed,
        )
        merged._table = self._table + other._table
        merged._processed = self._processed + other._processed
        merged.codec = (
            self.codec if self.codec.vocab_size >= other.codec.vocab_size
            else other.codec
        ).clone()
        for element in {**other._candidates, **self._candidates}:
            merged._candidates[element] = merged.estimate(element)
        if merged._track:
            while len(merged._candidates) > merged._track:
                weakest = min(
                    merged._candidates,
                    key=lambda e: (merged._candidates[e], repr(e)),
                )
                del merged._candidates[weakest]
        return merged

    def serialize(self) -> Dict[str, Any]:
        """Plain-dict summary that :meth:`deserialize` restores bit-exactly."""
        return {
            "kind": "count-sketch",
            "width": self.width,
            "depth": self.depth,
            "track_candidates": self._track,
            "seed": self.seed,
            "bucket_a": [h.a for h in self._bucket_hashes],
            "bucket_b": [h.b for h in self._bucket_hashes],
            "sign_a": [h.a for h in self._sign_hashes],
            "sign_b": [h.b for h in self._sign_hashes],
            "table": self._table.ravel().tolist(),
            "processed": self._processed,
            "vocab": list(self.codec._rev),
            "candidates": dict(self._candidates),
        }

    @classmethod
    def deserialize(cls, doc: Dict[str, Any]) -> "CountSketch":
        """Inverse of :meth:`serialize` (bit-exact round-trip)."""
        if doc.get("kind") != "count-sketch":
            raise ConfigurationError(
                f"not a count-sketch summary: kind={doc.get('kind')!r}"
            )
        sketch = cls(
            width=doc["width"],
            depth=doc["depth"],
            track_candidates=doc["track_candidates"],
            seed=doc["seed"],
        )
        for hash_, a, b in zip(sketch._bucket_hashes,
                               doc["bucket_a"], doc["bucket_b"]):
            hash_.a, hash_.b = a, b
        for hash_, a, b in zip(sketch._sign_hashes,
                               doc["sign_a"], doc["sign_b"]):
            hash_.a, hash_.b = a, b
        sketch._ba = np.array(doc["bucket_a"], dtype=np.uint64)
        sketch._bb = np.array(doc["bucket_b"], dtype=np.uint64)
        sketch._sa = np.array(doc["sign_a"], dtype=np.uint64)
        sketch._sb = np.array(doc["sign_b"], dtype=np.uint64)
        sketch._table = np.array(doc["table"], dtype=np.int64).reshape(
            doc["depth"], doc["width"]
        )
        sketch._processed = doc["processed"]
        for key in doc["vocab"]:
            sketch.codec.encode_one(key)
        sketch._candidates = dict(doc["candidates"])
        return sketch
