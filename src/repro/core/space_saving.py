"""The Space Saving algorithm (Metwally, Agrawal, El Abbadi, TODS 2006).

Space Saving monitors at most ``m = ceil(1/epsilon)`` counters.  For each
stream element (Algorithm 1 of the paper):

* if the element is monitored, increment its counter
  (``IncrementCounter``);
* else if fewer than ``m`` elements are monitored, start monitoring it
  with count 1 (``AddElementToBucket``);
* else *overwrite* the minimum-frequency element: the new element takes
  count ``min + 1`` and records ``min`` as its error (``Overwrite``).

Guarantees (all property-tested in ``tests/core``):

* ``estimate(e) >= true_count(e)`` — never underestimates;
* ``estimate(e) - error(e) <= true_count(e)``;
* ``min_freq <= N / m`` so the per-element error is at most ``eps * N``;
* every element with true count > ``N / m`` is monitored (no false
  negatives for frequent elements);
* exact counts when the alphabet fits in ``m`` counters.
"""

from __future__ import annotations

import collections
import itertools
import math
from typing import Iterable, List, Optional, Tuple

from repro.core.counters import CounterEntry, Element
from repro.core.stream_summary import StreamSummary
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, coerce
from repro.obs.tracing import Tracer, coerce_tracer


class SpaceSaving:
    """Sequential Space Saving over a :class:`StreamSummary`.

    Construct with an explicit counter budget (``capacity``) or an error
    bound (``epsilon``, giving ``capacity = ceil(1/epsilon)``).

    ``metrics`` optionally attaches a :class:`~repro.obs.registry.
    MetricsRegistry`; the instance then counts its Algorithm 1
    operations (``core.spacesaving.increments`` / ``inserts`` /
    ``overwrites``), consumed occurrences, and increments landing in the
    minimum bucket.  Metrics are observation-only — enabling them never
    changes any count (pinned by ``tests/obs/test_differential.py``).

    ``tracer`` optionally attaches a :class:`~repro.obs.tracing.Tracer`;
    each of the three processing lanes then records a span per call /
    chunk (``lane.per-element`` / ``lane.preaggregated`` /
    ``lane.fused``), so a timeline shows which lane served which part of
    the stream.  Tracing is observation-only too (pinned by
    ``tests/obs/test_trace_differential.py``).
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        epsilon: Optional[float] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if (capacity is None) == (epsilon is None):
            raise ConfigurationError(
                "provide exactly one of capacity or epsilon"
            )
        if capacity is None:
            if not 0 < epsilon < 1:
                raise ConfigurationError(
                    f"epsilon must be in (0, 1), got {epsilon}"
                )
            capacity = math.ceil(1.0 / epsilon)
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.summary = StreamSummary()
        self._processed = 0
        # Bound metric objects are cached once; with the default
        # NullRegistry they are shared no-op singletons, so the hot
        # paths below pay one no-op call when metrics are disabled.
        self.metrics = coerce(metrics)
        self._m_occurrences = self.metrics.counter(
            "core.spacesaving.occurrences"
        )
        self._m_increments = self.metrics.counter(
            "core.spacesaving.increments"
        )
        self._m_inserts = self.metrics.counter("core.spacesaving.inserts")
        self._m_overwrites = self.metrics.counter(
            "core.spacesaving.overwrites"
        )
        self._m_min_hits = self.metrics.counter(
            "core.spacesaving.min_bucket_hits"
        )
        # With the default NullTracer every lane pays one attribute read
        # plus one (class-constant) truth check when tracing is off.
        self.tracer = coerce_tracer(tracer)

    def bind_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attach (or detach, with ``None``) a span tracer."""
        self.tracer = coerce_tracer(tracer)

    @classmethod
    def from_entries(
        cls,
        capacity: int,
        entries: Iterable[CounterEntry],
        processed: int,
    ) -> "SpaceSaving":
        """Build a summary directly from counter entries.

        Used by the merge of the Independent Structures design: the merged
        (element, count, error) triples become a regular queryable
        ``SpaceSaving``.  At most ``capacity`` entries (the largest by
        count) are retained; ties at the truncation boundary are broken
        deterministically (by element, then error) so the kept set does
        not depend on the iteration order of the caller's entries.
        """
        instance = cls(capacity=capacity)
        kept = list(entries)
        if len(kept) > capacity:
            kept = sorted(
                kept, key=lambda e: (-e.count, str(e.element), e.error)
            )[:capacity]
        # ascending bulk build: each row joins the current max bucket or
        # appends a new one, so the whole construction is O(n log n) in
        # the sort and O(1) per row — no bucket-list walk per entry
        instance.summary.build_ascending(
            (entry.element, entry.count, entry.error)
            for entry in sorted(kept, key=lambda e: e.count)
        )
        instance._processed = processed
        return instance

    def reset(self) -> None:
        """Forget everything (fresh summary, zero processed count).

        Used by designs that flush local caches into a global structure
        (the §4.4 Hybrid) and by windowed wrappers.
        """
        self.summary = StreamSummary()
        self._processed = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def process(self, element: Element) -> None:
        """Consume one stream element (Algorithm 1)."""
        self.process_bulk(element, 1)

    def process_bulk(self, element: Element, count: int) -> None:
        """Consume ``count`` occurrences of ``element`` at once.

        Bulk processing is the CoTS framework's key amortization; the
        sequential algorithm supports it too, and the semantics match
        processing ``count`` singletons back-to-back.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        tracer = self.tracer
        if tracer.enabled:
            trace_start = tracer.now()
        summary = self.summary
        node = summary._nodes.get(element)
        if node is not None:
            if node.bucket is summary._min:
                self._m_min_hits.inc()
            self._m_increments.inc()
            summary.increment_node(node, count)
        elif len(summary) < self.capacity:
            self._m_inserts.inc()
            summary.insert(element, count=count, error=0)
        else:
            self._m_overwrites.inc()
            min_freq = summary.min_freq
            summary.evict_min()
            summary.insert(element, count=min_freq + count, error=min_freq)
        self._m_occurrences.inc(count)
        self._processed += count
        if tracer.enabled:
            tracer.add_span(
                "spacesaving", "lane.per-element", "core",
                trace_start, tracer.now(), {"count": count},
            )

    #: elements per pre-aggregated chunk of :meth:`process_many`
    BATCH_CHUNK = 4096

    def process_many(self, elements: Iterable[Element]) -> None:
        """Consume every element of an iterable through the batched lane.

        The stream is consumed in chunks.  Each chunk is pre-aggregated
        with :class:`collections.Counter`; when the chunk cannot trigger
        an eviction (every distinct element is either already monitored
        or fits in a free counter slot) one bulk update per distinct
        element is applied — the paper's §5.2.2 amortization, one Stream
        Summary move covering many occurrences.  Otherwise the chunk runs
        through a validated-once tight loop that still fuses runs of
        consecutive identical elements (always exactly equivalent to the
        per-element path) and inlines the unit-increment fast lane.

        Both lanes are observationally identical to calling
        :meth:`process` per element: same estimates, errors, ``processed``
        count and eviction behaviour (bucket-internal tie order may
        differ on the pre-aggregated lane).
        """
        summary = self.summary
        nodes = summary._nodes
        capacity = self.capacity
        tracer = self.tracer
        iterator = iter(elements)
        while True:
            chunk = list(itertools.islice(iterator, self.BATCH_CHUNK))
            if not chunk:
                return
            if tracer.enabled:
                trace_start = tracer.now()
            counts = collections.Counter(chunk)
            new = 0
            for element in counts:
                if element not in nodes:
                    new += 1
            bulk_lane = len(nodes) + new <= capacity
            if bulk_lane:
                # no eviction possible: bulk updates commute
                increment = summary.increment
                insert = summary.insert
                m_increment = self._m_increments.inc
                m_insert = self._m_inserts.inc
                m_min_hit = self._m_min_hits.inc
                get = nodes.get
                for element, count in counts.items():
                    node = get(element)
                    if node is not None:
                        if node.bucket is summary._min:
                            m_min_hit()
                        m_increment()
                        increment(element, count)
                    else:
                        m_insert()
                        insert(element, count=count, error=0)
            else:
                self._process_chunk(chunk)
            self._m_occurrences.inc(len(chunk))
            self._processed += len(chunk)
            if tracer.enabled:
                tracer.add_span(
                    "spacesaving",
                    "lane.preaggregated" if bulk_lane else "lane.fused",
                    "core",
                    trace_start,
                    tracer.now(),
                    {"elements": len(chunk), "distinct": len(counts)},
                )

    def _process_chunk(self, chunk: List[Element]) -> None:
        """Tight per-element loop: exact Algorithm 1 order, runs fused."""
        summary = self.summary
        nodes = summary._nodes
        get = nodes.get
        capacity = self.capacity
        m_increment = self._m_increments.inc
        m_insert = self._m_inserts.inc
        m_overwrite = self._m_overwrites.inc
        m_min_hit = self._m_min_hits.inc
        index = 0
        length = len(chunk)
        while index < length:
            element = chunk[index]
            stop = index + 1
            while stop < length and chunk[stop] == element:
                stop += 1
            run = stop - index
            index = stop
            node = get(element)
            if node is not None:
                # inlined unit/bulk increment fast lane (see
                # StreamSummary.increment_node)
                source = node.bucket
                if source is summary._min:
                    m_min_hit()
                m_increment()
                target_freq = source.freq + run
                nxt = source.next
                if source.size == 1 and (
                    nxt is None or nxt.freq > target_freq
                ):
                    source.freq = target_freq
                    summary._total += run
                elif nxt is not None and nxt.freq == target_freq:
                    source.detach(node)
                    nxt.attach(node)
                    if source.size == 0:
                        summary._remove_bucket(source)
                    summary._total += run
                else:
                    summary.increment_node(node, run)
            elif len(nodes) < capacity:
                m_insert()
                summary.insert(element, count=run, error=0)
            else:
                m_overwrite()
                min_freq = summary.min_freq
                summary.evict_min()
                summary.insert(
                    element, count=min_freq + run, error=min_freq
                )

    def process_weighted(
        self, pairs: Iterable[Tuple[Element, int]]
    ) -> None:
        """Consume pre-aggregated ``(element, weight)`` pairs.

        The batched form of :meth:`process_bulk`: each pair is exactly
        equivalent to ``weight`` consecutive occurrences of ``element``
        (increment by ``weight`` when monitored, insert at ``weight``
        when a slot is free, otherwise overwrite the minimum at
        ``min + weight`` with error ``min``).  This is the worker-side
        lane of the multiprocess shared-memory transport, whose parent
        pre-aggregates every dispatch chunk into distinct pairs — the
        loop runs once per *distinct* element, not once per occurrence.
        """
        tracer = self.tracer
        if tracer.enabled:
            trace_start = tracer.now()
        summary = self.summary
        nodes = summary._nodes
        get = nodes.get
        capacity = self.capacity
        m_increment = self._m_increments.inc
        m_insert = self._m_inserts.inc
        m_overwrite = self._m_overwrites.inc
        m_min_hit = self._m_min_hits.inc
        total = 0
        distinct = 0
        for element, weight in pairs:
            if weight < 1:
                raise ConfigurationError(
                    f"weight must be >= 1, got {weight} for {element!r}"
                )
            total += weight
            distinct += 1
            node = get(element)
            if node is not None:
                # inlined unit/bulk increment fast lane (mirrors
                # _process_chunk's run handling)
                source = node.bucket
                if source is summary._min:
                    m_min_hit()
                m_increment()
                target_freq = source.freq + weight
                nxt = source.next
                if source.size == 1 and (
                    nxt is None or nxt.freq > target_freq
                ):
                    source.freq = target_freq
                    summary._total += weight
                elif nxt is not None and nxt.freq == target_freq:
                    source.detach(node)
                    nxt.attach(node)
                    if source.size == 0:
                        summary._remove_bucket(source)
                    summary._total += weight
                else:
                    summary.increment_node(node, weight)
            elif len(nodes) < capacity:
                m_insert()
                summary.insert(element, count=weight, error=0)
            else:
                m_overwrite()
                min_freq = summary.min_freq
                summary.evict_min()
                summary.insert(
                    element, count=min_freq + weight, error=min_freq
                )
        self._m_occurrences.inc(total)
        self._processed += total
        if tracer.enabled:
            tracer.add_span(
                "spacesaving", "lane.weighted", "core",
                trace_start, tracer.now(),
                {"occurrences": total, "distinct": distinct},
            )

    # ------------------------------------------------------------------
    # Queries (the operator surface used by Section 3.2's query model)
    # ------------------------------------------------------------------
    @property
    def processed(self) -> int:
        """Number of stream occurrences consumed so far."""
        return self._processed

    def __len__(self) -> int:
        return len(self.summary)

    def __contains__(self, element: Element) -> bool:
        return element in self.summary

    def estimate(self, element: Element) -> int:
        """Estimated frequency (an upper bound on the true frequency)."""
        return self.summary.count(element)

    def error(self, element: Element) -> int:
        """Maximum over-estimation for ``element`` (0 if not monitored)."""
        node = self.summary.node(element)
        return node.error if node is not None else 0

    def entries(self) -> List[CounterEntry]:
        """Monitored elements sorted by descending estimated count."""
        return self.summary.entries()

    def is_frequent(self, element: Element, phi: float) -> bool:
        """Point query: is ``element`` frequent at support ``phi``?

        True iff the estimated count exceeds ``phi * N`` — the same
        phi-fraction semantics as ``answer(PointFrequentQuery)`` and
        :meth:`frequent`.  For an absolute-count comparison use
        :meth:`exceeds_count`.
        """
        if not 0 < phi < 1:
            raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
        return self.estimate(element) > phi * self._processed

    def exceeds_count(self, element: Element, threshold: float) -> bool:
        """Point query: is the estimated count above the absolute
        ``threshold``?  (The old ``is_frequent`` semantics, renamed.)"""
        return self.estimate(element) > threshold

    def frequent(self, phi: float) -> List[CounterEntry]:
        """Set query: elements with estimated count > ``phi * N``.

        May contain false positives (count inflated by at most the error)
        but never misses a truly frequent element, provided
        ``phi >= 1 / capacity``.
        """
        if not 0 < phi < 1:
            raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self._processed
        result: List[CounterEntry] = []
        for entry in self.entries():
            if entry.count <= threshold:
                break  # entries are sorted; nothing further qualifies
            result.append(entry)
        return result

    def guaranteed_frequent(self, phi: float) -> List[CounterEntry]:
        """Elements *guaranteed* frequent: ``count - error > phi * N``."""
        threshold = phi * self._processed
        return [
            entry for entry in self.frequent(phi) if entry.guaranteed > threshold
        ]

    def top_k(self, k: int) -> List[CounterEntry]:
        """The ``k`` elements with the highest estimated counts."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return self.entries()[:k]

    def kth_frequency(self, k: int) -> int:
        """Estimated frequency of the k-th most frequent element (0 if < k)."""
        entries = self.top_k(k)
        if len(entries) < k:
            return 0
        return entries[-1].count

    def is_in_top_k(self, element: Element, k: int) -> bool:
        """Point query: is ``element`` among the top-k (by estimate)?"""
        estimate = self.estimate(element)
        if estimate == 0:
            return False
        return estimate >= self.kth_frequency(k)

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """The error bound implied by the counter budget (``1/capacity``)."""
        return 1.0 / self.capacity

    def max_error(self) -> int:
        """Upper bound on any element's over-estimation (= min bucket freq
        once the structure is full, 0 before)."""
        if len(self.summary) < self.capacity:
            return 0
        return self.summary.min_freq

    def counts(self) -> List[Tuple[Element, int]]:
        """(element, estimate) pairs sorted by descending estimate."""
        return [(entry.element, entry.count) for entry in self.entries()]
