"""Lossy Counting (Manku & Motwani, VLDB 2002).

The stream is divided into rounds ("buckets") of width ``w = ceil(1/eps)``.
Each monitored element carries an estimated count ``f`` and a maximum
error ``delta`` (the round it was inserted in, minus one).  At every round
boundary, entries with ``f + delta <= current_round`` are pruned, which
bounds memory to ``O((1/eps) log(eps N))``.

The paper uses Lossy Counting both as related work (Section 2) and as the
example of how the CoTS framework generalizes beyond Space Saving
(Section 5.3: the Overwrite request becomes a round-boundary prune).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.counters import CounterEntry, Element
from repro.errors import ConfigurationError


class LossyCounting:
    """Epsilon-approximate frequency counting with periodic pruning."""

    def __init__(self, epsilon: float) -> None:
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self.width = math.ceil(1.0 / epsilon)
        self._entries: Dict[Element, Tuple[int, int]] = {}  # f, delta
        self._processed = 0
        self._round = 1

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def process(self, element: Element) -> None:
        """Consume one stream element."""
        entry = self._entries.get(element)
        if entry is not None:
            self._entries[element] = (entry[0] + 1, entry[1])
        else:
            self._entries[element] = (1, self._round - 1)
        self._processed += 1
        if self._processed % self.width == 0:
            self._prune()
            self._round += 1

    def process_many(self, elements: Iterable[Element]) -> None:
        """Consume every element of an iterable."""
        for element in elements:
            self.process(element)

    def _prune(self) -> None:
        """Drop entries that can no longer be frequent (round boundary)."""
        survivors = {
            element: (freq, delta)
            for element, (freq, delta) in self._entries.items()
            if freq + delta > self._round
        }
        self._entries = survivors

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def processed(self) -> int:
        """Number of stream elements consumed."""
        return self._processed

    @property
    def current_round(self) -> int:
        """The 1-based index of the current round."""
        return self._round

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, element: Element) -> bool:
        return element in self._entries

    def estimate(self, element: Element) -> int:
        """Estimated frequency (within ``eps * N`` below the true count)."""
        entry = self._entries.get(element)
        return entry[0] if entry is not None else 0

    def error(self, element: Element) -> int:
        """Maximum undercount recorded for ``element`` (its delta)."""
        entry = self._entries.get(element)
        return entry[1] if entry is not None else 0

    def entries(self) -> List[CounterEntry]:
        """Monitored elements sorted by descending estimated count."""
        ordered = sorted(
            self._entries.items(),
            key=lambda item: (-item[1][0], repr(item[0])),
        )
        return [
            CounterEntry(element, freq, delta)
            for element, (freq, delta) in ordered
        ]

    def frequent(self, phi: float, support: Optional[float] = None) -> List[CounterEntry]:
        """Elements with estimated count >= ``(phi - eps) * N``.

        Per the Lossy Counting guarantee this returns every element whose
        true frequency exceeds ``phi * N`` and no element below
        ``(phi - eps) * N``.
        """
        if not 0 < phi < 1:
            raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
        threshold = (phi - self.epsilon) * self._processed
        return [entry for entry in self.entries() if entry.count >= threshold]

    def top_k(self, k: int) -> List[CounterEntry]:
        """The ``k`` elements with the highest estimated counts."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return self.entries()[:k]
