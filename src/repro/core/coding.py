"""Stable key <-> ``int64`` coding shared by sketches and data planes.

Born in the mp data plane (PR 6) as the shared vocabulary behind the
shm rings, the codec now also backs the sketch hot paths: hashing a
*code* instead of the builtin ``hash(element)`` makes sketch tables
reproducible across processes (builtin ``hash`` of str/bytes is salted
by ``PYTHONHASHSEED``), and pre-aggregated ``(codes, weights)`` arrays
are what the vectorized kernels consume.  It lives in ``core`` so both
``core.sketches`` and ``mp`` can import it without a layering cycle;
:mod:`repro.mp.shm` re-exports it for backward compatibility.

Coding is two-lane: keys that *are* machine-size ints are coded as
``key << 1`` (even codes, no dictionary, fully vectorizable), every
other key gets a vocabulary index coded ``(index << 1) | 1`` (odd
codes).  Vocabulary assignment is dict-insertion-ordered — a pure
function of the key arrival order, never of ``PYTHONHASHSEED`` — so two
processes coding the same stream produce identical codes.
"""

from __future__ import annotations

import collections
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: identity-coded ints must survive ``key << 1`` inside int64
INT_CODE_BOUND = 1 << 62

#: query-time stand-in for a key the codec has never seen.  Odd codes
#: are non-negative and identity codes are even, so ``-1`` collides with
#: no real code; estimating it is safe (a fresh key's true count is 0
#: and Count-Min never underestimates).
SENTINEL_CODE = -1


class StreamCodec:
    """Parent-owned key <-> int64 code mapping (the shared vocabulary).

    Even codes are machine-size ints coded as themselves (``key << 1``);
    odd codes index the vocabulary list (``(index << 1) | 1``).  The
    split keeps the overwhelmingly common integer-stream case free of
    any per-key dictionary work while arbitrary hashable keys still
    round-trip exactly.
    """

    __slots__ = ("_codes", "_rev")

    def __init__(self) -> None:
        self._codes: dict = {}
        self._rev: List[Hashable] = []

    @property
    def vocab_size(self) -> int:
        """Distinct non-integer keys registered so far."""
        return len(self._rev)

    def encode_chunk(
        self, chunk: Sequence[Hashable]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pre-aggregate one chunk into distinct ``(codes, weights)``.

        Returns two aligned ``int64`` arrays: each distinct element of
        ``chunk`` appears once with its occurrence count.  Applying the
        pairs in order is equivalent to consuming the chunk with equal
        elements grouped together (the same reordering latitude the
        batched ``process_many`` lane already documents).
        """
        if not len(chunk):
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if type(chunk[0]) is not int:
            # cheap pre-filter: don't pay numpy dtype inference for
            # streams that obviously aren't integer-keyed
            return self._encode_counter(chunk)
        try:
            # Element inference is the fast-lane gate: a plain int list
            # infers an integer dtype, anything else (floats, strings,
            # objects, tuple keys -> ndim != 1, huge ints -> OverflowError)
            # drops to the Counter lane.
            arr = np.asarray(chunk)
        except (ValueError, OverflowError):
            return self._encode_counter(chunk)
        kind = arr.dtype.kind
        if arr.ndim == 1 and (
            kind == "i" or (kind == "u" and arr.dtype.itemsize <= 4)
        ):
            codes = arr.astype(np.int64, copy=False)
            if (
                arr.dtype.itemsize <= 4
                or kind == "u"
                or (
                    int(codes.min()) > -INT_CODE_BOUND
                    and int(codes.max()) < INT_CODE_BOUND
                )
            ):
                values, weights = np.unique(codes, return_counts=True)
                return values << 1, weights
        return self._encode_counter(chunk)

    def _encode_counter(
        self, chunk: Sequence[Hashable]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Slow lane: one Counter pass, then per-distinct-key coding."""
        counts = collections.Counter(chunk)
        codes = np.empty(len(counts), dtype=np.int64)
        weights = np.empty(len(counts), dtype=np.int64)
        lookup = self._codes
        rev = self._rev
        for slot, (key, count) in enumerate(counts.items()):
            code = lookup.get(key)
            if code is None:
                if type(key) is int and -INT_CODE_BOUND < key < INT_CODE_BOUND:
                    code = key << 1
                else:
                    code = (len(rev) << 1) | 1
                    rev.append(key)
                lookup[key] = code
            codes[slot] = code
            weights[slot] = count
        return codes, weights

    def encode_one(self, key: Hashable) -> int:
        """Code for a single key, registering it if new (scalar lane)."""
        if type(key) is int and -INT_CODE_BOUND < key < INT_CODE_BOUND:
            return key << 1
        code = self._codes.get(key)
        if code is None:
            code = (len(self._rev) << 1) | 1
            self._rev.append(key)
            self._codes[key] = code
        return code

    def peek(self, key: Hashable) -> Optional[int]:
        """Code for a key *without* registering it; None if unknown.

        Query paths use this so estimating a never-ingested key does not
        grow the vocabulary.
        """
        if type(key) is int and -INT_CODE_BOUND < key < INT_CODE_BOUND:
            return key << 1
        return self._codes.get(key)

    def decode(self, code: int) -> Hashable:
        """The key behind one code (exact inverse of encoding)."""
        if code & 1:
            return self._rev[code >> 1]
        return code >> 1

    def decode_entries(
        self, entries: Iterable[Tuple[int, int, int]]
    ) -> List[Tuple[Hashable, int, int]]:
        """Decode a shard snapshot's ``(code, count, error)`` triples."""
        decode = self.decode
        return [(decode(code), count, error) for code, count, error in entries]

    def aligned_with(self, other: "StreamCodec") -> bool:
        """True when one vocabulary is a prefix of the other.

        Two codecs whose vocabularies agree on their common prefix
        assign the *same* code to every key either has seen — the
        compatibility condition for merging sketches that coded their
        streams independently.  Identity-coded ints are always aligned.
        """
        short, long = (
            (self._rev, other._rev)
            if len(self._rev) <= len(other._rev)
            else (other._rev, self._rev)
        )
        return long[: len(short)] == short

    def clone(self) -> "StreamCodec":
        """Deep copy (merged sketches get an independent vocabulary)."""
        twin = StreamCodec()
        twin._codes = dict(self._codes)
        twin._rev = list(self._rev)
        return twin
