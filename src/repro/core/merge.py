"""Merging Space Saving summaries (the Independent Structures design).

In the shared-nothing scheme (Section 4.1 of the paper) every thread runs
a private Space Saving instance over its stream partition; to answer a
query the local structures must be *merged* into a global summary.  The
paper evaluates two strategies:

* **Serial merge** — one thread folds all ``p`` local structures, costing
  O(p * m) counter visits per query;
* **Hierarchical merge** — pairwise merges arranged like merge sort's
  merge phase: log2(p) levels, each ending in a barrier.  In theory this
  parallelizes the fold; in practice the per-level synchronization eats
  the gains, which Figure 3(a)'s discussion points out.

Both strategies produce identical results; only their cost (modelled in
:mod:`repro.parallel.independent`) differs.  The merge rule follows the
mergeable-summaries construction: counts of common elements add up,
and an element *missing* from some part may have been evicted there, so
that part contributes its minimum frequency to the element's *error*
(but not to its count — estimates stay upper bounds of true counts only
when the true-count mass is split across parts, which partitioned streams
guarantee).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.counters import CounterEntry, Element
from repro.core.space_saving import SpaceSaving
from repro.errors import MergeError


def merge_space_saving(
    parts: Sequence[SpaceSaving], capacity: int = 0
) -> SpaceSaving:
    """Merge local Space Saving instances into one global summary.

    ``capacity`` defaults to the largest capacity among the parts.
    """
    if not parts:
        raise MergeError("cannot merge an empty list of summaries")
    if capacity <= 0:
        capacity = max(part.capacity for part in parts)
    counts: Dict[Element, int] = {}
    errors: Dict[Element, int] = {}
    total = 0
    for part in parts:
        total += part.processed
        for entry in part.entries():
            counts[entry.element] = counts.get(entry.element, 0) + entry.count
            errors[entry.element] = errors.get(entry.element, 0) + entry.error
    # An element absent from a part could have accumulated up to that
    # part's minimum frequency before being evicted: widen its error.
    for part in parts:
        min_freq = part.summary.min_freq if len(part) >= part.capacity else 0
        if min_freq == 0:
            continue
        for element in counts:
            if element not in part.summary:
                errors[element] += min_freq
    merged_entries = [
        CounterEntry(element, count, errors[element])
        for element, count in counts.items()
    ]
    return SpaceSaving.from_entries(capacity, merged_entries, total)


def hierarchical_merge(
    parts: Sequence[SpaceSaving], capacity: int = 0
) -> SpaceSaving:
    """Pairwise tree merge; result is identical to :func:`merge_space_saving`.

    The fold happens level-by-level, mirroring the merge schedule of the
    hierarchical strategy (the paper's point is that the *cost*, not the
    answer, differs).  The absence-widening must always be charged against
    the *original* parts, never against intermediate results — an element
    missing from a subtree is missing from every original part under it,
    so each node carries the sum of min-frequencies of the full parts it
    covers (its "penalty") and widening adds the sibling's penalty.
    Re-deriving min-frequencies from intermediate summaries instead would
    both miss widening (an intermediate built from non-full parts looks
    non-full) and invent it (an intermediate sized exactly to its entry
    count looks full even though nothing was ever evicted).
    """
    if not parts:
        raise MergeError("cannot merge an empty list of summaries")
    if capacity <= 0:
        capacity = max(part.capacity for part in parts)

    def _leaf(part: SpaceSaving) -> Tuple[Dict, Dict, int, int]:
        counts: Dict[Element, int] = {}
        errors: Dict[Element, int] = {}
        for entry in part.entries():
            counts[entry.element] = entry.count
            errors[entry.element] = entry.error
        full = len(part) >= part.capacity
        penalty = part.summary.min_freq if full else 0
        return counts, errors, part.processed, penalty

    def _combine(a, b):
        counts_a, errors_a, processed_a, penalty_a = a
        counts_b, errors_b, processed_b, penalty_b = b
        counts = dict(counts_a)
        errors = dict(errors_a)
        for element, count in counts_b.items():
            counts[element] = counts.get(element, 0) + count
            errors[element] = errors.get(element, 0) + errors_b[element]
        for element in counts_a:
            if element not in counts_b:
                errors[element] += penalty_b
        for element in counts_b:
            if element not in counts_a:
                errors[element] += penalty_a
        return counts, errors, processed_a + processed_b, penalty_a + penalty_b

    level = [_leaf(part) for part in parts]
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level) - 1, 2):
            next_level.append(_combine(level[i], level[i + 1]))
        if len(level) % 2 == 1:
            next_level.append(level[-1])
        level = next_level
    counts, errors, processed, _ = level[0]
    merged_entries = [
        CounterEntry(element, count, errors[element])
        for element, count in counts.items()
    ]
    # from_entries truncates deterministically (count, then element), so
    # the kept set matches the serial fold's even at tie boundaries.
    return SpaceSaving.from_entries(capacity, merged_entries, processed)


def merge_schedule(parties: int) -> List[List[Tuple[int, int]]]:
    """The pairing schedule of a hierarchical merge over ``parties`` inputs.

    Returns one list per level; each pair ``(i, j)`` says structure ``j``
    is folded into structure ``i`` at that level.  The Independent
    Structures simulation uses this to charge per-level work and barriers.
    """
    if parties < 1:
        raise MergeError(f"parties must be >= 1, got {parties}")
    schedule: List[List[Tuple[int, int]]] = []
    active = list(range(parties))
    while len(active) > 1:
        level = []
        survivors = []
        for i in range(0, len(active) - 1, 2):
            level.append((active[i], active[i + 1]))
            survivors.append(active[i])
        if len(active) % 2 == 1:
            survivors.append(active[-1])
        schedule.append(level)
        active = survivors
    return schedule
