"""Sequential frequency-counting algorithms and the stream query model.

The star of the package is :class:`~repro.core.space_saving.SpaceSaving`
on the :class:`~repro.core.stream_summary.StreamSummary` structure — the
algorithm the paper adapts into the CoTS framework.  The siblings
(Lossy Counting, Misra-Gries, Sticky Sampling, Count-Min, Count Sketch)
are the related-work baselines of Sections 1–2.
"""

from repro.core.counters import (
    CounterEntry,
    Element,
    ExactCounter,
    FrequencyCounter,
)
from repro.core.lossy_counting import LossyCounting
from repro.core.merge import hierarchical_merge, merge_schedule, merge_space_saving
from repro.core.misra_gries import MisraGries
from repro.core.queries import (
    FrequentSetQuery,
    IntervalSchedule,
    PointFrequentQuery,
    PointTopKQuery,
    Query,
    ScheduledAnswer,
    TopKSetQuery,
    answer,
    answer_all,
    drive,
)
from repro.core.render import render_concurrent_summary, render_summary
from repro.core.sample_and_hold import SampleAndHold
from repro.core.sketches import CountMinSketch, CountSketch
from repro.core.space_saving import SpaceSaving
from repro.core.sticky_sampling import StickySampling
from repro.core.stream_summary import StreamSummary, SummaryBucket, SummaryNode
from repro.core.windowed import WindowedSpaceSaving

__all__ = [
    "CountMinSketch",
    "CountSketch",
    "CounterEntry",
    "Element",
    "ExactCounter",
    "FrequencyCounter",
    "FrequentSetQuery",
    "IntervalSchedule",
    "LossyCounting",
    "MisraGries",
    "PointFrequentQuery",
    "PointTopKQuery",
    "Query",
    "SampleAndHold",
    "ScheduledAnswer",
    "SpaceSaving",
    "StickySampling",
    "StreamSummary",
    "SummaryBucket",
    "SummaryNode",
    "TopKSetQuery",
    "WindowedSpaceSaving",
    "answer",
    "answer_all",
    "drive",
    "hierarchical_merge",
    "merge_schedule",
    "merge_space_saving",
    "render_concurrent_summary",
    "render_summary",
]
