"""The Stream Summary structure (Demaine et al.; Metwally et al.).

A doubly-linked list of *frequency buckets*, each holding the set of
monitored elements that currently share the bucket's frequency (Figure 2
of the paper).  The structure keeps elements sorted by frequency at O(1)
cost per increment: bumping an element by one either moves it to the
neighbouring bucket (if its frequency matches) or splices in a new bucket
between the two.

This sequential version is used by :class:`~repro.core.space_saving.
SpaceSaving` and by each local structure of the Independent Structures
scheme; the CoTS framework uses its own concurrent variant
(:mod:`repro.cots.summary`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.counters import CounterEntry, Element
from repro.errors import ReproError


class SummaryNode:
    """One monitored element: its count, error and owning bucket."""

    __slots__ = ("element", "error", "bucket", "prev", "next")

    def __init__(self, element: Element, error: int = 0) -> None:
        self.element = element
        self.error = error
        self.bucket: Optional["SummaryBucket"] = None
        self.prev: Optional["SummaryNode"] = None
        self.next: Optional["SummaryNode"] = None

    @property
    def count(self) -> int:
        """The element's current estimated frequency (= bucket frequency)."""
        if self.bucket is None:
            raise ReproError(f"node for {self.element!r} is detached")
        return self.bucket.freq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        freq = self.bucket.freq if self.bucket is not None else None
        return f"SummaryNode({self.element!r}, count={freq}, err={self.error})"


class SummaryBucket:
    """A frequency bucket: an intrusive list of nodes sharing one count."""

    __slots__ = ("freq", "head", "tail", "size", "prev", "next")

    def __init__(self, freq: int) -> None:
        self.freq = freq
        self.head: Optional[SummaryNode] = None
        self.tail: Optional[SummaryNode] = None
        self.size = 0
        self.prev: Optional["SummaryBucket"] = None  # lower frequency
        self.next: Optional["SummaryBucket"] = None  # higher frequency

    def attach(self, node: SummaryNode) -> None:
        """Append ``node`` to this bucket."""
        node.bucket = self
        node.prev = self.tail
        node.next = None
        if self.tail is not None:
            self.tail.next = node
        self.tail = node
        if self.head is None:
            self.head = node
        self.size += 1

    def detach(self, node: SummaryNode) -> None:
        """Remove ``node`` from this bucket."""
        if node.bucket is not self:
            raise ReproError(
                f"node {node.element!r} is not in bucket freq={self.freq}"
            )
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self.head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self.tail = node.prev
        node.prev = node.next = None
        node.bucket = None
        self.size -= 1

    def nodes(self) -> Iterator[SummaryNode]:
        """Iterate the bucket's nodes in insertion order."""
        node = self.head
        while node is not None:
            # capture next before the caller might detach the node
            following = node.next
            yield node
            node = following

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SummaryBucket(freq={self.freq}, size={self.size})"


class StreamSummary:
    """Doubly-linked bucket list keeping elements sorted by frequency.

    All mutating operations are O(1) for unit increments; ``increment``
    with a larger ``by`` (bulk increments, needed when adapting CoTS
    semantics or when merging) walks forward past at most the number of
    distinct frequencies skipped.
    """

    def __init__(self) -> None:
        self._nodes: Dict[Element, SummaryNode] = {}
        self._min: Optional[SummaryBucket] = None
        self._max: Optional[SummaryBucket] = None
        self._total = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, element: Element) -> bool:
        return element in self._nodes

    @property
    def total_count(self) -> int:
        """Sum of all monitored counts (equals N when |A| fits)."""
        return self._total

    @property
    def min_freq(self) -> int:
        """Frequency of the minimum bucket (0 when empty)."""
        return self._min.freq if self._min is not None else 0

    @property
    def max_freq(self) -> int:
        """Frequency of the maximum bucket (0 when empty)."""
        return self._max.freq if self._max is not None else 0

    def node(self, element: Element) -> Optional[SummaryNode]:
        """Return the node monitoring ``element``, or None."""
        return self._nodes.get(element)

    def count(self, element: Element) -> int:
        """Estimated frequency of ``element`` (0 if not monitored)."""
        node = self._nodes.get(element)
        return node.count if node is not None else 0

    def buckets(self) -> Iterator[SummaryBucket]:
        """Iterate buckets in ascending frequency order."""
        bucket = self._min
        while bucket is not None:
            following = bucket.next
            yield bucket
            bucket = following

    def buckets_desc(self) -> Iterator[SummaryBucket]:
        """Iterate buckets in descending frequency order (query order)."""
        bucket = self._max
        while bucket is not None:
            preceding = bucket.prev
            yield bucket
            bucket = preceding

    def entries(self) -> List[CounterEntry]:
        """All monitored elements, sorted by descending count."""
        result: List[CounterEntry] = []
        for bucket in self.buckets_desc():
            for node in bucket.nodes():
                result.append(
                    CounterEntry(node.element, bucket.freq, node.error)
                )
        return result

    def min_node(self) -> Optional[SummaryNode]:
        """Any node in the minimum-frequency bucket (overwrite victim)."""
        if self._min is None:
            return None
        return self._min.head

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(
        self,
        element: Element,
        count: int = 1,
        error: int = 0,
        hint: Optional[SummaryBucket] = None,
    ) -> SummaryNode:
        """Start monitoring ``element`` with the given count and error.

        ``hint`` must be a live bucket with frequency <= ``count`` (the
        bucket search walks forward from it instead of from the
        minimum).  Bulk builders inserting in ascending count order pass
        the previous insert's bucket and get O(1) placement instead of
        a full bucket-list walk per entry.
        """
        if element in self._nodes:
            raise ReproError(f"element {element!r} already monitored")
        if count < 1:
            raise ReproError(f"count must be >= 1, got {count}")
        node = SummaryNode(element, error=error)
        self._nodes[element] = node
        bucket = self._bucket_at_or_insert(
            count, hint=hint if hint is not None else self._min
        )
        bucket.attach(node)
        self._total += count
        return node

    def build_ascending(self, triples) -> None:
        """Bulk-insert ``(element, count, error)`` rows pre-sorted by
        ascending count into an **empty or lower-frequency** summary.

        Every count must be >= the current maximum frequency (trivially
        true on a fresh summary), so each row either joins the current
        maximum bucket or appends a new one — no bucket search at all.
        The bulk builders behind merge/snapshot paths
        (:meth:`SpaceSaving.from_entries`) call this; ad-hoc inserts
        should keep using :meth:`insert`.
        """
        bucket = self._max
        for element, count, error in triples:
            if element in self._nodes:
                raise ReproError(f"element {element!r} already monitored")
            if count < 1:
                raise ReproError(f"count must be >= 1, got {count}")
            if bucket is not None and count < bucket.freq:
                raise ReproError(
                    "build_ascending rows must be sorted by ascending "
                    f"count (got {count} after {bucket.freq})"
                )
            node = SummaryNode(element, error=error)
            self._nodes[element] = node
            if bucket is None:
                bucket = SummaryBucket(count)
                self._min = self._max = bucket
            elif count > bucket.freq:
                following = SummaryBucket(count)
                following.prev = bucket
                bucket.next = following
                self._max = following
                bucket = following
            bucket.attach(node)
            self._total += count

    def increment(self, element: Element, by: int = 1) -> SummaryNode:
        """Raise ``element``'s count by ``by``, keeping the sort order."""
        node = self._nodes.get(element)
        if node is None:
            raise ReproError(f"element {element!r} is not monitored")
        if by < 1:
            raise ReproError(f"increment must be >= 1, got {by}")
        return self.increment_node(node, by)

    def increment_node(self, node: SummaryNode, by: int = 1) -> SummaryNode:
        """Raise ``node``'s count by ``by`` (caller pre-validated inputs).

        Two fast lanes cover the common cases under skew before falling
        back to the general bucket walk:

        * the node is alone in its bucket and no bucket exists at the
          target frequency — bump the bucket's frequency in place (no
          detach, splice or allocation);
        * the neighbouring bucket already sits at exactly ``freq + by`` —
          move the node straight across without searching.
        """
        source = node.bucket
        target_freq = source.freq + by
        nxt = source.next
        if source.size == 1:
            if nxt is None or nxt.freq > target_freq:
                source.freq = target_freq
                self._total += by
                return node
        elif nxt is not None and nxt.freq == target_freq:
            source.detach(node)
            nxt.attach(node)
            self._total += by
            return node
        source.detach(node)
        target = self._bucket_at_or_insert(target_freq, hint=source)
        target.attach(node)
        if source.size == 0:
            self._remove_bucket(source)
        self._total += by
        return node

    def evict_min(self) -> SummaryNode:
        """Remove and return one element from the minimum bucket."""
        victim = self.min_node()
        if victim is None:
            raise ReproError("summary is empty; nothing to evict")
        bucket = victim.bucket
        bucket.detach(victim)
        self._total -= bucket.freq
        if bucket.size == 0:
            self._remove_bucket(bucket)
        del self._nodes[victim.element]
        return victim

    def remove(self, element: Element) -> SummaryNode:
        """Stop monitoring ``element`` and return its node."""
        node = self._nodes.pop(element, None)
        if node is None:
            raise ReproError(f"element {element!r} is not monitored")
        bucket = node.bucket
        bucket.detach(node)
        self._total -= bucket.freq
        if bucket.size == 0:
            self._remove_bucket(bucket)
        return node

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bucket_at_or_insert(
        self, freq: int, hint: Optional[SummaryBucket]
    ) -> SummaryBucket:
        """Find (or create) the bucket for ``freq``, walking from ``hint``.

        ``hint`` must be a bucket with frequency <= ``freq`` (or None when
        the list is empty / freq is below the minimum).
        """
        if self._min is None:
            bucket = SummaryBucket(freq)
            self._min = self._max = bucket
            return bucket
        if freq < self._min.freq:
            bucket = SummaryBucket(freq)
            bucket.next = self._min
            self._min.prev = bucket
            self._min = bucket
            return bucket
        cursor = hint if hint is not None and hint.freq <= freq else self._min
        while cursor.next is not None and cursor.next.freq <= freq:
            cursor = cursor.next
        if cursor.freq == freq:
            return cursor
        bucket = SummaryBucket(freq)
        bucket.prev = cursor
        bucket.next = cursor.next
        if cursor.next is not None:
            cursor.next.prev = bucket
        else:
            self._max = bucket
        cursor.next = bucket
        return bucket

    def _remove_bucket(self, bucket: SummaryBucket) -> None:
        if bucket.size != 0:
            raise ReproError(
                f"cannot remove non-empty bucket freq={bucket.freq}"
            )
        if bucket.prev is not None:
            bucket.prev.next = bucket.next
        else:
            self._min = bucket.next
        if bucket.next is not None:
            bucket.next.prev = bucket.prev
        else:
            self._max = bucket.prev

    # ------------------------------------------------------------------
    # Validation (used heavily by the test-suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`ReproError` if any structural invariant is broken.

        Checks: strictly ascending bucket frequencies, consistent
        prev/next links, bucket sizes, node-bucket back pointers, the
        min/max pointers, and the cached total count.
        """
        seen = 0
        total = 0
        prev_bucket: Optional[SummaryBucket] = None
        bucket = self._min
        while bucket is not None:
            if bucket.prev is not prev_bucket:
                raise ReproError("broken prev link in bucket list")
            if prev_bucket is not None and bucket.freq <= prev_bucket.freq:
                raise ReproError(
                    f"bucket frequencies not ascending: "
                    f"{prev_bucket.freq} -> {bucket.freq}"
                )
            if bucket.size == 0:
                raise ReproError(f"empty bucket freq={bucket.freq} retained")
            count = 0
            for node in bucket.nodes():
                if node.bucket is not bucket:
                    raise ReproError(
                        f"node {node.element!r} has a stale bucket pointer"
                    )
                if self._nodes.get(node.element) is not node:
                    raise ReproError(
                        f"node {node.element!r} missing from the index"
                    )
                count += 1
            if count != bucket.size:
                raise ReproError(
                    f"bucket freq={bucket.freq} size {bucket.size} != {count}"
                )
            seen += count
            total += count * bucket.freq
            prev_bucket = bucket
            bucket = bucket.next
        if prev_bucket is not self._max:
            raise ReproError("max pointer does not reach the last bucket")
        if seen != len(self._nodes):
            raise ReproError(
                f"index holds {len(self._nodes)} nodes but buckets hold {seen}"
            )
        if total != self._total:
            raise ReproError(
                f"cached total {self._total} != recomputed {total}"
            )

    def frequencies(self) -> List[Tuple[int, int]]:
        """(frequency, bucket size) pairs in ascending frequency order."""
        return [(bucket.freq, bucket.size) for bucket in self.buckets()]
