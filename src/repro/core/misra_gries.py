"""The Misra-Gries / Frequent algorithm (Misra & Gries 1982; Demaine et
al., ESA 2002).

Keeps at most ``k`` counters.  A new element either takes a free counter
or, if all ``k`` are in use, *decrements every counter by one*, discarding
those that reach zero — the streaming generalization of the
Boyer-Moore majority vote.  Estimates *under*count by at most
``N / (k + 1)``.

Included as the second classic counter-based technique the paper cites
([15, 9, 16] in Section 1), and as an accuracy baseline for the
Cormode-style comparison example.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.counters import CounterEntry, Element
from repro.errors import ConfigurationError


class MisraGries:
    """Frequent algorithm with ``k`` counters (deterministic)."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self._counts: Dict[Element, int] = {}
        self._processed = 0
        self._decrements = 0

    def process(self, element: Element) -> None:
        """Consume one stream element."""
        counts = self._counts
        if element in counts:
            counts[element] += 1
        elif len(counts) < self.k:
            counts[element] = 1
        else:
            self._decrements += 1
            for monitored in list(counts):
                remaining = counts[monitored] - 1
                if remaining == 0:
                    del counts[monitored]
                else:
                    counts[monitored] = remaining
        self._processed += 1

    def process_many(self, elements: Iterable[Element]) -> None:
        """Consume every element of an iterable."""
        for element in elements:
            self.process(element)

    @property
    def processed(self) -> int:
        """Number of stream elements consumed."""
        return self._processed

    @property
    def decrements(self) -> int:
        """How many global decrement rounds have happened."""
        return self._decrements

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, element: Element) -> bool:
        return element in self._counts

    def estimate(self, element: Element) -> int:
        """Estimated frequency; undercounts by at most ``N / (k + 1)``."""
        return self._counts.get(element, 0)

    def entries(self) -> List[CounterEntry]:
        """Monitored elements sorted by descending estimated count.

        ``error`` is the uniform undercount bound ``decrements`` (every
        counter has been decremented at most that many times).
        """
        ordered = sorted(
            self._counts.items(), key=lambda item: (-item[1], repr(item[0]))
        )
        return [
            CounterEntry(element, count, self._decrements)
            for element, count in ordered
        ]

    def frequent(self, phi: float) -> List[CounterEntry]:
        """Candidate elements with estimated count > ``(phi * N) - N/(k+1)``.

        Contains every element with true frequency above ``phi * N``
        (no false negatives) provided ``phi > 1 / (k + 1)``.
        """
        if not 0 < phi < 1:
            raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self._processed - self._processed / (self.k + 1)
        return [entry for entry in self.entries() if entry.count > threshold]

    def top_k(self, k: int) -> List[CounterEntry]:
        """The ``k`` monitored elements with the highest estimates."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return self.entries()[:k]
