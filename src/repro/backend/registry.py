"""Name -> Backend factory registry (the one switchboard).

Every layer that lets a user pick a counting engine — ``scenarios
--backend``, the bench suites, the conformance tests — resolves the
name here, so adding a backend is one entry, not four call sites.

Factories take one uniform keyword set and ignore what they don't use
(a sequential counter has no ``workers``); that keeps the call sites
engine-agnostic, which is the entire point of the protocol.
"""

from __future__ import annotations

from typing import Optional

from repro.backend.adapters import (
    CotsSimBackend,
    MPBackend,
    NativeThreadsBackend,
    SequentialBackend,
    SketchCMBackend,
    SketchCMVecBackend,
    SketchCSVecBackend,
)
from repro.backend.base import Backend
from repro.errors import ConfigurationError

#: every registered backend name, in documentation order
BACKEND_NAMES = (
    "sequential",
    "cots-sim",
    "native-threads",
    "mp-shm",
    "mp-pickle",
    "mp-one-table",
    "sketch-cm",
    "sketch-cm-vec",
    "sketch-cs-vec",
)

#: names whose summaries carry merge semantics (absence of a light
#: element is allowed within the merged error bound)
MERGED_BACKENDS = ("cots-sim", "native-threads", "mp-shm", "mp-pickle")

#: names whose summaries are sketch reads (estimates upper-bound truth
#: under a widened eps*N bound; recall is delegated to a candidate set)
SKETCH_BACKENDS = ("mp-one-table", "sketch-cm", "sketch-cm-vec",
                   "sketch-cs-vec")


def create_backend(
    name: str,
    *,
    capacity: int = 256,
    threads: int = 4,
    workers: int = 2,
    chunk_elements: int = 32_768,
    timeout: float = 60.0,
    epsilon: float = 0.001,
    delta: float = 0.01,
    seed: Optional[int] = 0,
    metrics=None,
) -> Backend:
    """Build a started backend by registry name.

    ``capacity`` budgets the counter/candidate set everywhere;
    ``threads`` drives the simulated and native-thread engines;
    ``workers``/``chunk_elements``/``timeout`` the multiprocess pools;
    ``epsilon``/``delta``/``seed`` the sketch tables.  Unknown names
    raise :class:`~repro.errors.ConfigurationError` listing the
    registry.
    """
    if name == "sequential":
        return SequentialBackend(capacity=capacity, metrics=metrics)
    if name == "cots-sim":
        return CotsSimBackend(
            capacity=capacity, threads=threads, metrics=metrics
        )
    if name == "native-threads":
        return NativeThreadsBackend(
            capacity=capacity, threads=threads, metrics=metrics
        )
    if name in ("mp-shm", "mp-pickle", "mp-one-table"):
        from repro.mp.config import MPConfig

        config = MPConfig(
            workers=workers,
            capacity=capacity,
            chunk_elements=chunk_elements,
            timeout=timeout,
            transport="pickle" if name == "mp-pickle" else "shm",
            mode="one_table" if name == "mp-one-table" else "sharded",
            sketch_epsilon=epsilon,
            sketch_delta=delta,
            sketch_seed=seed,
        )
        return MPBackend(config, name=name, metrics=metrics)
    if name == "sketch-cm":
        return SketchCMBackend(
            capacity=capacity, epsilon=epsilon, delta=delta, seed=seed,
            metrics=metrics,
        )
    if name == "sketch-cm-vec":
        return SketchCMVecBackend(
            capacity=capacity, epsilon=epsilon, delta=delta, seed=seed,
            metrics=metrics,
        )
    if name == "sketch-cs-vec":
        return SketchCSVecBackend(
            capacity=capacity, seed=seed, metrics=metrics
        )
    raise ConfigurationError(
        f"unknown backend {name!r}; registered: {list(BACKEND_NAMES)}"
    )
