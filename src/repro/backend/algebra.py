"""The mergeable-summary algebra: serialize / deserialize / merge / widen.

Any backend's snapshot state is one of three summary kinds — a
:class:`~repro.core.space_saving.SpaceSaving` counter set, a
:class:`~repro.core.sketches.count_min.CountMinSketch` table or a
:class:`~repro.core.sketches.count_sketch.CountSketch` table — and the
distributed/serving tiers need the same four operations on all of them:

``serialize`` / ``deserialize``
    A plain-dict wire form that round-trips **bit-exactly** (tables,
    counts, errors, processed totals, hash parameters, vocabularies).
``merge``
    A *pure* fold of two summaries of the same kind into one whose
    estimates dominate each part's (never an underestimate of the
    combined stream) — Space Saving via the repo's guaranteed merge,
    sketch tables by cell-wise addition (requires identical geometry,
    hash parameters and aligned codecs; raises otherwise).
``widen``
    A *pure* copy whose advertised error bound grew by ``slack``
    occurrences — how unsynchronized overcounts (one-table bands),
    bounded staleness and transport-induced uncertainty are charged.
    Widening is monotone and never touches counts.

The Hypothesis property tests in ``tests/backend/test_algebra.py`` pin
dominance, monotone widening and exact round-trips for every kind.
"""

from __future__ import annotations

from typing import Any, Dict, Union

from repro.core.counters import CounterEntry
from repro.core.merge import merge_space_saving
from repro.core.sketches.count_min import CountMinSketch
from repro.core.sketches.count_sketch import CountSketch
from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError

Summary = Union[SpaceSaving, CountMinSketch, CountSketch]

#: wire-form ``kind`` discriminators
KIND_SPACE_SAVING = "space-saving"
KIND_COUNT_MIN = "count-min"
KIND_COUNT_SKETCH = "count-sketch"


def serialize(summary: Summary) -> Dict[str, Any]:
    """Plain-dict wire form; ``deserialize`` restores it bit-exactly."""
    if isinstance(summary, SpaceSaving):
        return {
            "kind": KIND_SPACE_SAVING,
            "capacity": summary.capacity,
            "processed": summary.processed,
            "entries": [
                [entry.element, entry.count, entry.error]
                for entry in summary.entries()
            ],
        }
    if isinstance(summary, (CountMinSketch, CountSketch)):
        return summary.serialize()
    raise ConfigurationError(
        f"not a mergeable summary: {type(summary).__name__}"
    )


def deserialize(doc: Dict[str, Any]) -> Summary:
    """Inverse of :func:`serialize` for every summary kind."""
    kind = doc.get("kind")
    if kind == KIND_SPACE_SAVING:
        return SpaceSaving.from_entries(
            doc["capacity"],
            [CounterEntry(e, count, error)
             for e, count, error in doc["entries"]],
            doc["processed"],
        )
    if kind == KIND_COUNT_MIN:
        return CountMinSketch.deserialize(doc)
    if kind == KIND_COUNT_SKETCH:
        return CountSketch.deserialize(doc)
    raise ConfigurationError(f"unknown summary kind {kind!r}")


def merge(left: Summary, right: Summary) -> Summary:
    """Pure merge of two same-kind summaries (dominating estimates).

    Space Saving folds through :func:`~repro.core.merge.
    merge_space_saving` (keeps the ``count - error <= true <= count``
    contract, absence widening included).  Sketches add tables
    cell-wise — Count-Min estimates then dominate each part's and still
    upper-bound the combined true counts; Count Sketch stays unbiased.
    """
    if isinstance(left, SpaceSaving) and isinstance(right, SpaceSaving):
        return merge_space_saving(
            [left, right], capacity=max(left.capacity, right.capacity)
        )
    if type(left) is not type(right):
        raise ConfigurationError(
            f"cannot merge {type(left).__name__} with "
            f"{type(right).__name__}"
        )
    if isinstance(left, (CountMinSketch, CountSketch)):
        return left.merge(right)
    raise ConfigurationError(
        f"not a mergeable summary: {type(left).__name__}"
    )


def widen(summary: Summary, slack: int) -> Summary:
    """A copy whose advertised error bound grew by ``slack`` (pure).

    Counts are untouched; only the uncertainty interval stretches, so
    the lower-bound contract survives any overcount source worth at
    most ``slack`` occurrences (staleness, band sharing, lossy
    transport).  For Count Sketch — whose error is an L2 quantity the
    repo reports per use site — widening round-trips the summary
    unchanged except for candidate bookkeeping and is mainly useful for
    protocol uniformity.
    """
    if slack < 0:
        raise ConfigurationError(f"slack must be >= 0, got {slack}")
    if isinstance(summary, SpaceSaving):
        return SpaceSaving.from_entries(
            summary.capacity,
            [
                CounterEntry(entry.element, entry.count, entry.error + slack)
                for entry in summary.entries()
            ],
            summary.processed,
        )
    if isinstance(summary, CountMinSketch):
        widened = CountMinSketch.deserialize(summary.serialize())
        widened.widen(slack)
        return widened
    if isinstance(summary, CountSketch):
        return CountSketch.deserialize(summary.serialize())
    raise ConfigurationError(
        f"not a mergeable summary: {type(summary).__name__}"
    )


def error_bound(summary: Summary) -> int:
    """The summary's additive error bound in occurrences."""
    if isinstance(summary, SpaceSaving):
        return summary.max_error()
    if isinstance(summary, CountMinSketch):
        return summary.error_bound()
    if isinstance(summary, CountSketch):
        # L2-flavoured bound surfaced as an occurrence count: the repo
        # reports CountSketch error per use site; 0 marks "no additive
        # L1 contract" rather than "exact"
        return 0
    raise ConfigurationError(
        f"not a mergeable summary: {type(summary).__name__}"
    )
