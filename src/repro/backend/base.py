"""The unified Backend protocol every counting engine implements.

Before PR 8 the repo had three incompatible driver shapes: the
simulated schemes (``run_*(stream, SchemeConfig) -> SchemeResult``), the
multiprocess driver (``run_mp(stream, MPConfig) -> MPResult``) and the
native-thread classes (construct, ``count``, ``merged``).  Every layer
above them — bench, scenarios, CLI, experiments — carried its own
adapter glue.  This package collapses them to one small surface:

``ingest(batch)``
    Feed a batch of stream elements; returns the number ingested.
    Callable repeatedly — backends are incremental (the simulated
    drivers, which must replay a whole stream, buffer internally and
    say so in their docs).
``snapshot()``
    A :class:`Snapshot`: the queryable state *now* — entries, processed
    total, the additive error bound, and backend-specific extras.
``query(k)`` / ``estimate(element)``
    Convenience queries over the current snapshot semantics: top-k
    entries and a point estimate.
``close()``
    Release processes/shm/threads.  Idempotent; a closed backend only
    rejects further ``ingest``.

The contract all implementations share (pinned by the conformance
tests): estimates upper-bound true counts, ``count - error`` lower
bounds them, ``processed`` equals the total ingested weight, and
``snapshot()`` reflects every batch ingested before the call.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Hashable, Iterator, List, Protocol, Sequence

from repro.core.counters import CounterEntry

Element = Hashable


@dataclasses.dataclass(frozen=True)
class Snapshot:
    """One queryable view of a backend's state (a mergeable summary).

    Frozen: a snapshot is an immutable point-in-time view, which is
    what lets the serve tier answer any number of concurrent queries
    from one snapshot without synchronizing with ingest.
    """

    scheme: str                     #: backend registry name
    processed: int                  #: total ingested occurrences
    entries: List[CounterEntry]     #: candidates, descending estimate
    error_bound: int                #: additive bound on any estimate
    extras: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def top_k(self, k: int) -> List[CounterEntry]:
        return self.entries[:k]

    def __iter__(self) -> Iterator[CounterEntry]:
        return iter(self.entries)


class Backend(Protocol):
    """Structural protocol — adapters need not inherit anything."""

    name: str

    def ingest(self, batch: Sequence[Element]) -> int:
        """Feed one batch; returns the number of elements ingested."""
        ...

    def snapshot(self) -> Snapshot:
        """The queryable state reflecting all prior ``ingest`` calls."""
        ...

    def query(self, k: int = 10) -> List[CounterEntry]:
        """Top-k entries of the current state."""
        ...

    def estimate(self, element: Element) -> int:
        """Point estimate for one element (0 if unknown)."""
        ...

    def close(self) -> None:
        """Release resources; idempotent."""
        ...
