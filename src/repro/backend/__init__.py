"""One protocol over every counting engine (PR 8, ROADMAP item 3).

``Backend`` (``ingest`` / ``snapshot`` / ``query`` / ``close``) is the
single driver surface for the sequential baseline, the simulated CoTS
framework, the native-thread shards, both multiprocess modes (sharded
and one-table) and the sketch engines; :mod:`repro.backend.algebra`
gives their summaries a uniform serialize/merge/widen algebra so any
backend's answer composes with any other's.

>>> from repro.backend import create_backend
>>> with_backend = create_backend("mp-one-table", workers=4)
>>> with_backend.ingest(stream)
>>> with_backend.query(k=10)
"""

from repro.backend.adapters import (
    CotsSimBackend,
    MPBackend,
    NativeThreadsBackend,
    SequentialBackend,
    SketchCMBackend,
    SketchCMVecBackend,
    SketchCSVecBackend,
)
from repro.backend.algebra import (
    deserialize,
    error_bound,
    merge,
    serialize,
    widen,
)
from repro.backend.base import Backend, Snapshot
from repro.backend.registry import (
    BACKEND_NAMES,
    MERGED_BACKENDS,
    SKETCH_BACKENDS,
    create_backend,
)

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "CotsSimBackend",
    "MERGED_BACKENDS",
    "MPBackend",
    "NativeThreadsBackend",
    "SKETCH_BACKENDS",
    "SequentialBackend",
    "SketchCMBackend",
    "SketchCMVecBackend",
    "SketchCSVecBackend",
    "Snapshot",
    "create_backend",
    "deserialize",
    "error_bound",
    "merge",
    "serialize",
    "widen",
]
