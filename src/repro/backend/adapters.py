"""Backend-protocol adapters over every counting engine in the repo.

Each adapter is a thin, metered shell: ``backend.ingest.items`` /
``backend.ingest.batches`` count what flows in, and
``backend.snapshot.seconds`` times the query path — the same three
instruments for every engine, which is what makes the bench ladders and
the scenario matrix directly comparable across designs.

Two engine families need a note:

* **Replay adapters** (``cots-sim``): the simulated-CMP drivers replay
  a complete stream through the simulator, so the adapter buffers
  ingested batches and re-runs the driver per snapshot.  That is the
  honest cost of querying a simulation mid-stream; the conformance
  tests treat it like any other backend.
* **Sketch adapters** (``sketch-cm``, ``sketch-cm-vec``,
  ``sketch-cs-vec``): a pure sketch cannot enumerate keys, so the
  vectorized adapters pair the table with a bounded Space Saving
  *candidate identifier* fed from each chunk's heaviest codes (the same
  scheme the one-table pool uses).  Every reported count is read from
  the sketch table; the identifier only chooses *which* keys to report.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.backend.base import Element, Snapshot
from repro.core.counters import CounterEntry
from repro.core.sketches.count_min import CountMinSketch
from repro.core.sketches.count_sketch import CountSketch
from repro.core.space_saving import SpaceSaving
from repro.errors import BackendError
from repro.obs.registry import TIME_BUCKETS, coerce


class _Instrumented:
    """Shared metering + life-cycle plumbing for every adapter."""

    name = "abstract"

    def __init__(self, metrics=None) -> None:
        self.metrics = coerce(metrics)
        self._m_items = self.metrics.counter("backend.ingest.items")
        self._m_batches = self.metrics.counter("backend.ingest.batches")
        self._m_snapshot_seconds = self.metrics.histogram(
            "backend.snapshot.seconds", buckets=TIME_BUCKETS
        )
        self._closed = False

    def _ensure_open(self) -> None:
        if self._closed:
            raise BackendError(f"backend {self.name!r} is closed")

    def _meter_ingest(self, items: int) -> int:
        self._m_items.inc(items)
        self._m_batches.inc()
        return items

    def query(self, k: int = 10) -> List[CounterEntry]:
        return self.snapshot().top_k(k)

    def close(self) -> None:
        self._closed = True


class SequentialBackend(_Instrumented):
    """Plain Space Saving on the caller's thread (the baseline)."""

    name = "sequential"

    def __init__(self, capacity: int = 256, metrics=None) -> None:
        super().__init__(metrics)
        self._counter = SpaceSaving(capacity=capacity)

    def ingest(self, batch: Sequence[Element]) -> int:
        self._ensure_open()
        self._counter.process_many(batch)
        return self._meter_ingest(len(batch))

    def snapshot(self) -> Snapshot:
        started = time.perf_counter()
        snap = Snapshot(
            scheme=self.name,
            processed=self._counter.processed,
            entries=self._counter.entries(),
            error_bound=self._counter.max_error(),
        )
        self._m_snapshot_seconds.observe(time.perf_counter() - started)
        return snap

    def estimate(self, element: Element) -> int:
        return self._counter.estimate(element)


class CotsSimBackend(_Instrumented):
    """The simulated CoTS framework behind the protocol (replay adapter).

    The simulator consumes whole streams, so batches are buffered and
    each snapshot replays everything ingested so far through
    :func:`repro.cots.run_cots` — snapshot cost grows with the stream,
    which is the true price of querying a simulation, not an adapter
    artifact.
    """

    name = "cots-sim"

    def __init__(
        self, capacity: int = 256, threads: int = 4, metrics=None
    ) -> None:
        super().__init__(metrics)
        self.capacity = capacity
        self.threads = threads
        self._buffer: List[Element] = []

    def ingest(self, batch: Sequence[Element]) -> int:
        self._ensure_open()
        self._buffer.extend(batch)
        return self._meter_ingest(len(batch))

    def _run(self):
        from repro.cots import CoTSRunConfig, run_cots

        return run_cots(
            self._buffer,
            CoTSRunConfig(threads=self.threads, capacity=self.capacity),
        )

    def snapshot(self) -> Snapshot:
        started = time.perf_counter()
        counter = self._run().counter
        snap = Snapshot(
            scheme=self.name,
            processed=counter.processed,
            entries=counter.entries(),
            error_bound=counter.max_error(),
            extras={"threads": self.threads, "replayed": len(self._buffer)},
        )
        self._m_snapshot_seconds.observe(time.perf_counter() - started)
        return snap

    def estimate(self, element: Element) -> int:
        if not self._buffer:
            return 0
        return self._run().counter.estimate(element)


class NativeThreadsBackend(_Instrumented):
    """Real-thread Independent Structures (per-thread shard + merge)."""

    name = "native-threads"

    def __init__(
        self, capacity: int = 256, threads: int = 4, metrics=None
    ) -> None:
        super().__init__(metrics)
        from repro.native.sharded import ShardedSpaceSaving

        self._sharded = ShardedSpaceSaving(
            threads=threads, capacity=capacity
        )

    def ingest(self, batch: Sequence[Element]) -> int:
        self._ensure_open()
        self._sharded.count(list(batch))
        return self._meter_ingest(len(batch))

    def snapshot(self) -> Snapshot:
        started = time.perf_counter()
        merged = self._sharded.merged()
        snap = Snapshot(
            scheme=self.name,
            processed=merged.processed,
            entries=merged.entries(),
            error_bound=merged.max_error(),
            extras={"threads": self._sharded.threads},
        )
        self._m_snapshot_seconds.observe(time.perf_counter() - started)
        return snap

    def estimate(self, element: Element) -> int:
        return self._sharded.merged().estimate(element)


class MPBackend(_Instrumented):
    """Multiprocess pools (sharded shm/pickle and one-table) as backends."""

    def __init__(self, config, name: str, metrics=None) -> None:
        super().__init__(metrics)
        self.name = name
        from repro.mp.one_table import OneTablePool
        from repro.mp.pool import ShardedProcessPool

        pool_cls = (
            OneTablePool if config.mode == "one_table"
            else ShardedProcessPool
        )
        self._pool = pool_cls(config, metrics=metrics)

    def ingest(self, batch: Sequence[Element]) -> int:
        self._ensure_open()
        sent = self._pool.count(batch)
        return self._meter_ingest(sent)

    def snapshot(self) -> Snapshot:
        self._ensure_open()
        started = time.perf_counter()
        merged = self._pool.merged()
        snap = Snapshot(
            scheme=self.name,
            processed=merged.processed,
            entries=merged.entries(),
            error_bound=merged.max_error(),
            extras={
                "workers": self._pool.workers,
                "mode": self._pool.config.mode,
            },
        )
        self._m_snapshot_seconds.observe(time.perf_counter() - started)
        return snap

    def estimate(self, element: Element) -> int:
        self._ensure_open()
        return self._pool.merged().estimate(element)

    def telemetry(self) -> dict:
        """Latest worker beacons merged into one registry-shaped snapshot.

        Drains the pool's reply queue (non-blocking, failing fast on
        worker errors) and merges each worker's latest
        ``mp.beacon.<i>.*`` snapshot.  Backends without live worker
        telemetry simply do not define this method — the serve tier
        feature-detects it with ``getattr``.
        """
        self._ensure_open()
        self._pool.poll_beacons()
        return self._pool.beacon_snapshot()

    def close(self) -> None:
        if not self._closed:
            self._pool.close()
        super().close()


class SketchCMBackend(_Instrumented):
    """Scalar Count-Min behind the protocol (the differential reference)."""

    name = "sketch-cm"

    def __init__(
        self,
        capacity: int = 256,
        epsilon: float = 0.001,
        delta: float = 0.01,
        seed: Optional[int] = 0,
        metrics=None,
    ) -> None:
        super().__init__(metrics)
        self._sketch = CountMinSketch(
            epsilon=epsilon, delta=delta, seed=seed,
            track_candidates=capacity,
        )

    def ingest(self, batch: Sequence[Element]) -> int:
        self._ensure_open()
        self._sketch.process_many(batch)
        return self._meter_ingest(len(batch))

    def snapshot(self) -> Snapshot:
        started = time.perf_counter()
        snap = Snapshot(
            scheme=self.name,
            processed=self._sketch.processed,
            entries=self._sketch.entries(),
            error_bound=self._sketch.error_bound(),
            extras={
                "depth": self._sketch.depth,
                "width": self._sketch.width,
            },
        )
        self._m_snapshot_seconds.observe(time.perf_counter() - started)
        return snap

    def estimate(self, element: Element) -> int:
        return self._sketch.estimate(element)


class _VectorSketchBackend(_Instrumented):
    """Shared ingest loop of the vectorized sketch backends.

    Chunks are coded through the sketch's own codec and land via the
    vectorized ``process_weighted`` lane; each chunk's heaviest codes
    feed the bounded candidate identifier (counts are never taken from
    it — every reported number is a table read).
    """

    def __init__(self, sketch, capacity: int, metrics=None) -> None:
        super().__init__(metrics)
        self._sketch = sketch
        self._capacity = capacity
        self._hot = SpaceSaving(capacity=capacity)
        self._m_updates = self.metrics.counter("sketch.updates")
        self._m_cells = self.metrics.counter("sketch.cells_touched")
        self._m_occupancy = self.metrics.gauge("sketch.table.occupancy")

    def ingest(self, batch: Sequence[Element]) -> int:
        self._ensure_open()
        codes, weights = self._sketch.codec.encode_chunk(batch)
        self._sketch.process_weighted(codes, weights)
        n = len(codes)
        if n:
            cap = self._capacity
            if n > cap:
                top = np.argpartition(weights, n - cap)[n - cap:]
                pairs = zip(codes[top].tolist(), weights[top].tolist())
            else:
                pairs = zip(codes.tolist(), weights.tolist())
            self._hot.process_weighted(pairs)
        if self.metrics.enabled:
            self._m_updates.inc(n)
            self._m_cells.inc(n * self._sketch.depth)
        return self._meter_ingest(len(batch))

    def _error_bound(self) -> int:
        raise NotImplementedError

    def snapshot(self) -> Snapshot:
        started = time.perf_counter()
        decode = self._sketch.codec.decode
        entries = sorted(
            (
                CounterEntry(
                    decode(int(code.element)),
                    self._sketch.estimate_code(int(code.element)),
                    self._error_bound(),
                )
                for code in self._hot.entries()
            ),
            key=lambda entry: (-entry.count, repr(entry.element)),
        )
        if self.metrics.enabled:
            table = self._sketch.table
            self._m_occupancy.set(
                float(np.count_nonzero(table)) / table.size
            )
        snap = Snapshot(
            scheme=self.name,
            processed=self._sketch.processed,
            entries=entries,
            error_bound=self._error_bound(),
            extras={
                "depth": self._sketch.depth,
                "width": self._sketch.width,
            },
        )
        self._m_snapshot_seconds.observe(time.perf_counter() - started)
        return snap

    def estimate(self, element: Element) -> int:
        return self._sketch.estimate(element)


class SketchCMVecBackend(_VectorSketchBackend):
    """Vectorized Count-Min: NumPy kernels on the coded chunk lane."""

    name = "sketch-cm-vec"

    def __init__(
        self,
        capacity: int = 256,
        epsilon: float = 0.001,
        delta: float = 0.01,
        seed: Optional[int] = 0,
        conservative: bool = False,
        metrics=None,
    ) -> None:
        super().__init__(
            CountMinSketch(
                epsilon=epsilon, delta=delta, seed=seed,
                conservative=conservative,
            ),
            capacity,
            metrics,
        )

    def _error_bound(self) -> int:
        return self._sketch.error_bound()


class SketchCSVecBackend(_VectorSketchBackend):
    """Vectorized Count Sketch (median-of-signed estimates)."""

    name = "sketch-cs-vec"

    def __init__(
        self,
        capacity: int = 256,
        width: int = 4096,
        depth: int = 5,
        seed: Optional[int] = 0,
        metrics=None,
    ) -> None:
        super().__init__(
            CountSketch(width=width, depth=depth, seed=seed),
            capacity,
            metrics,
        )

    def _error_bound(self) -> int:
        # Count Sketch error is an L2 quantity; no additive L1 contract
        return 0
