"""An open-addressing search structure — the design §5.2.1 rejects.

The paper: "This application has a constant churn in the set of elements
being monitored, and therefore, there are a lot of deletions in the hash
table.  In such a case, a hash table using open addressing will have to
resize often to remove the garbage which has accumulated due to the
deletions, and designing an efficient and scalable thread safe open hash
table is quite complex."

This implementation exists to *measure* that argument: linear probing
with tombstones, a stop-the-world rehash when live entries plus
tombstones cross the load threshold, and a single table lock guarding
inserts and rehashes.  It is API-compatible with
:class:`~repro.cots.hashtable.CoTSHashTable`, so the CoTS framework runs
unchanged on top of it, and the churn ablation benchmark compares the
two under eviction-heavy workloads.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.counters import Element
from repro.cots.hashtable import TOMBSTONE, HashEntry
from repro.errors import ConfigurationError
from repro.simcore.atomics import CacheLine
from repro.simcore.costs import CostModel
from repro.simcore.effects import Compute
from repro.simcore.sync import SpinLock


class OpenAddressingTable:
    """Linear-probing table with lazy deletion and periodic rehashing."""

    def __init__(
        self,
        size: int,
        costs: CostModel,
        max_load: float = 0.7,
    ) -> None:
        if size < 4:
            raise ConfigurationError(f"size must be >= 4, got {size}")
        if not 0.1 <= max_load <= 0.95:
            raise ConfigurationError(
                f"max_load must be in [0.1, 0.95], got {max_load}"
            )
        self.size = size
        self.costs = costs
        self.max_load = max_load
        self._slots: List[Optional[HashEntry]] = [None] * size
        self._lines = [CacheLine() for _ in range(size)]
        self._lock = SpinLock("open-table")
        self.live_entries = 0
        self.dead_entries = 0
        self.rehashes = 0
        self.rehash_cycles = 0

    # ------------------------------------------------------------------
    # Internals (host-side probing; charged by callers)
    # ------------------------------------------------------------------
    def _probe(self, element: Element):
        """Yield (index, entry) pairs along the probe sequence."""
        start = hash(element) % self.size
        for offset in range(self.size):
            index = (start + offset) % self.size
            yield index, self._slots[index]

    def _occupancy(self) -> float:
        return (self.live_entries + self.dead_entries) / self.size

    # ------------------------------------------------------------------
    # Simulated operations
    # ------------------------------------------------------------------
    def lookup(self, element: Element, tag: str = "hash"):
        """Probe for a live entry; cost grows with tombstone clutter."""
        costs = self.costs
        probes = 0
        found: Optional[HashEntry] = None
        for _, entry in self._probe(element):
            probes += 1
            if entry is None:
                break
            if not entry.deleted and entry.element == element:
                found = entry
                break
        yield Compute(
            costs.hash_compute + costs.key_compare * max(1, probes), tag
        )
        return found

    def insert(self, element: Element, tag: str = "hash"):
        """Insert under the table lock, rehashing when over-loaded."""
        costs = self.costs
        yield self._lock.acquire(tag)
        if self._occupancy() >= self.max_load:
            yield from self._rehash(tag)
        existing = None
        target_index = None
        probes = 0
        for index, entry in self._probe(element):
            probes += 1
            if entry is None:
                target_index = index if target_index is None else target_index
                break
            if entry.deleted:
                if target_index is None:
                    target_index = index
                continue
            if entry.element == element:
                existing = entry
                break
        yield Compute(costs.key_compare * max(1, probes), tag)
        if existing is not None:
            yield self._lock.release(tag)
            return existing, False
        if target_index is None:  # pragma: no cover - load factor forbids
            raise ConfigurationError("open-addressing table is full")
        entry = HashEntry(element, self._lines[target_index])
        previous = self._slots[target_index]
        if previous is not None and previous.deleted:
            self.dead_entries -= 1
        self._slots[target_index] = entry
        self.live_entries += 1
        yield Compute(costs.alloc, tag)
        yield self._lock.release(tag)
        return entry, True

    def _rehash(self, tag: str):
        """Stop-the-world rebuild dropping tombstones (lock is held)."""
        costs = self.costs
        survivors = [
            entry
            for entry in self._slots
            if entry is not None and not entry.deleted
        ]
        # grow only if genuinely full of live entries; churn alone just
        # needs the garbage swept
        if len(survivors) / self.size > 0.5:
            self.size *= 2
            self._lines = [CacheLine() for _ in range(self.size)]
        self._slots = [None] * self.size
        for entry in survivors:
            start = hash(entry.element) % self.size
            for offset in range(self.size):
                index = (start + offset) % self.size
                if self._slots[index] is None:
                    self._slots[index] = entry
                    break
        self.dead_entries = 0
        self.rehashes += 1
        cycles = costs.alloc + costs.hash_compute * max(1, len(survivors))
        self.rehash_cycles += cycles
        yield Compute(cycles, tag)

    def try_remove(self, entry: HashEntry, tag: str = "hash"):
        """Tombstone an idle entry (same CAS protocol as the chained table)."""
        claimed = yield entry.count.cas(0, TOMBSTONE, tag)
        if claimed:
            entry.deleted = True
            entry.node = None
            self.live_entries -= 1
            self.dead_entries += 1
        return claimed

    # ------------------------------------------------------------------
    # Non-simulated inspection
    # ------------------------------------------------------------------
    def peek(self, element: Element) -> Optional[HashEntry]:
        """Find the live entry for ``element`` without simulation."""
        for _, entry in self._probe(element):
            if entry is None:
                return None
            if not entry.deleted and entry.element == element:
                return entry
        return None

    def live(self):
        """Iterate all live entries (no simulation)."""
        for entry in self._slots:
            if entry is not None and not entry.deleted:
                yield entry

    def max_chain_length(self) -> int:
        """For API parity: the longest contiguous occupied run."""
        longest = run = 0
        for entry in self._slots + self._slots[:1]:
            if entry is not None:
                run += 1
                longest = max(longest, run)
            else:
                run = 0
        return longest
