"""The cache-conscious chained hash table with element delegation (§5.2.1).

The table is the CoTS *Search Structure*.  Three paper features are
modelled:

* **Cache-conscious blocks** — chain entries are grouped into blocks
  sized to the machine's cache line, so entries of one chain share a
  simulated :class:`~repro.simcore.atomics.CacheLine` (Figure 9);
* **Mostly wait-free access** — readers never lock; only inserts into
  the same hash bucket serialize on a short spin lock, and deletions are
  lazy (entries are tombstoned and garbage-collected by the next insert
  into the chain);
* **Element delegation (Algorithm 2)** — every entry carries an atomic
  ``count``.  A thread processing element *e* atomically
  increments-and-fetches it: result 1 means the thread crossed the
  boundary and owns *e* inside the Stream Summary; result > 1 means the
  request was *logged* and delegated to the current owner.  The
  relinquish protocol (CAS 1→0, else swap with 1) lives in
  :mod:`repro.cots.framework` because its failure path re-enters the
  summary with a bulk increment.

``count`` states: ``0`` idle, ``n > 0`` owned with ``n-1`` logged
requests, ``TOMBSTONE`` removed (the Overwrite path's ``tryRemove`` CAS).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional

from repro.core.counters import Element
from repro.errors import ConfigurationError
from repro.simcore.atomics import AtomicCell, CacheLine
from repro.simcore.costs import CostModel
from repro.simcore.effects import Compute
from repro.simcore.sync import SpinLock

#: ``count`` value marking a removed (overwritten) entry.
TOMBSTONE = -1_000_000

_entry_ids = itertools.count()


class HashEntry:
    """One monitored element inside the search structure."""

    __slots__ = ("element", "count", "node", "deleted", "entry_id")

    def __init__(self, element: Element, line: CacheLine) -> None:
        self.element = element
        #: delegation counter (Algorithm 2); shares its block's cache line
        self.count = AtomicCell(0, line=line)
        #: the element's node inside the Concurrent Stream Summary
        self.node = None
        #: lazy-deletion flag, set when an Overwrite claims the entry
        self.deleted = False
        self.entry_id = next(_entry_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashEntry({self.element!r}, count={self.count.peek()}, "
            f"deleted={self.deleted})"
        )


class _Chain:
    """One hash bucket: a chain of entries packed into cache-line blocks."""

    __slots__ = ("entries", "lock", "lines", "block_entries")

    def __init__(self, name: str, block_entries: int) -> None:
        self.entries: List[HashEntry] = []
        self.lock = SpinLock(name)
        self.lines: List[CacheLine] = []
        self.block_entries = block_entries

    def line_for_next_entry(self) -> CacheLine:
        """The cache line the next appended entry will live on."""
        used = len(self.entries)
        block = used // self.block_entries
        while len(self.lines) <= block:
            self.lines.append(CacheLine())
        return self.lines[block]


class CoTSHashTable:
    """Thread-safe, cache-conscious chained hash table (simulated).

    ``size`` should comfortably exceed the summary capacity so the table
    never needs a resize — the paper leverages exactly this property of
    counter-based algorithms.
    """

    def __init__(
        self,
        size: int,
        costs: CostModel,
        block_entries: int = 4,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        if block_entries < 1:
            raise ConfigurationError(
                f"block_entries must be >= 1, got {block_entries}"
            )
        self.size = size
        self.costs = costs
        self._chains: List[_Chain] = [
            _Chain(f"chain-{i}", block_entries) for i in range(size)
        ]
        self.live_entries = 0
        self.garbage_collected = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _chain(self, element: Element) -> _Chain:
        return self._chains[hash(element) % self.size]

    # ------------------------------------------------------------------
    # Simulated operations (generators yielding effects)
    # ------------------------------------------------------------------
    def lookup(self, element: Element, tag: str = "hash"):
        """LOOKUP(e): find the live entry for ``element`` (readers lock-free).

        Yields the probe cost; returns the entry or None.
        """
        costs = self.costs
        chain = self._chain(element)
        # One hash plus a compare per chain slot actually probed; blocks
        # keep this cache-friendly so probing stays cheap.
        probes = 0
        found: Optional[HashEntry] = None
        for entry in chain.entries:
            probes += 1
            if entry.element == element and not entry.deleted:
                found = entry
                break
        yield Compute(
            costs.hash_compute + costs.key_compare * max(1, probes), tag
        )
        return found

    def insert(self, element: Element, tag: str = "hash"):
        """INSERT(e): add an entry under the chain's insert lock.

        Garbage-collects the chain's tombstones first (the paper's lazy
        deletion), re-checks for a racing insert of the same element, and
        returns ``(entry, newly_inserted)``.
        """
        costs = self.costs
        chain = self._chain(element)
        yield chain.lock.acquire(tag)
        # Re-check under the lock: another thread may have inserted the
        # element between our failed lookup and acquiring the lock.
        existing = None
        dead = 0
        for entry in chain.entries:
            if entry.deleted:
                dead += 1
            elif entry.element == element:
                existing = entry
        if existing is not None:
            yield Compute(costs.key_compare * max(1, len(chain.entries)), tag)
            yield chain.lock.release(tag)
            return existing, False
        if dead:
            chain.entries = [e for e in chain.entries if not e.deleted]
            self.garbage_collected += dead
            yield Compute(costs.free * dead, tag)
        entry = HashEntry(element, chain.line_for_next_entry())
        chain.entries.append(entry)
        self.live_entries += 1
        yield Compute(costs.alloc, tag)
        yield chain.lock.release(tag)
        return entry, True

    def try_remove(self, entry: HashEntry, tag: str = "hash"):
        """tryRemove(e): claim an idle entry for overwriting (Algorithm 6).

        A single CAS ``0 → TOMBSTONE`` on the delegation counter: success
        means no thread holds or has logged requests for the element, so
        it can be evicted.  Returns True on success.
        """
        claimed = yield entry.count.cas(0, TOMBSTONE, tag)
        if claimed:
            entry.deleted = True
            entry.node = None
            self.live_entries -= 1
        return claimed

    # ------------------------------------------------------------------
    # Non-simulated inspection (tests, post-quiescence)
    # ------------------------------------------------------------------
    def peek(self, element: Element) -> Optional[HashEntry]:
        """Find the live entry for ``element`` without simulation."""
        for entry in self._chain(element).entries:
            if entry.element == element and not entry.deleted:
                return entry
        return None

    def live(self) -> Iterator[HashEntry]:
        """Iterate all live entries (no simulation)."""
        for chain in self._chains:
            for entry in chain.entries:
                if not entry.deleted:
                    yield entry

    def max_chain_length(self) -> int:
        """Longest chain including tombstones (collision diagnostics)."""
        return max((len(chain.entries) for chain in self._chains), default=0)
