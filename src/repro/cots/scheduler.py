"""Dynamic auto-configuration of worker threads (§5.2.3).

The CoTS system owns a *thread pool*.  Two thresholds drive it:

* **σ (sigma)** — when a thread crossing the boundary sees a bucket
  queue longer than σ, the system is congested: it puts worker threads
  to sleep (back into the pool);
* **ρ (rho)** — when a delegation leaves a bucket with more than ρ
  pending requests, the system wakes a pool thread to help drain it.

Workers park only between stream batches, so no claimed element is ever
stranded; a parked worker resumes either with a bucket to help drain,
with a plain resume token, or with a stop token once the stream is
exhausted.  The paper's evaluation disables this machinery ("we do not
use this feature for experiments"), and so do the benchmark drivers —
the scheduler is exercised by its own tests and an ablation benchmark.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.cots.framework import CoTSFramework, WorkerContext
from repro.errors import ConfigurationError
from repro.obs.tracing import NULL_TRACER
from repro.simcore.effects import Park, Unpark
from repro.simcore.engine import Engine, SimThread

#: wake tokens
_RESUME = "resume"
_STOP = "stop"


class CoTSScheduler:
    """σ/ρ-threshold thread scheduling for the CoTS framework."""

    def __init__(
        self,
        sigma: int = 48,
        rho: int = 8,
        pool_size: int = 2,
        min_active: int = 0,
    ) -> None:
        if sigma < 1 or rho < 1:
            raise ConfigurationError("sigma and rho must be >= 1")
        if pool_size < 0:
            raise ConfigurationError("pool_size must be >= 0")
        self.sigma = sigma
        self.rho = rho
        self.pool_size = pool_size
        self.min_active = min_active
        self._framework: Optional[CoTSFramework] = None
        self._engine: Optional[Engine] = None
        self._parked_workers: List[SimThread] = []
        self._parked_helpers: List[SimThread] = []
        self._active_workers = 0
        self._congestion = 0       #: most recently observed queue length
        self._stopped = False
        # observability for tests and the ablation bench
        self.parks = 0
        self.wakes = 0
        self.helper_drains = 0
        #: span tracer, rebound from the framework in :meth:`install`;
        #: all calls are host-side so they never change the schedule
        self.tracer = NULL_TRACER

    def record_metrics(self, registry) -> None:
        """Fold this run's sleep/wake transitions into ``registry``.

        Emits the ``cots.scheduler.*`` counters (parks, wakes, helper
        drains) plus the σ/ρ thresholds as gauges, so a run report shows
        both *how often* the §5.2.3 auto-configuration fired and *which
        thresholds* it was keyed to.  Called by ``run_cots`` after
        quiescence.
        """
        registry.counter("cots.scheduler.parks").inc(self.parks)
        registry.counter("cots.scheduler.wakes").inc(self.wakes)
        registry.counter("cots.scheduler.helper_drains").inc(
            self.helper_drains
        )
        registry.gauge("cots.scheduler.sigma").set(self.sigma)
        registry.gauge("cots.scheduler.rho").set(self.rho)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(
        self,
        framework: CoTSFramework,
        engine: Engine,
        workers: List[SimThread],
    ) -> None:
        """Attach to a framework run (called by :func:`run_cots`)."""
        self._framework = framework
        self._engine = engine
        self.tracer = framework.tracer
        self._active_workers = len(workers)
        if self.min_active <= 0:
            self.min_active = min(len(workers), engine.machine.cores)
        framework.scheduler = self
        framework.summary.on_delegated = self.on_delegated
        for index in range(self.pool_size):
            ctx = WorkerContext(f"pool-{index}")
            holder: List[SimThread] = []
            thread = engine.spawn(
                self._helper(ctx, holder), name=ctx.name, daemon=True
            )
            holder.append(thread)
            self._parked_helpers.append(thread)

    # ------------------------------------------------------------------
    # Hooks called from simulated threads (generators)
    # ------------------------------------------------------------------
    def on_delegated(self, bucket, ctx) -> Iterator:
        """A request was delegated: wake a helper if the queue is deep (ρ)."""
        self._congestion = len(bucket.queue)
        if len(bucket.queue) > self.rho and self._parked_helpers:
            helper = self._parked_helpers.pop()
            self.wakes += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    ctx.name, "wake.helper", "cots.scheduler",
                    args={"rho": self.rho, "queue": len(bucket.queue)},
                )
            yield Unpark(helper, token=bucket, tag="rest")

    def after_element(self, ctx: WorkerContext) -> Iterator:
        """Per-element congestion relief: wake a parked worker when the
        pressure has drained below σ/2."""
        if (
            self._parked_workers
            and self._congestion < self.sigma // 2
            and not self._stopped
        ):
            worker = self._parked_workers.pop()
            self._active_workers += 1
            self.wakes += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    ctx.name, "wake.worker", "cots.scheduler",
                    args={"sigma": self.sigma, "congestion": self._congestion},
                )
            yield Unpark(worker, token=_RESUME, tag="rest")

    def maybe_park(self, ctx: WorkerContext, my_thread: SimThread) -> Iterator:
        """Between batches: park this worker if the system is congested (σ).

        Returns ``"stop"`` if the stream finished while we slept.
        """
        if self._stopped:
            return _STOP
        if (
            self._congestion > self.sigma
            and self._active_workers > self.min_active
        ):
            self._active_workers -= 1
            self._parked_workers.append(my_thread)
            self.parks += 1
            slept_at = self.tracer.now()
            congestion = self._congestion
            token = yield Park(tag="rest")
            self.tracer.add_span(
                ctx.name, "parked", "cots.scheduler",
                slept_at, self.tracer.now(),
                {"sigma": self.sigma, "congestion": congestion},
            )
            if token == _STOP:
                return _STOP
            self._congestion = 0
        return None

    def worker_finished(self, ctx: WorkerContext) -> Iterator:
        """Stream exhausted: release every parked worker with a stop token."""
        self._stopped = True
        while self._parked_workers:
            worker = self._parked_workers.pop()
            yield Unpark(worker, token=_STOP, tag="rest")

    # ------------------------------------------------------------------
    # Pool helper program
    # ------------------------------------------------------------------
    def _helper(self, ctx: WorkerContext, holder: List[SimThread]) -> Iterator:
        """A pool thread: sleeps until handed a congested bucket.

        ``holder`` is filled with the helper's own :class:`SimThread`
        right after spawning (a generator cannot know its thread at
        creation time); it is used to re-register for future wakes.
        """
        while True:
            token = yield Park(tag="rest")
            if token == _STOP:
                return
            bucket = token
            acquired = yield bucket.owner.cas(0, 1, "bucket")
            if acquired:
                self.helper_drains += 1
                ctx.worklist.append(bucket)
                yield from self._framework.summary.drain_all(ctx)
            self._parked_helpers.append(holder[0])
