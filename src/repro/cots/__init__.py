"""The CoTS (Cooperative Thread Scheduling) framework — the paper's
primary contribution (§5).

Threads *cooperate* instead of contending: a thread that cannot acquire
a shared resource logs its request (delegation) and moves on (minimal
existence); whichever thread holds the resource completes all pending
requests before relinquishing it.  Delegation happens at two levels —
per element in the hash table (Algorithm 2) and per frequency bucket in
the Concurrent Stream Summary (Algorithms 3–6) — and accumulated element
requests re-enter the summary as *bulk increments*, the amortization
that makes skewed streams profitable.
"""

from repro.cots.adapters import (
    LossyCoTSConfig,
    LossyCountingSummary,
    SampleAndHoldSummary,
    SampleHoldCoTSConfig,
    run_lossy_cots,
    run_sample_hold_cots,
)
from repro.cots.framework import (
    CoTSFramework,
    CoTSRunConfig,
    WorkerContext,
    run_cots,
)
from repro.cots.hashtable import TOMBSTONE, CoTSHashTable, HashEntry
from repro.cots.open_table import OpenAddressingTable
from repro.cots.requests import (
    AddRequest,
    IncrementRequest,
    OverwriteRequest,
    PruneRequest,
)
from repro.cots.scheduler import CoTSScheduler
from repro.cots.summary import (
    ConcurrentBucket,
    ConcurrentStreamSummary,
    SummaryElement,
)

__all__ = [
    "AddRequest",
    "CoTSFramework",
    "CoTSHashTable",
    "CoTSRunConfig",
    "CoTSScheduler",
    "ConcurrentBucket",
    "ConcurrentStreamSummary",
    "HashEntry",
    "IncrementRequest",
    "LossyCoTSConfig",
    "LossyCountingSummary",
    "OpenAddressingTable",
    "OverwriteRequest",
    "PruneRequest",
    "SampleAndHoldSummary",
    "SampleHoldCoTSConfig",
    "SummaryElement",
    "TOMBSTONE",
    "WorkerContext",
    "run_cots",
    "run_lossy_cots",
    "run_sample_hold_cots",
]
