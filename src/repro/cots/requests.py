"""Request records logged in bucket queues (§5.2.2).

A request is the unit of *delegation*: instead of waiting for a
contended frequency bucket, a thread atomically appends the request to
the bucket's producer/consumer queue; whichever thread holds the bucket
processes every pending request before relinquishing it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.cots.hashtable import HashEntry
    from repro.cots.summary import SummaryElement


class AddRequest:
    """AddElementToBucket: place ``node`` (its ``freq`` is final) in the
    structure — used both for brand-new elements (freq starting at the
    initial increment) and for re-placement during bulk-increment
    traversals (Algorithms 3 and 4)."""

    __slots__ = ("node",)

    def __init__(self, node: "SummaryElement") -> None:
        self.node = node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Add({self.node.element!r}@{self.node.freq})"


class IncrementRequest:
    """IncrementCounter: raise ``node``'s frequency by ``amount``
    (Algorithm 5); ``amount > 1`` is a bulk increment from accumulated
    delegations."""

    __slots__ = ("node", "amount")

    def __init__(self, node: "SummaryElement", amount: int) -> None:
        self.node = node
        self.amount = amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Inc({self.node.element!r}+{self.amount})"


class PruneRequest:
    """Round-boundary prune used by the Lossy Counting adapter (§5.3):
    the Overwrite request is replaced by a request that removes the
    minimum-frequency bucket at round boundaries."""

    __slots__ = ("round_index",)

    def __init__(self, round_index: int) -> None:
        self.round_index = round_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Prune(round={self.round_index})"


class OverwriteRequest:
    """OverwriteElement: evict a minimum-frequency victim and install the
    element of ``entry`` with count ``min + amount`` and error ``min``
    (Algorithm 6)."""

    __slots__ = ("entry", "amount")

    def __init__(self, entry: "HashEntry", amount: int) -> None:
        self.entry = entry
        self.amount = amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ovw({self.entry.element!r}+{self.amount})"
