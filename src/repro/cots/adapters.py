"""Adapting counter-based algorithms into the CoTS framework (§5.3).

The framework accommodates any counter-based algorithm whose element
frequencies increase monotonically.  Three adaptations ship:

* **Space Saving** — the default wiring of
  :class:`~repro.cots.summary.ConcurrentStreamSummary` (Overwrite
  requests bound the monitored set);
* **Lossy Counting** — per the paper, "only the Overwrite request in
  Space Saving has to be replaced by a request that removes the minimum
  frequency bucket at round boundaries, everything else remains
  unchanged."  New elements are always admitted (no slot bound), and a
  Prune request retires the minimum bucket every ``width`` processed
  elements;
* **Sample-and-Hold** — admission is decided *at the boundary crossing*:
  an unmonitored element's accumulated occurrences get per-occurrence
  admission draws, and unadmitted batches are relinquished without
  entering the summary (counted in ``stats["unsampled"]``, so
  ``total_count + unsampled == N`` exactly).  Monitored counts are
  monotone, satisfying the framework's requirement.  One deviation from
  the sequential algorithm: candidate hash entries persist for
  unadmitted elements (the delegation protocol needs them as the
  element-serialization gate).
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Iterator, Optional, Sequence

from repro.core.counters import Element
from repro.cots.framework import (
    CoTSFramework,
    CoTSRunConfig,
    WorkerContext,
)
from repro.cots.hashtable import HashEntry
from repro.cots.requests import PruneRequest
from repro.cots.summary import (
    ConcurrentStreamSummary,
    TAG_HASH,
    TAG_STRUCTURE,
)
from repro.errors import ConfigurationError
from repro.parallel.base import SchemeResult, TAG_REST
from repro.simcore.atomics import AtomicCell
from repro.simcore.effects import Compute
from repro.simcore.engine import Engine


class LossyCountingSummary(ConcurrentStreamSummary):
    """Concurrent summary with Lossy Counting eviction semantics.

    The slot reservation of the Space Saving adaptation is neutralized
    (new elements always get an Add request); space is reclaimed by
    :meth:`prune` at round boundaries instead.
    """

    enforce_capacity = False

    def __init__(self, capacity: int, table, costs) -> None:
        # capacity bounds nothing here; keep it as a sanity ceiling only.
        super().__init__(capacity, table, costs)
        self.slots = AtomicCell(10 ** 12)  # effectively unbounded

    def prune(self, round_index: int, ctx: WorkerContext) -> Iterator:
        """Deliver the round-boundary Prune to the minimum bucket."""
        target = self.min_bucket
        if target is None:
            return
        yield Compute(self.costs.request_alloc, TAG_STRUCTURE)
        yield from self.deliver(PruneRequest(round_index), target, ctx)
        yield from self.drain_all(ctx)


@dataclasses.dataclass
class LossyCoTSConfig(CoTSRunConfig):
    """Run parameters for the Lossy Counting adaptation."""

    epsilon: float = 0.01

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 < self.epsilon < 1:
            raise ConfigurationError(
                f"epsilon must be in (0, 1), got {self.epsilon}"
            )


def _lossy_worker(
    framework: CoTSFramework,
    stream: Sequence[Element],
    cursor: AtomicCell,
    ctx: WorkerContext,
    batch: int,
    width: int,
    progress: AtomicCell,
) -> Iterator:
    costs = framework.costs
    summary: LossyCountingSummary = framework.summary
    length = len(stream)
    while True:
        claimed_end = yield cursor.add(batch, TAG_REST)
        start = claimed_end - batch
        if start >= length:
            break
        for index in range(start, min(claimed_end, length)):
            yield Compute(costs.stream_fetch, TAG_REST)
            yield from framework.process_element(stream[index], ctx)
            done = yield progress.add(1, TAG_REST)
            if done % width == 0:
                # round boundary: this thread issues the prune
                yield from summary.prune(done // width, ctx)


class SampleAndHoldSummary(ConcurrentStreamSummary):
    """Concurrent summary with Sample-and-Hold admission semantics.

    Monitored elements count exactly (plain increments through the
    normal machinery); unmonitored elements are admitted at the boundary
    with probability ``sample_rate`` per accumulated occurrence.  The
    admission RNG is seeded and consumed in deterministic engine order,
    so runs remain reproducible.
    """

    enforce_capacity = False

    def __init__(
        self, capacity: int, table, costs, sample_rate: float = 0.05,
        seed: int = 0,
    ) -> None:
        super().__init__(capacity, table, costs)
        if not 0 < sample_rate <= 1:
            raise ConfigurationError(
                f"sample_rate must be in (0, 1], got {sample_rate}"
            )
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)
        self.slots = AtomicCell(10 ** 12)  # admission, not eviction, bounds

    def cross_boundary(self, entry: HashEntry, ctx, amount: int = 1) -> Iterator:
        if entry.node is not None:
            yield from super().cross_boundary(entry, ctx, amount)
            return
        # per-occurrence admission draws over the accumulated batch
        held = 0
        for index in range(amount):
            if self._rng.random() < self.sample_rate:
                held = amount - index
                break
        missed = amount - held
        if missed:
            self.stats["unsampled"] += missed
        if held == 0:
            yield Compute(self.costs.counter_update, TAG_STRUCTURE)
            yield from self._relinquish_unmonitored(entry, ctx)
            return
        yield from super().cross_boundary(entry, ctx, held)

    def _relinquish_unmonitored(self, entry: HashEntry, ctx) -> Iterator:
        """Release an element that was not admitted (no summary node).

        Occurrences logged while we held the gate get their own admission
        round by re-crossing the boundary.
        """
        if self.costs.relinquish_check:
            yield Compute(self.costs.relinquish_check, TAG_HASH)
        released = yield entry.count.cas(1, 0, TAG_HASH)
        if released:
            return
        logged = yield entry.count.swap(1, TAG_HASH)
        yield from self.cross_boundary(entry, ctx, logged - 1)


@dataclasses.dataclass
class SampleHoldCoTSConfig(CoTSRunConfig):
    """Run parameters for the Sample-and-Hold adaptation."""

    sample_rate: float = 0.05
    rng_seed: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 < self.sample_rate <= 1:
            raise ConfigurationError(
                f"sample_rate must be in (0, 1], got {self.sample_rate}"
            )


def run_sample_hold_cots(
    stream: Sequence[Element],
    config: Optional[SampleHoldCoTSConfig] = None,
) -> SchemeResult:
    """Drive the Sample-and-Hold adaptation of CoTS over a stream."""
    config = config if config is not None else SampleHoldCoTSConfig()
    framework = CoTSFramework(
        capacity=config.capacity,
        costs=config.costs,
        table_size=config.table_size,
        summary_cls=lambda capacity, table, costs: SampleAndHoldSummary(
            capacity, table, costs,
            sample_rate=config.sample_rate, seed=config.rng_seed,
        ),
    )
    engine = config.make_engine()
    config.bind_audit(
        engine, scheme="cots-sample-hold", framework=framework,
        summary=framework.summary, stream=stream,
    )
    cursor = AtomicCell(0)
    contexts = []
    from repro.cots.framework import _worker

    for index in range(config.threads):
        ctx = WorkerContext(f"snh-{index}")
        contexts.append(ctx)
        engine.spawn(
            _worker(framework, stream, cursor, ctx, config.batch),
            name=ctx.name,
        )
    execution = engine.run()
    summary: SampleAndHoldSummary = framework.summary
    summary.check_invariants()
    counted = summary.total_count()
    unsampled = summary.stats.get("unsampled", 0)
    if counted + unsampled != len(stream):
        raise ConfigurationError(
            f"sample-and-hold conservation violated: {counted} counted + "
            f"{unsampled} unsampled != {len(stream)}"
        )
    counter = summary.to_space_saving()
    return SchemeResult(
        scheme="cots-sample-hold",
        threads=config.threads,
        elements=len(stream),
        execution=execution,
        counter=counter,
        extras={
            "framework": framework,
            "stats": dict(summary.stats),
            "unsampled": unsampled,
        },
    )


def run_lossy_cots(
    stream: Sequence[Element],
    config: Optional[LossyCoTSConfig] = None,
) -> SchemeResult:
    """Drive the Lossy Counting adaptation of CoTS over a stream."""
    config = config if config is not None else LossyCoTSConfig()
    width = math.ceil(1.0 / config.epsilon)
    framework = CoTSFramework(
        capacity=max(config.capacity, 10 * width),
        costs=config.costs,
        table_size=max(64, 8 * width),
        summary_cls=LossyCountingSummary,
    )
    engine = config.make_engine()
    config.bind_audit(
        engine, scheme="cots-lossy", framework=framework,
        summary=framework.summary, stream=stream,
    )
    cursor = AtomicCell(0)
    progress = AtomicCell(0)
    contexts = []
    for index in range(config.threads):
        ctx = WorkerContext(f"lossy-{index}")
        contexts.append(ctx)
        engine.spawn(
            _lossy_worker(
                framework, stream, cursor, ctx, config.batch, width, progress
            ),
            name=ctx.name,
        )
    execution = engine.run()
    framework.summary.check_invariants()
    counter = framework.summary.to_space_saving()
    return SchemeResult(
        scheme="cots-lossy",
        threads=config.threads,
        elements=len(stream),
        execution=execution,
        counter=counter,
        extras={
            "framework": framework,
            "width": width,
            "stats": dict(framework.summary.stats),
        },
    )
