"""Lock-free query answering over the Concurrent Stream Summary (§5.2.4).

Queries never acquire locks or bucket ownership.  A reader walks the
singly-linked bucket list from the minimum-frequency end; because

* a bucket's frequency never changes,
* retired buckets stay linked until a traversing owner unlinks them, and
* there is never a broken link,

a traversal is always safe, and a reader that lands on a retired bucket
simply skips it (or restarts, which the ``restarts`` statistic counts).

Two query styles are provided:

* **simulated** generators, to be run as reader threads *concurrently*
  with update workers (they charge traversal costs and see a live,
  slightly stale structure — exactly the semantics the paper accepts for
  interval queries);
* **host-side** helpers for post-quiescence inspection.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.counters import CounterEntry, Element
from repro.cots.hashtable import CoTSHashTable
from repro.cots.summary import ConcurrentStreamSummary
from repro.errors import QueryError
from repro.simcore.costs import CostModel
from repro.simcore.effects import Compute

TAG_QUERY = "query"


def point_is_frequent(
    table: CoTSHashTable,
    element: Element,
    threshold: float,
    costs: CostModel,
) -> Iterator:
    """Point query straight from the search structure (no summary visit).

    "Frequent elements queries ... can be answered directly from the
    Search Structure" — one lookup, read the node's bucket frequency.
    Returns True/False.
    """
    entry = yield from table.lookup(element, TAG_QUERY)
    if entry is None or entry.node is None or entry.node.bucket is None:
        return False
    yield Compute(costs.pointer_chase, TAG_QUERY)
    return entry.node.bucket.freq > threshold


def _walk_buckets(summary: ConcurrentStreamSummary, costs: CostModel):
    """Traverse live buckets from the minimum end, charging hop costs.

    Yields effects; returns a list of (freq, size) snapshots.
    """
    snapshots: List[Tuple[int, int]] = []
    bucket = summary.min_bucket
    hops = 0
    while bucket is not None:
        hops += 1
        if not bucket.gc_marked:
            snapshots.append((bucket.freq, bucket.size))
        if hops % 8 == 0:
            yield Compute(costs.pointer_chase * 8, TAG_QUERY)
        bucket = bucket.next
    if hops % 8:
        yield Compute(costs.pointer_chase * (hops % 8), TAG_QUERY)
    return snapshots


def kth_frequency(
    summary: ConcurrentStreamSummary, k: int, costs: CostModel
) -> Iterator:
    """Frequency of the k-th most frequent element (0 if fewer than k).

    Per §5.2.4: traverse the structure reading bucket sizes, counting the
    elements to the right of each bucket.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    snapshots = yield from _walk_buckets(summary, costs)
    remaining = k
    for freq, size in reversed(snapshots):
        remaining -= size
        if remaining <= 0:
            return freq
    return 0


def point_in_top_k(
    table: CoTSHashTable,
    summary: ConcurrentStreamSummary,
    element: Element,
    k: int,
    costs: CostModel,
) -> Iterator:
    """Point top-k query: compare the element's frequency with the k-th."""
    entry = yield from table.lookup(element, TAG_QUERY)
    if entry is None or entry.node is None or entry.node.bucket is None:
        return False
    frequency = entry.node.bucket.freq
    kth = yield from kth_frequency(summary, k, costs)
    return frequency >= kth and kth > 0


def frequent_set(
    summary: ConcurrentStreamSummary, threshold: float, costs: CostModel
) -> Iterator:
    """Set query: every element whose frequency exceeds ``threshold``.

    Readers start from the minimum end and "very quickly prune out the
    low frequency elements": buckets at or below the threshold only cost
    a pointer hop; qualifying buckets pay a per-member visit.
    """
    result: List[CounterEntry] = []
    bucket = summary.min_bucket
    while bucket is not None:
        yield Compute(costs.pointer_chase, TAG_QUERY)
        if not bucket.gc_marked and bucket.freq > threshold:
            members = list(bucket.members)
            if members:
                yield Compute(costs.key_compare * len(members), TAG_QUERY)
            for node in members:
                result.append(CounterEntry(node.element, bucket.freq, node.error))
        bucket = bucket.next
    result.sort(key=lambda e: -e.count)
    return result


def top_k_set(
    summary: ConcurrentStreamSummary,
    k: int,
    costs: CostModel,
    retries: int = 8,
) -> Iterator:
    """Set query: the k most frequent elements (ties broaden the set).

    A lock-free reader can catch nodes mid-flight (detached by an
    increment, not yet re-attached) and see an implausibly empty
    structure; per §5.2.2 ("if the reader determines that things have
    gone wrong, it will abort and restart"), an empty read of a
    non-empty summary is retried a bounded number of times.
    """
    entries: List[CounterEntry] = []
    for _ in range(max(1, retries)):
        kth = yield from kth_frequency(summary, k, costs)
        if kth == 0:
            entries = yield from frequent_set(summary, 0, costs)
        else:
            entries = yield from frequent_set(summary, kth - 1, costs)
        if entries or summary.min_bucket is None:
            return entries[:k]
        yield Compute(costs.pointer_chase, TAG_QUERY)  # restart backoff
    return entries[:k]


# ----------------------------------------------------------------------
# Host-side (post-quiescence) helpers
# ----------------------------------------------------------------------
def snapshot_frequent(
    summary: ConcurrentStreamSummary, phi: float
) -> List[CounterEntry]:
    """Host-side frequent-elements set with support ``phi``."""
    if not 0 < phi < 1:
        raise QueryError(f"phi must be in (0, 1), got {phi}")
    threshold = phi * summary.total_count()
    return [e for e in summary.entries() if e.count > threshold]


def snapshot_top_k(summary: ConcurrentStreamSummary, k: int) -> List[CounterEntry]:
    """Host-side top-k set."""
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    return summary.entries()[:k]
