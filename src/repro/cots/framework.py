"""The CoTS framework driver (§5.1–5.2, Figure 8, Algorithm 2).

Workers pull batches of elements from a *shared* stream cursor (the
system view of Figure 8: one stream, a pool of cooperating threads).
Each element goes through the element-delegation protocol of
Algorithm 2:

1. LOOKUP the element in the search structure (insert if absent);
2. atomically increment-and-fetch the entry's delegation counter;
3. result 1 → this thread *crosses the boundary*: it reserves a monitor
   slot (Add) or emits an Overwrite, delivers the request to the proper
   bucket queue, and drains every bucket it managed to acquire;
4. result > 1 → the request is already logged; the thread moves on
   (no waiting — the *minimal existence* principle).

Element completion (and the CAS/swap relinquish protocol, including the
bulk-increment re-crossing) happens inside
:meth:`~repro.cots.summary.ConcurrentStreamSummary.complete_element`,
executed by whichever thread finishes the element's request.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.counters import Element
from repro.cots.hashtable import CoTSHashTable
from repro.cots.summary import (
    ConcurrentBucket,
    ConcurrentStreamSummary,
    TAG_HASH,
)
from repro.errors import ConfigurationError
from repro.obs.registry import coerce
from repro.obs.tracing import coerce_tracer
from repro.parallel.base import SchemeConfig, SchemeResult, TAG_REST
from repro.simcore.atomics import AtomicCell
from repro.simcore.costs import CostModel
from repro.simcore.effects import Compute, Latency
from repro.simcore.engine import Engine


class WorkerContext:
    """Per-worker scratch state: acquired buckets and counters."""

    __slots__ = ("name", "worklist", "stats")

    def __init__(self, name: str) -> None:
        self.name = name
        self.worklist: List[ConcurrentBucket] = []
        self.stats: Dict[str, int] = collections.Counter()


class CoTSFramework:
    """One CoTS system instance: search structure + concurrent summary."""

    def __init__(
        self,
        capacity: int,
        costs: CostModel,
        table_size: int = 0,
        summary_cls=ConcurrentStreamSummary,
        table_cls=CoTSHashTable,
        metrics=None,
        tracer=None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.costs = costs
        # A table sized well above capacity avoids resizes, as §5.2.1
        # prescribes ("if a suitable hash table size is chosen, the hash
        # table will not require a resize").  ``table_cls`` may swap in
        # the open-addressing variant for the churn ablation.
        if table_size <= 0:
            table_size = max(16, capacity * 4)
        self.table = table_cls(table_size, costs)
        self.summary = summary_cls(capacity, self.table, costs)
        self.metrics = coerce(metrics)
        self.summary.bind_metrics(self.metrics)
        self.tracer = coerce_tracer(tracer)
        self.summary.bind_tracer(self.tracer)
        #: optional scheduler (σ/ρ auto-configuration); see scheduler.py
        self.scheduler = None

    # ------------------------------------------------------------------
    # Algorithm 2: per-element delegation
    # ------------------------------------------------------------------
    def process_element(
        self, element: Element, ctx: WorkerContext, amount: int = 1
    ) -> Iterator:
        """Run ``amount`` occurrences of one element through delegation.

        ``amount > 1`` is the pre-aggregated batch-claim path: the whole
        batch of occurrences is logged with a *single* increment-and-fetch
        and crosses the boundary (or is delegated) as one bulk request —
        the QPOPSS-style extension of the paper's §5.2.2 amortization.
        Acquired buckets are drained afterwards either way.
        """
        while True:
            entry = yield from self.table.lookup(element, TAG_HASH)
            if entry is None:
                entry, _ = yield from self.table.insert(element, TAG_HASH)
            observed = yield entry.count.add(amount, TAG_HASH)
            if observed <= 0:
                # lost a race with an Overwrite's tryRemove: undo and retry
                yield entry.count.add(-amount, TAG_HASH)
                ctx.stats["tombstone_races"] += 1
                continue
            break
        ctx.stats["processed"] += amount
        if observed == amount:
            # we were first: we own the element and cross the boundary
            if amount > 1:
                # the bulk request below covers all `amount` occurrences;
                # fold the extra ones out of the delegation counter so the
                # relinquish protocol sees only genuinely logged requests
                yield entry.count.add(1 - amount, TAG_HASH)
                ctx.stats["bulk_crossings"] += 1
            yield from self.summary.cross_boundary(entry, ctx, amount)
        else:
            ctx.stats["delegated_elements"] += amount
        if ctx.worklist:
            yield from self.summary.drain_all(ctx)
        if self.costs.sync_latency:
            # §6: the implementation's request logging and bookkeeping
            # invoke heavyweight system routines for every stream element.
            # The overhead is *latency* (the core is released), so it
            # overlaps across threads — oversubscription hides it.
            yield Latency(self.costs.sync_latency, TAG_REST)


@dataclasses.dataclass
class CoTSRunConfig(SchemeConfig):
    """CoTS driver parameters on top of the shared scheme config."""

    batch: int = 32            #: stream elements claimed per cursor fetch
    table_size: int = 0        #: 0 = auto (4x capacity)
    #: pre-aggregate each claimed batch (one bulk delegation per distinct
    #: element instead of one per occurrence) — the batched fast lane
    preaggregate: bool = False
    #: >0 spawns a dedicated reader thread posing an interval top-k/
    #: frequent query every this many simulated cycles (§5.2.4: "Separate
    #: threads can be devoted for processing ad-hoc queries")
    query_every_cycles: int = 0
    query_top_k: int = 5       #: k for the reader's top-k query

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {self.batch}")
        if self.query_every_cycles < 0:
            raise ConfigurationError(
                "query_every_cycles must be >= 0, got "
                f"{self.query_every_cycles}"
            )
        if self.query_top_k < 1:
            raise ConfigurationError(
                f"query_top_k must be >= 1, got {self.query_top_k}"
            )


@dataclasses.dataclass
class QuerySnapshot:
    """One interval query answered by the reader thread during a run."""

    at_cycle: int
    top_k: list            #: [(element, frequency), ...] best-first


def _reader(
    framework: CoTSFramework,
    config: "CoTSRunConfig",
    log: list,
    live_workers: Dict[str, int],
) -> Iterator:
    """Reader thread: lock-free top-k snapshots every interval.

    Exits after the final snapshot once every worker has finished, so
    the run's makespan grows by at most one query interval.
    """
    from repro.cots.queries import top_k_set
    from repro.simcore.effects import Latency, Now

    while True:
        finishing = live_workers["count"] == 0
        entries = yield from top_k_set(
            framework.summary, config.query_top_k, framework.costs
        )
        now = yield Now()
        log.append(
            QuerySnapshot(
                at_cycle=now,
                top_k=[(e.element, e.count) for e in entries],
            )
        )
        if finishing:
            return
        yield Latency(config.query_every_cycles, tag="query")


def _tracked(worker: Iterator, live_workers: Dict[str, int]) -> Iterator:
    """Wrap a worker so the reader can observe stream completion."""
    try:
        yield from worker
    finally:
        live_workers["count"] -= 1


def _worker(
    framework: CoTSFramework,
    stream: Sequence[Element],
    cursor: AtomicCell,
    ctx: WorkerContext,
    batch: int,
    self_holder: Optional[list] = None,
    preaggregate: bool = False,
) -> Iterator:
    costs = framework.costs
    length = len(stream)
    while True:
        scheduler = framework.scheduler
        if scheduler is not None and self_holder:
            verdict = yield from scheduler.maybe_park(ctx, self_holder[0])
            if verdict == "stop":
                break
        claimed_end = yield cursor.add(batch, TAG_REST)
        start = claimed_end - batch
        if start >= length:
            break
        stop = min(claimed_end, length)
        if preaggregate:
            # batched fast lane: fetch the whole claimed slice in one go,
            # then run one bulk delegation per distinct element
            yield Compute(costs.stream_fetch * (stop - start), TAG_REST)
            for element, amount in collections.Counter(
                stream[start:stop]
            ).items():
                yield from framework.process_element(element, ctx, amount)
                if scheduler is not None:
                    yield from scheduler.after_element(ctx)
            continue
        for index in range(start, stop):
            yield Compute(costs.stream_fetch, TAG_REST)
            yield from framework.process_element(stream[index], ctx)
            if scheduler is not None:
                yield from scheduler.after_element(ctx)
    if framework.scheduler is not None:
        yield from framework.scheduler.worker_finished(ctx)


def run_cots(
    stream: Sequence[Element],
    config: Optional[CoTSRunConfig] = None,
    scheduler=None,
    check: bool = True,
    table_cls=CoTSHashTable,
) -> SchemeResult:
    """Drive the CoTS framework over a buffered stream.

    ``scheduler`` optionally enables the §5.2.3 dynamic auto
    configuration (a :class:`~repro.cots.scheduler.CoTSScheduler`).
    With ``check=True`` (default) the structural invariants and the
    count-conservation property are verified after quiescence.
    ``table_cls`` selects the search structure (default: the paper's
    cache-conscious chained table).
    """
    config = config if config is not None else CoTSRunConfig()
    framework = CoTSFramework(
        capacity=config.capacity,
        costs=config.costs,
        table_size=config.table_size,
        table_cls=table_cls,
        metrics=config.metrics,
        tracer=config.tracer,
    )
    engine = config.make_engine()
    if framework.tracer.enabled:
        # Spans are timestamped in *simulated cycles*: the engine clock
        # is read host-side (no effect yielded), so recording never
        # perturbs the schedule.
        framework.tracer.use_clock(lambda: engine.now)
    config.bind_audit(
        engine, scheme="cots", framework=framework,
        summary=framework.summary, stream=stream,
    )
    cursor = AtomicCell(0)
    contexts = []
    workers = []
    live_workers = {"count": config.threads}
    for index in range(config.threads):
        ctx = WorkerContext(f"cots-{index}")
        contexts.append(ctx)
        holder: list = []
        program = _worker(
            framework, stream, cursor, ctx, config.batch, holder,
            preaggregate=config.preaggregate,
        )
        if config.query_every_cycles > 0:
            program = _tracked(program, live_workers)
        thread = engine.spawn(program, name=ctx.name)
        holder.append(thread)
        workers.append(thread)
    if scheduler is not None:
        scheduler.install(framework, engine, workers)
    query_log: list = []
    if config.query_every_cycles > 0:
        engine.spawn(
            _reader(framework, config, query_log, live_workers),
            name="reader",
        )
    execution = engine.run()
    if check:
        framework.summary.check_invariants()
        total = framework.summary.total_count()
        if total != len(stream):
            raise ConfigurationError(
                f"count conservation violated: summary holds {total} "
                f"of {len(stream)} stream elements"
            )
    counter = framework.summary.to_space_saving()
    stats: Dict[str, int] = collections.Counter()
    for ctx in contexts:
        stats.update(ctx.stats)
    stats.update(framework.summary.stats)
    extras = {
        "framework": framework,
        "stats": dict(stats),
        "query_log": query_log,
    }
    if config.metrics is not None:
        # Fold the per-run protocol counters (delegations, overwrites,
        # bucket GC, bulk amortization, ...) and the scheduler's
        # sleep/wake transitions into the registry, so one snapshot
        # carries the whole run — live sampling covers only the
        # queue-depth histogram, everything else is zero-hot-path-cost.
        registry = config.metrics
        for key in sorted(stats):
            registry.counter(f"cots.stats.{key}").inc(stats[key])
        if scheduler is not None:
            scheduler.record_metrics(registry)
        extras["metrics"] = registry.snapshot()
    return SchemeResult(
        scheme="cots",
        threads=config.threads,
        elements=len(stream),
        execution=execution,
        counter=counter,
        extras=extras,
    )
