"""The Concurrent Stream Summary (§5.2.2, Figure 10, Algorithms 3–6).

A singly-linked, frequency-ascending list of buckets.  Each bucket owns

* a member set (elements currently at the bucket's frequency),
* a request queue (the delegation FIFO),
* an atomic ``owner`` flag — whoever CASes it 0→1 must drain the queue
  completely before relinquishing, and must re-check the queue after
  releasing (the standard no-lost-wakeup dance), and
* a ``gc_marked`` flag: a bucket that is empty with an empty queue is
  atomically retired; physical unlinking is done lazily by the owner of
  its predecessor during destination-finding traversals (Algorithm 4).

All *logical* mutations happen between effect yields, which the engine
makes atomic in simulated time — the same guarantee the paper obtains
from single-word atomics plus the ownership protocol.  The *timing* of
every step (queue CASes, line transfers, traversal hops, allocations) is
charged through effects, so contention and cooperation behave like the
paper's C++ implementation.

Tag conventions match :mod:`repro.parallel.base`: ``hash`` for
element-level work, ``bucket`` for queue/ownership traffic,
``structure`` for summary mutations.
"""

from __future__ import annotations

import collections
from typing import Deque, Dict, Iterator, List, Optional, Union

from repro.core.counters import CounterEntry, Element
from repro.core.space_saving import SpaceSaving
from repro.cots.hashtable import CoTSHashTable, HashEntry
from repro.cots.requests import (
    AddRequest,
    IncrementRequest,
    OverwriteRequest,
    PruneRequest,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.obs.registry import NULL_HISTOGRAM, NULL_REGISTRY
from repro.obs.tracing import NULL_TRACER, coerce_tracer
from repro.simcore.atomics import AtomicCell
from repro.simcore.costs import CostModel
from repro.simcore.effects import Compute, YieldCPU

TAG_HASH = "hash"
TAG_BUCKET = "bucket"
TAG_STRUCTURE = "structure"

Request = Union[AddRequest, IncrementRequest, OverwriteRequest, PruneRequest]

#: safety valve for the (theoretically convergent) retry loops
_MAX_SPINS = 100_000


class SummaryElement:
    """A monitored element inside the concurrent summary."""

    __slots__ = ("element", "freq", "error", "entry", "bucket")

    def __init__(
        self, element: Element, freq: int, error: int, entry: HashEntry
    ) -> None:
        self.element = element
        self.freq = freq
        self.error = error
        self.entry = entry
        self.bucket: Optional["ConcurrentBucket"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SummaryElement({self.element!r}, freq={self.freq})"


class ConcurrentBucket:
    """One frequency bucket with its delegation queue (Figure 10)."""

    __slots__ = (
        "freq",
        "members",
        "queue",
        "owner",
        "gc_marked",
        "defer_overwrites",
        "next",
    )

    def __init__(self, freq: int) -> None:
        self.freq = freq
        # insertion-ordered set of SummaryElement
        self.members: Dict[SummaryElement, None] = {}
        self.queue: Deque[Request] = collections.deque()
        self.owner = AtomicCell(0)
        self.gc_marked = False
        self.defer_overwrites = False
        self.next: Optional["ConcurrentBucket"] = None

    @property
    def size(self) -> int:
        """Number of member elements."""
        return len(self.members)

    def attach(self, node: SummaryElement) -> None:
        """Place ``node`` in this bucket (host-atomic)."""
        self.members[node] = None
        node.bucket = self
        node.freq = self.freq
        # membership changed: deferred overwrites get a fresh chance
        self.defer_overwrites = False

    def detach(self, node: SummaryElement) -> None:
        """Remove ``node`` from this bucket (host-atomic)."""
        if node.bucket is not self:
            raise ProtocolError(
                f"detach of {node.element!r} from wrong bucket "
                f"(freq {self.freq})"
            )
        del self.members[node]
        node.bucket = None
        self.defer_overwrites = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConcurrentBucket(freq={self.freq}, size={self.size}, "
            f"queue={len(self.queue)}, gc={self.gc_marked})"
        )


class ConcurrentStreamSummary:
    """The CoTS summary structure plus the whole delegation machinery."""

    #: subclasses with different eviction semantics (e.g. the Lossy
    #: Counting adapter) may monitor more than ``capacity`` elements
    enforce_capacity = True

    def __init__(
        self, capacity: int, table: CoTSHashTable, costs: CostModel
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.table = table
        self.costs = costs
        self.min_bucket: Optional[ConcurrentBucket] = None
        #: remaining free monitor slots; reserved atomically when crossing
        self.slots = AtomicCell(capacity)
        #: serializes creation of the very first bucket
        self._root_guard = AtomicCell(0)
        self.stats: Dict[str, int] = collections.Counter()
        #: scheduler hook — set by the framework when auto-config is on
        self.on_delegated = None
        #: metrics registry (rebound by :meth:`bind_metrics`); only the
        #: queue-depth histogram is sampled live — the per-run counters
        #: in ``stats`` are folded into the registry by ``run_cots``
        self.metrics = NULL_REGISTRY
        self._m_queue_depth = NULL_HISTOGRAM
        #: span tracer (rebound by :meth:`bind_tracer`).  Every tracer
        #: call below is *host-side* — between effect yields — and for
        #: simulated runs the tracer clock reads ``engine.now`` without
        #: yielding, so tracing never perturbs the schedule (pinned by
        #: ``tests/obs/test_trace_differential.py``).
        self.tracer = NULL_TRACER

    def bind_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.tracing.Tracer` to this summary."""
        self.tracer = coerce_tracer(tracer)

    def bind_metrics(self, registry) -> None:
        """Attach a :class:`repro.obs.MetricsRegistry` to this summary.

        Called by the framework after construction (the constructor
        signature is shared with adapter subclasses, so the registry
        rides in separately).  Sampling cost with the default
        NullRegistry is one no-op call per delivery.
        """
        self.metrics = registry
        self._m_queue_depth = registry.histogram("cots.queue.depth")

    # ==================================================================
    # Delivery: enqueue a request and acquire the bucket if free
    # ==================================================================
    def deliver(self, request: Request, bucket: ConcurrentBucket, ctx) -> Iterator:
        """Log ``request`` on ``bucket``; on CAS success the caller owns
        the bucket (pushed onto ``ctx.worklist`` for draining)."""
        costs = self.costs
        target = bucket
        while True:
            yield Compute(costs.queue_enqueue, TAG_BUCKET)
            # host-atomic: append + liveness check together
            target.queue.append(request)
            if target.gc_marked:
                target.queue.pop()  # nobody will ever drain a dead bucket
                self.stats["gc_retargets"] += 1
                target = yield from self._retarget(request)
                continue
            break
        self._m_queue_depth.observe(len(target.queue))
        acquired = yield target.owner.cas(0, 1, TAG_BUCKET)
        if acquired:
            ctx.worklist.append(target)
        else:
            self.stats["delegations"] += 1
            if self.tracer.enabled:
                # the handoff moment: this thread leaves its request for
                # whoever owns the bucket (the minimal-existence path)
                self.tracer.instant(
                    ctx.name, "delegate", "cots.delegation",
                    args={"freq": target.freq, "queue": len(target.queue)},
                )
            if self.on_delegated is not None:
                yield from self.on_delegated(target, ctx)

    def _retarget(self, request: Request) -> Iterator:
        """Pick a live target for a request whose bucket was retired."""
        if isinstance(request, IncrementRequest):
            # an increment's node pins its bucket (size >= 1 forbids GC),
            # so this can only mean a protocol bug
            raise ProtocolError(
                f"increment for {request.node.element!r} hit a retired bucket"
            )
        spins = 0
        while self.min_bucket is None:
            spins += 1
            if spins > _MAX_SPINS:
                raise ProtocolError("no live bucket to retarget a request to")
            yield YieldCPU(TAG_BUCKET)
        return self.min_bucket

    # ==================================================================
    # Draining: the owner processes every pending request
    # ==================================================================
    def drain(self, bucket: ConcurrentBucket, ctx) -> Iterator:
        """Drain ``bucket``'s queue; caller must have CAS-acquired it.

        With tracing on, the whole drain (including ownership
        re-acquisition rounds) is one span on the draining worker's
        track, annotated with the bucket frequency and the queue depth
        observed at entry — the raw material of a delegation-stall
        read-through (docs/observability.md).
        """
        tracer = self.tracer
        if not tracer.enabled:
            yield from self._drain(bucket, ctx)
            return
        start = tracer.now()
        pending = len(bucket.queue)
        freq = bucket.freq
        try:
            yield from self._drain(bucket, ctx)
        finally:
            tracer.add_span(
                ctx.name, "drain", "cots.bucket", start, tracer.now(),
                {"freq": freq, "pending": pending},
            )

    def _drain(self, bucket: ConcurrentBucket, ctx) -> Iterator:
        costs = self.costs
        if bucket.gc_marked:
            # acquired a bucket that was retired in between: just let go
            yield bucket.owner.store(0, TAG_BUCKET)
            return
        while True:
            while bucket.queue:
                # Bulk drain: dequeue the whole pending snapshot in one
                # step — the owner walks the FIFO once instead of paying
                # a dequeue round-trip per request.  Requests enqueued
                # *while* processing the snapshot are picked up by the
                # next iteration of the outer loop.
                pending = len(bucket.queue)
                yield Compute(costs.queue_dequeue * pending, TAG_BUCKET)
                if pending > 1:
                    self.stats["bulk_drains"] += 1
                    self.stats["bulk_drained_requests"] += pending
                for _ in range(pending):
                    if not bucket.queue:
                        # a min retirement transferred the rest of the
                        # snapshot to the new minimum bucket
                        break
                    request = bucket.queue.popleft()
                    yield from self._process(request, bucket, ctx)
                    if bucket.gc_marked:
                        # the request retired this bucket (min advanced);
                        # its queue was transferred before marking
                        yield bucket.owner.store(0, TAG_BUCKET)
                        return
            if (
                bucket.size == 0
                and not bucket.queue
                and bucket is not self.min_bucket
            ):
                # host-atomic retire of an empty non-min bucket
                bucket.gc_marked = True
                self.stats["gc_buckets"] += 1
                yield bucket.owner.store(0, TAG_BUCKET)
                return
            yield bucket.owner.store(0, TAG_BUCKET)
            if bucket.queue and not bucket.gc_marked:
                reacquired = yield bucket.owner.cas(0, 1, TAG_BUCKET)
                if reacquired:
                    if bucket.gc_marked:
                        yield bucket.owner.store(0, TAG_BUCKET)
                        return
                    continue
            return

    def drain_all(self, ctx) -> Iterator:
        """Drain every bucket the context has acquired so far."""
        while ctx.worklist:
            bucket = ctx.worklist.pop()
            yield from self.drain(bucket, ctx)

    # ==================================================================
    # Request processing (Algorithms 3-6)
    # ==================================================================
    def _process(self, request: Request, bucket: ConcurrentBucket, ctx) -> Iterator:
        if isinstance(request, IncrementRequest):
            yield from self._process_increment(request, bucket, ctx)
        elif isinstance(request, AddRequest):
            yield from self._process_add(request, bucket, ctx)
        elif isinstance(request, OverwriteRequest):
            yield from self._process_overwrite(request, bucket, ctx)
        elif isinstance(request, PruneRequest):
            yield from self._process_prune(request, bucket, ctx)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unknown request {request!r}")

    def _process_prune(
        self, request: PruneRequest, bucket: ConcurrentBucket, ctx
    ) -> Iterator:
        """§5.3 (Lossy Counting adapter): evict every *idle* element of
        the minimum-frequency bucket at a round boundary.

        Busy elements (pending increments) are skipped — their counts are
        still rising, so Lossy Counting would not prune them anyway.
        """
        costs = self.costs
        current_min = self.min_bucket
        if current_min is not bucket and current_min is not None:
            yield from self.deliver(request, current_min, ctx)
            return
        for victim in list(bucket.members):
            claimed = yield from self.table.try_remove(victim.entry, TAG_HASH)
            if claimed:
                yield Compute(costs.list_splice, TAG_STRUCTURE)
                bucket.detach(victim)
                yield self.slots.add(1, TAG_STRUCTURE)
                self.stats["pruned"] += 1
        if bucket.size == 0 and bucket is self.min_bucket:
            yield from self._retire_min(bucket, ctx)

    def _process_add(self, request: AddRequest, bucket: ConcurrentBucket, ctx) -> Iterator:
        """Algorithm 3: place a node whose final frequency is known."""
        costs = self.costs
        node = request.node
        if node.freq == bucket.freq:
            yield Compute(costs.list_splice, TAG_STRUCTURE)
            bucket.attach(node)
            yield from self.complete_element(node.entry, ctx)
            return
        if node.freq > bucket.freq:
            yield from self._find_dest(bucket, node, ctx)
            return
        # node.freq < bucket.freq: a new element below the current minimum
        if bucket is self.min_bucket:
            yield Compute(costs.alloc + costs.list_splice, TAG_STRUCTURE)
            fresh = ConcurrentBucket(node.freq)
            fresh.attach(node)
            fresh.next = bucket
            self.min_bucket = fresh
            yield from self.complete_element(node.entry, ctx)
            return
        target = self.min_bucket
        if target is None or target is bucket:
            target = yield from self._retarget(request)
        yield from self.deliver(request, target, ctx)

    def _find_dest(
        self, start: ConcurrentBucket, node: SummaryElement, ctx
    ) -> Iterator:
        """Algorithm 4: place ``node`` (freq > start.freq), owning ``start``.

        Garbage-collects retired successors, then either splices a new
        bucket right after ``start``, or delegates the Add to the last
        live bucket whose frequency does not exceed the node's (the
        bulk-increment walk).
        """
        costs = self.costs
        yield from self._gc_successors(start)
        nxt = start.next
        if nxt is None or nxt.freq > node.freq:
            yield Compute(costs.alloc + costs.list_splice, TAG_STRUCTURE)
            fresh = ConcurrentBucket(node.freq)
            fresh.attach(node)
            fresh.next = nxt
            start.next = fresh
            yield from self.complete_element(node.entry, ctx)
            return
        if nxt.freq == node.freq:
            yield from self.deliver(AddRequest(node), nxt, ctx)
            return
        # bulk increment: walk to the last live bucket with freq <= target
        self.stats["bulk_walks"] += 1
        prev = start
        cursor = nxt
        hops = 0
        while cursor is not None and cursor.freq <= node.freq:
            if not cursor.gc_marked:
                prev = cursor
            cursor = cursor.next
            hops += 1
        yield Compute(costs.pointer_chase * max(1, hops), TAG_STRUCTURE)
        if prev is start:  # every in-range successor was retired: re-GC
            yield from self._gc_successors(start)
            yield from self._find_dest(start, node, ctx)
            return
        yield from self.deliver(AddRequest(node), prev, ctx)

    def _gc_successors(self, bucket: ConcurrentBucket) -> Iterator:
        """Unlink the chain of retired buckets right after ``bucket``."""
        costs = self.costs
        removed = 0
        while bucket.next is not None and bucket.next.gc_marked:
            bucket.next = bucket.next.next
            removed += 1
        if removed:
            self.stats["gc_unlinked"] += removed
            yield Compute(costs.free * removed, TAG_STRUCTURE)

    def _process_increment(
        self, request: IncrementRequest, bucket: ConcurrentBucket, ctx
    ) -> Iterator:
        """Algorithm 5: move the node up by ``amount`` (possibly bulk)."""
        costs = self.costs
        node = request.node
        if node.bucket is not bucket:
            raise ProtocolError(
                f"increment for {node.element!r} delivered to wrong bucket"
            )
        if request.amount > 1:
            self.stats["bulk_increments"] += 1
            self.stats["bulk_total"] += request.amount
        yield Compute(costs.list_splice, TAG_STRUCTURE)
        bucket.detach(node)
        node.freq = bucket.freq + request.amount
        yield from self._find_dest(bucket, node, ctx)
        if bucket.size == 0 and bucket is self.min_bucket:
            yield from self._retire_min(bucket, ctx)

    def _process_overwrite(
        self, request: OverwriteRequest, bucket: ConcurrentBucket, ctx
    ) -> Iterator:
        """Algorithm 6: evict an idle minimum-frequency victim."""
        costs = self.costs
        current_min = self.min_bucket
        if current_min is not bucket and current_min is not None:
            # stale delivery: re-route to the live minimum bucket
            yield from self.deliver(request, current_min, ctx)
            return
        if bucket.defer_overwrites:
            # all members were busy recently; requeue behind whatever
            # increments are pending (FIFO guarantees progress)
            yield Compute(costs.queue_enqueue, TAG_BUCKET)
            bucket.queue.append(request)
            self.stats["overwrite_defers"] += 1
            return
        for victim in list(bucket.members):
            claimed = yield from self.table.try_remove(victim.entry, TAG_HASH)
            if claimed:
                yield Compute(costs.list_splice, TAG_STRUCTURE)
                bucket.detach(victim)
                entry = request.entry
                node = SummaryElement(
                    entry.element,
                    freq=bucket.freq + request.amount,
                    error=bucket.freq,
                    entry=entry,
                )
                entry.node = node
                self.stats["overwrites"] += 1
                yield from self._find_dest(bucket, node, ctx)
                if bucket.size == 0 and bucket is self.min_bucket:
                    yield from self._retire_min(bucket, ctx)
                return
        # every member is busy: defer (their pending increments are in
        # this very queue and will empty the bucket)
        yield Compute(costs.queue_enqueue, TAG_BUCKET)
        bucket.queue.append(request)
        bucket.defer_overwrites = True
        self.stats["overwrite_defers"] += 1

    def _retire_min(self, bucket: ConcurrentBucket, ctx) -> Iterator:
        """Algorithm 5's min-bucket retirement: advance the minimum
        pointer, hand any pending requests to the new minimum, and mark
        the empty bucket as garbage.

        Every scan-and-write below happens in a single host-atomic step
        (between effect yields), because the new minimum found before a
        yield can be emptied and retired by *its* owner during that
        yield — transferring a queue into a retired bucket would strand
        its requests (and the element counts they carry) forever.
        """
        costs = self.costs
        # Move the pointer off ourselves; scan and write in one step.
        new_min = bucket.next
        hops = 1
        while new_min is not None and new_min.gc_marked:
            new_min = new_min.next
            hops += 1
        self.min_bucket = new_min
        yield Compute(costs.pointer_chase * hops, TAG_STRUCTURE)
        spins = 0
        while True:
            # Retirement check (host-atomic with any transfer below).
            if not bucket.queue:
                if bucket.size == 0:
                    bucket.gc_marked = True
                    self.stats["gc_buckets"] += 1
                return
            target = self.min_bucket
            if target is None or target.gc_marked:
                # A concurrent retirement is mid-flight (or all nodes are
                # in flight); try to re-derive a live successor ourselves.
                fallback = bucket.next
                while fallback is not None and fallback.gc_marked:
                    fallback = fallback.next
                if fallback is not None:
                    self.min_bucket = target = fallback
            if target is None or target.gc_marked:
                spins += 1
                if spins > _MAX_SPINS:
                    raise ProtocolError(
                        "min retirement found no live successor"
                    )
                yield YieldCPU(TAG_BUCKET)
                continue
            moved = len(bucket.queue)
            yield Compute(costs.queue_enqueue * moved, TAG_BUCKET)
            # Re-validate and transfer in ONE host step: a marker checks
            # queue-empty in its own single step, so either it marked
            # before (we see gc_marked and retry) or it will see the
            # transferred requests and refuse to mark.
            target = self.min_bucket
            if target is None or target.gc_marked or target is bucket:
                continue
            target.queue.extend(bucket.queue)
            bucket.queue.clear()
            target.defer_overwrites = False
            self.stats["queue_transfers"] += 1
            acquired = yield target.owner.cas(0, 1, TAG_BUCKET)
            if acquired:
                ctx.worklist.append(target)

    # ==================================================================
    # Element completion: the relinquish protocol of §5.2.1
    # ==================================================================
    def complete_element(self, entry: HashEntry, ctx) -> Iterator:
        """Relinquish ``entry`` after its summary request completed.

        CAS 1→0 succeeds when no further requests were logged.  On
        failure, swap the counter back to 1 (we keep ownership) and carry
        the accumulated ``k - 1`` delegated requests back across the
        boundary as one bulk increment — the paper's key amortization.

        The pre-release check ("it will check for any pending requests on
        R and will relinquish R only when all pending requests have been
        processed") costs ``relinquish_check`` cycles; arrivals landing in
        that window keep the ownership chain alive, so hot elements stay
        held almost continuously under skew.
        """
        if self.costs.relinquish_check:
            yield Compute(self.costs.relinquish_check, TAG_HASH)
        released = yield entry.count.cas(1, 0, TAG_HASH)
        if released:
            return
        logged = yield entry.count.swap(1, TAG_HASH)
        amount = logged - 1
        if amount < 1:  # pragma: no cover - protocol violation guard
            raise ProtocolError(
                f"relinquish of {entry.element!r} saw count {logged}"
            )
        node = entry.node
        if node is None or node.bucket is None:
            raise ProtocolError(
                f"relinquish of {entry.element!r} without a placed node"
            )
        self.stats["relinquish_bulk"] += 1
        yield from self.deliver(
            IncrementRequest(node, amount), node.bucket, ctx
        )

    # ==================================================================
    # Boundary crossing (invoked by the framework when add-and-fetch == 1)
    # ==================================================================
    def cross_boundary(self, entry: HashEntry, ctx, amount: int = 1) -> Iterator:
        """Emit the summary request for a freshly-owned element.

        Crossing is the expensive path: building and logging the request
        involves the allocations and system routines §6 blames for the
        framework's per-element overhead.  Elements absorbed by
        delegation never pay this, which is what makes skewed streams
        profitable (Table 2) — the owner-side bulk chain re-uses its
        request bookkeeping, so it is charged only queue and structure
        costs.
        """
        yield Compute(self.costs.request_alloc, TAG_STRUCTURE)
        if entry.node is not None:
            yield from self.deliver(
                IncrementRequest(entry.node, amount), entry.node.bucket, ctx
            )
            return
        reserved = yield self.slots.add(-1, TAG_STRUCTURE)
        if reserved >= 0:
            yield Compute(self.costs.alloc, TAG_STRUCTURE)
            node = SummaryElement(entry.element, amount, 0, entry)
            entry.node = node
            yield from self._deliver_new(AddRequest(node), ctx)
        else:
            yield self.slots.add(1, TAG_STRUCTURE)
            request = OverwriteRequest(entry, amount)
            target = self.min_bucket
            if target is None:
                target = yield from self._retarget(request)
            yield from self.deliver(request, target, ctx)

    def _deliver_new(self, request: AddRequest, ctx) -> Iterator:
        """Deliver a new element's Add, creating the first bucket if needed."""
        costs = self.costs
        node = request.node
        spins = 0
        while True:
            target = self.min_bucket
            if target is not None:
                yield from self.deliver(request, target, ctx)
                return
            won = yield self._root_guard.cas(0, 1, TAG_STRUCTURE)
            if won:
                if self.min_bucket is None:
                    yield Compute(costs.alloc + costs.list_splice, TAG_STRUCTURE)
                    genesis = ConcurrentBucket(node.freq)
                    genesis.attach(node)
                    self.min_bucket = genesis
                    yield self._root_guard.store(0, TAG_STRUCTURE)
                    yield from self.complete_element(node.entry, ctx)
                    return
                yield self._root_guard.store(0, TAG_STRUCTURE)
            else:
                spins += 1
                if spins > _MAX_SPINS:
                    raise ProtocolError("livelock creating the first bucket")
                yield YieldCPU(TAG_STRUCTURE)

    # ==================================================================
    # Non-simulated inspection (post-quiescence queries and tests)
    # ==================================================================
    def buckets(self) -> Iterator[ConcurrentBucket]:
        """Live buckets in ascending frequency order (host-side)."""
        bucket = self.min_bucket
        while bucket is not None:
            if not bucket.gc_marked:
                yield bucket
            bucket = bucket.next

    def entries(self) -> List[CounterEntry]:
        """Monitored elements by descending count (host-side)."""
        result: List[CounterEntry] = []
        for bucket in self.buckets():
            for node in bucket.members:
                result.append(CounterEntry(node.element, bucket.freq, node.error))
        result.reverse()
        return result

    def total_count(self) -> int:
        """Sum of all monitored counts (== stream length at quiescence)."""
        return sum(b.freq * b.size for b in self.buckets())

    def monitored(self) -> int:
        """Number of monitored elements."""
        return sum(b.size for b in self.buckets())

    def to_space_saving(self) -> SpaceSaving:
        """Convert to a plain queryable :class:`SpaceSaving` snapshot."""
        return SpaceSaving.from_entries(
            self.capacity, self.entries(), self.total_count()
        )

    def check_invariants(self, mid_run: bool = False) -> None:
        """Raise on any structural inconsistency.

        Delegates to the shared :mod:`repro.schedcheck.auditor` (the
        audit raised here is a :class:`ProtocolError` subclass, so
        existing callers keep working).  ``mid_run=True`` relaxes to the
        checks that must hold at every engine yield point — see
        :func:`repro.schedcheck.auditor.audit_concurrent_summary`.
        """
        from repro.schedcheck.auditor import audit_concurrent_summary

        audit_concurrent_summary(self, mid_run=mid_run)
