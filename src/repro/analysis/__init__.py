"""Accuracy, speedup and profiling analysis utilities."""

from repro.analysis.accuracy import (
    SetAccuracy,
    average_relative_error,
    frequent_accuracy,
    set_accuracy,
    top_k_accuracy,
)
from repro.analysis.profiling import (
    FIG4_CATEGORIES,
    FIG5_CATEGORIES,
    as_percentages,
    independent_profile,
    shared_profile,
)
from repro.analysis.speedup import (
    SpeedupSeries,
    scaling_efficiency,
    speedup_table,
)

__all__ = [
    "FIG4_CATEGORIES",
    "FIG5_CATEGORIES",
    "SetAccuracy",
    "SpeedupSeries",
    "as_percentages",
    "average_relative_error",
    "frequent_accuracy",
    "independent_profile",
    "scaling_efficiency",
    "set_accuracy",
    "shared_profile",
    "speedup_table",
    "top_k_accuracy",
]
