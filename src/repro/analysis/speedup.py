"""Speedup computations matching the paper's conventions.

Figure 3 plots speedup relative to the *same scheme's* single-thread
execution; Figure 11 plots speedup relative to the 4-thread CoTS run
(the paper argues fewer threads starve the cooperation model, and 4 is
the machine's core count).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError


@dataclasses.dataclass
class SpeedupSeries:
    """A speedup curve over thread counts, for one configuration."""

    label: str
    threads: List[int]
    times: List[float]             #: simulated seconds, aligned with threads
    baseline_threads: int          #: which entry defines speedup 1.0

    def __post_init__(self) -> None:
        if len(self.threads) != len(self.times):
            raise ConfigurationError("threads and times must align")
        if self.baseline_threads not in self.threads:
            raise ConfigurationError(
                f"baseline {self.baseline_threads} missing from {self.threads}"
            )

    @property
    def baseline_time(self) -> float:
        """Execution time of the baseline thread count."""
        return self.times[self.threads.index(self.baseline_threads)]

    def speedups(self) -> List[float]:
        """Speedup of each entry relative to the baseline entry."""
        base = self.baseline_time
        return [base / t if t > 0 else float("inf") for t in self.times]

    def as_rows(self) -> List[Dict[str, float]]:
        """Rows of {threads, seconds, speedup} for reporting."""
        return [
            {"threads": n, "seconds": t, "speedup": s}
            for n, t, s in zip(self.threads, self.times, self.speedups())
        ]


def speedup_table(
    series: Sequence[SpeedupSeries],
) -> Dict[str, List[float]]:
    """Label → speedup list, for multi-line figures (one line per α)."""
    return {one.label: one.speedups() for one in series}


def scaling_efficiency(series: SpeedupSeries) -> List[float]:
    """Speedup divided by the thread ratio (1.0 = perfectly linear)."""
    base = series.baseline_threads
    return [
        speedup / (threads / base)
        for speedup, threads in zip(series.speedups(), series.threads)
    ]
