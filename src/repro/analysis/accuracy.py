"""Accuracy metrics: approximate answers versus exact ground truth.

Used by the tests (error-bound verification), the Cormode-style accuracy
comparison example, and the ablation benchmarks.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Sequence, Set, Tuple

from repro.core.counters import CounterEntry, Element, ExactCounter
from repro.errors import ConfigurationError


@dataclasses.dataclass
class SetAccuracy:
    """Precision/recall of an answer set against the exact answer set."""

    precision: float
    recall: float
    returned: int
    expected: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def set_accuracy(
    answer: Iterable[Element], truth: Iterable[Element]
) -> SetAccuracy:
    """Compare an answer set with the true set."""
    answer_set: Set[Element] = set(answer)
    truth_set: Set[Element] = set(truth)
    hits = len(answer_set & truth_set)
    precision = hits / len(answer_set) if answer_set else 1.0
    recall = hits / len(truth_set) if truth_set else 1.0
    return SetAccuracy(
        precision=precision,
        recall=recall,
        returned=len(answer_set),
        expected=len(truth_set),
    )


def frequent_accuracy(
    entries: Sequence[CounterEntry], exact: ExactCounter, phi: float
) -> SetAccuracy:
    """Accuracy of a frequent-elements answer at support ``phi``."""
    if not 0 < phi < 1:
        raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
    threshold = phi * exact.processed
    truth = [e for e, c in exact.counts().items() if c > threshold]
    return set_accuracy((entry.element for entry in entries), truth)


def top_k_accuracy(
    entries: Sequence[CounterEntry], exact: ExactCounter, k: int
) -> SetAccuracy:
    """Accuracy of a top-k answer (set overlap, order-insensitive)."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    truth = [element for element, _ in exact.top_k(k)]
    return set_accuracy((entry.element for entry in entries[:k]), truth)


def average_relative_error(
    entries: Sequence[CounterEntry], exact: ExactCounter, top: int = 0
) -> float:
    """Mean |estimate - truth| / truth over answered elements.

    ``top`` > 0 restricts to the ``top`` most frequent true elements
    (the region frequent-elements applications care about).
    """
    targets: List[Tuple[Element, int]]
    if top > 0:
        targets = exact.top_k(top)
    else:
        targets = [(entry.element, exact.estimate(entry.element)) for entry in entries]
    estimates = {entry.element: entry.count for entry in entries}
    errors = []
    for element, truth in targets:
        if truth <= 0:
            continue
        estimate = estimates.get(element, 0)
        errors.append(abs(estimate - truth) / truth)
    if not errors:
        return 0.0
    return sum(errors) / len(errors)
