"""Mapping engine time accounts onto the paper's profiling categories.

Figure 4 splits Independent Structures time into **Counting** vs
**Merge**; Figure 5 splits Shared Structure time into **Hash Opns**,
**Structure Opns**, **Min-Max Locks**, **Bucket Locks** and **Rest**.
The engine's tags already follow this taxonomy (see
:mod:`repro.parallel.base`); this module renames, buckets leftovers into
"Rest" and normalizes to percentages.
"""

from __future__ import annotations

from typing import Dict, Mapping

#: engine tag → Figure 4 category
FIG4_CATEGORIES: Dict[str, str] = {
    "counting": "Counting",
    "merge": "Merge",
}

#: engine tag → Figure 5 category
FIG5_CATEGORIES: Dict[str, str] = {
    "hash": "Hash Opns",
    "structure": "Structure Opns",
    "minmax": "Min-Max Locks",
    "bucket": "Bucket Locks",
}

REST = "Rest"


def _fold(
    breakdown: Mapping[str, float], categories: Mapping[str, str]
) -> Dict[str, float]:
    folded: Dict[str, float] = {name: 0.0 for name in categories.values()}
    folded[REST] = 0.0
    for tag, fraction in breakdown.items():
        folded[categories.get(tag, REST)] = (
            folded.get(categories.get(tag, REST), 0.0) + fraction
        )
    total = sum(folded.values())
    if total > 0:
        folded = {name: value / total for name, value in folded.items()}
    return folded


def independent_profile(breakdown: Mapping[str, float]) -> Dict[str, float]:
    """Fractions for Figure 4 (Counting / Merge / Rest)."""
    return _fold(breakdown, FIG4_CATEGORIES)


def shared_profile(breakdown: Mapping[str, float]) -> Dict[str, float]:
    """Fractions for Figure 5 (Hash / Structure / Min-Max / Bucket / Rest)."""
    return _fold(breakdown, FIG5_CATEGORIES)


def as_percentages(profile: Mapping[str, float]) -> Dict[str, float]:
    """Convert fractions to percentages rounded to one decimal."""
    return {name: round(100.0 * value, 1) for name, value in profile.items()}
