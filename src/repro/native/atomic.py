"""Lock-backed atomic primitives for real Python threads.

CPython has no public CAS on plain ints, so these wrap a small lock —
the *semantics* match the hardware atomics the CoTS protocol needs
(increment-and-fetch, CAS, swap), which is what the native protocol
validation cares about.  Performance is *not* the point here (the GIL
forbids speedup anyway); the simulator carries the performance story.
"""

from __future__ import annotations

import threading
from typing import Any


class AtomicInteger:
    """An integer with atomic add/CAS/swap (lock-based)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0) -> None:
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> int:
        """Read the current value."""
        with self._lock:
            return self._value

    def set(self, value: int) -> None:
        """Write ``value``."""
        with self._lock:
            self._value = value

    def add_and_get(self, amount: int = 1) -> int:
        """Atomically add ``amount`` and return the new value."""
        with self._lock:
            self._value += amount
            return self._value

    def compare_and_swap(self, expected: int, new: int) -> bool:
        """Set to ``new`` iff currently ``expected``; report success."""
        with self._lock:
            if self._value == expected:
                self._value = new
                return True
            return False

    def swap(self, new: int) -> int:
        """Set to ``new`` and return the previous value."""
        with self._lock:
            old = self._value
            self._value = new
            return old

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicInteger({self.get()})"


class AtomicReference:
    """A reference cell with atomic CAS/swap (lock-based)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: Any = None) -> None:
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> Any:
        """Read the current reference."""
        with self._lock:
            return self._value

    def compare_and_swap(self, expected: Any, new: Any) -> bool:
        """Set to ``new`` iff currently ``expected`` (identity); report success."""
        with self._lock:
            if self._value is expected:
                self._value = new
                return True
            return False

    def swap(self, new: Any) -> Any:
        """Set to ``new`` and return the previous reference."""
        with self._lock:
            old = self._value
            self._value = new
            return old
