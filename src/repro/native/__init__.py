"""Real-``threading`` implementations for protocol validation.

The GIL forbids intra-operator speedup in CPython, so these exist to
exercise the CoTS delegation protocol and the sharded design under
genuine preemption — correctness, not performance (DESIGN.md §2).
"""

from repro.native.atomic import AtomicInteger, AtomicReference
from repro.native.delegation import DelegationCounter, count_with_threads
from repro.native.sharded import ShardedSpaceSaving

__all__ = [
    "AtomicInteger",
    "AtomicReference",
    "DelegationCounter",
    "ShardedSpaceSaving",
    "count_with_threads",
]
