"""Real-thread Independent Structures: per-thread counters plus a merge.

The shared-nothing counterpart to :mod:`repro.native.delegation`: each
thread counts its partition into a private Space Saving instance (no
synchronization at all), and queries merge the locals on demand — the
design of §4.1, runnable on real threads for functional validation.
"""

from __future__ import annotations

import threading
from typing import Hashable, List, Optional, Sequence

from repro.core.merge import merge_space_saving
from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError
from repro.workloads.partition import block_partition

Element = Hashable


class ShardedSpaceSaving:
    """Per-thread Space Saving locals with on-demand merge."""

    def __init__(self, threads: int, capacity: int) -> None:
        if threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {threads}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.threads = threads
        self.capacity = capacity
        self.locals: List[SpaceSaving] = [
            SpaceSaving(capacity=capacity) for _ in range(threads)
        ]

    def count(self, stream: Sequence[Element]) -> None:
        """Partition ``stream`` into contiguous blocks and count on real
        threads, each draining its block through the batched
        ``process_many`` fast lane (one slice copy, chunked
        pre-aggregation) instead of a per-element ``process`` loop over
        a strided slice."""
        parts = block_partition(stream, self.threads)

        def work(index: int) -> None:
            self.locals[index].process_many(parts[index])

        workers = [
            threading.Thread(target=work, args=(i,), daemon=True)
            for i in range(self.threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

    def merged(self, capacity: Optional[int] = None) -> SpaceSaving:
        """Serial merge of the local structures (the query path)."""
        return merge_space_saving(
            self.locals, capacity=capacity or self.capacity
        )

    @property
    def processed(self) -> int:
        """Total elements processed across all locals."""
        return sum(local.processed for local in self.locals)
