"""Real-thread validation of the CoTS element-delegation protocol.

This runs Algorithm 2's delegation and relinquish dance with genuine
``threading.Thread`` preemption: every element has an atomic delegation
counter; a thread whose increment-and-fetch returns 1 owns the element
and applies counts to the shared summary dictionary; on relinquish it
CASes 1→0, and on failure swaps back to 1 and applies the accumulated
requests as one bulk increment.

Because only the owner ever writes an element's summary count, the
summary needs *no lock at all* — the protocol itself serializes writers.
The test-suite hammers this with many threads and asserts the final
counts are exactly the stream's true frequencies, which is the property
the simulator's CoTS implementation relies on.

(Under the GIL this cannot be *faster* than sequential counting; it
exists to validate the protocol under real preemption, see DESIGN.md §2.)
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.native.atomic import AtomicInteger

Element = Hashable


class DelegationCounter:
    """Exact frequency counting via the CoTS delegation protocol."""

    def __init__(self) -> None:
        self._gates: Dict[Element, AtomicInteger] = {}
        self._gates_lock = threading.Lock()
        #: written only by an element's current owner — no lock needed
        self.counts: Dict[Element, int] = {}
        #: protocol telemetry
        self.delegated = AtomicInteger(0)
        self.bulk_applied = AtomicInteger(0)

    def _gate(self, element: Element) -> AtomicInteger:
        gate = self._gates.get(element)
        if gate is None:
            with self._gates_lock:
                gate = self._gates.setdefault(element, AtomicInteger(0))
        return gate

    def process(self, element: Element) -> None:
        """Count one occurrence (Algorithm 2 + the relinquish protocol)."""
        gate = self._gate(element)
        observed = gate.add_and_get(1)
        if observed > 1:
            # logged; the current owner is obliged to apply it
            self.delegated.add_and_get(1)
            return
        amount = 1
        while True:
            # we own the element: apply the pending amount
            self.counts[element] = self.counts.get(element, 0) + amount
            if gate.compare_and_swap(1, 0):
                return
            logged = gate.swap(1)
            amount = logged - 1
            if amount < 1:  # pragma: no cover - protocol violation guard
                raise ConfigurationError(
                    f"relinquish saw impossible count {logged}"
                )
            self.bulk_applied.add_and_get(1)

    def estimate(self, element: Element) -> int:
        """Current count of ``element`` (exact once threads quiesce)."""
        return self.counts.get(element, 0)

    def total(self) -> int:
        """Sum of all counts (== stream length at quiescence)."""
        return sum(self.counts.values())


def count_with_threads(
    stream: Sequence[Element],
    threads: int = 4,
    counter: Optional[DelegationCounter] = None,
) -> DelegationCounter:
    """Partition ``stream`` across real threads and count cooperatively."""
    if threads < 1:
        raise ConfigurationError(f"threads must be >= 1, got {threads}")
    counter = counter if counter is not None else DelegationCounter()

    def work(part: Sequence[Element]) -> None:
        for element in part:
            counter.process(element)

    workers: List[threading.Thread] = [
        threading.Thread(target=work, args=(stream[i::threads],), daemon=True)
        for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    return counter
