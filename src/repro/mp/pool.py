"""The parent-process side: a pool of sharded counting workers.

:class:`ShardedProcessPool` is the repo's first backend with *real*
wall-clock parallelism: ``workers`` OS processes (no GIL sharing), each
owning a private Space Saving shard, fed in large pickled batches so the
per-element IPC overhead amortizes away.  The life cycle is

1. **dispatch** — :meth:`count` reads the stream one chunk at a time
   (:func:`repro.workloads.partition.chunked`), routes each chunk with
   the configured partitioner (hash by default: every element has a home
   shard), and ships the per-worker batches over bounded task queues —
   the bound is the backpressure that keeps a slow worker from buffering
   the whole stream;
2. **query** — :meth:`merged` snapshots every shard (a FIFO command on
   the same queue, so it observes all previously dispatched batches),
   rebuilds the shards in the parent via ``SpaceSaving.from_entries``
   and folds them through :func:`repro.core.merge.hierarchical_merge`,
   so answers carry the documented merge error bounds;
3. **shutdown** — :meth:`close` (or the context manager) stops, joins
   and if necessary terminates every worker; it is idempotent and runs
   on *every* error path, so a crash or timeout never leaves a hung
   pool behind.

Worker failure surfaces as typed :mod:`repro.errors` exceptions:
:class:`~repro.errors.WorkerCrashError` when a worker raised or died,
:class:`~repro.errors.WorkerTimeoutError` when one stopped responding
within ``config.timeout`` seconds.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.counters import CounterEntry
from repro.core.merge import hierarchical_merge
from repro.core.space_saving import SpaceSaving
from repro.errors import BackendError, WorkerCrashError, WorkerTimeoutError
from repro.mp.config import MPConfig
from repro.mp.worker import shard_main
from repro.obs.registry import TIME_BUCKETS, coerce
from repro.obs.tracing import coerce_tracer
from repro.workloads.partition import chunked, partition

Element = Hashable

#: (entries, processed, capacity) triple describing one shard snapshot
ShardState = Tuple[List[Tuple[Element, int, int]], int, int]


class ShardedProcessPool:
    """Process-pool sharded Space Saving with merge-on-query semantics.

    ``metrics`` optionally attaches a :class:`repro.obs.MetricsRegistry`
    (parent-side only; nothing crosses the process boundary): dispatched
    items/batches, per-worker routed items, task-queue occupancy sampled
    at each put, and snapshot/merge latency histograms.

    ``tracer`` optionally attaches a :class:`repro.obs.tracing.Tracer`.
    The parent records dispatch/snapshot/merge spans on the ``driver``
    track; workers are started with tracing on and ship their batch
    spans back with each snapshot reply, where they are re-based onto
    the parent's ``perf_counter`` timeline under ``shard-<i>/`` tracks.
    """

    def __init__(
        self, config: Optional[MPConfig] = None, metrics=None, tracer=None
    ) -> None:
        self.config = config or MPConfig()
        self.metrics = coerce(metrics)
        self.tracer = coerce_tracer(tracer)
        self._m_items = self.metrics.counter("mp.dispatched.items")
        self._m_batches = self.metrics.counter("mp.dispatched.batches")
        self._m_worker_items = [
            self.metrics.counter(f"mp.worker.{index}.items")
            for index in range(self.config.workers)
        ]
        self._m_queue_occupancy = self.metrics.histogram(
            "mp.queue.occupancy", buckets=(0, 1, 2, 4, 8, 16, 32)
        )
        self._m_snapshot_seconds = self.metrics.histogram(
            "mp.snapshot.seconds", buckets=TIME_BUCKETS
        )
        self._m_merge_seconds = self.metrics.histogram(
            "mp.merge.seconds", buckets=TIME_BUCKETS
        )
        #: per-worker dispatched element counts (kept even without a
        #: registry, so callers can derive items/sec after a run)
        self.worker_items: List[int] = [0] * self.config.workers
        context = multiprocessing.get_context(self.config.start_method)
        self._tasks = [
            context.Queue(maxsize=self.config.queue_depth)
            for _ in range(self.config.workers)
        ]
        self._replies = context.Queue()
        self._processes = [
            context.Process(
                target=shard_main,
                args=(
                    index,
                    self._tasks[index],
                    self._replies,
                    self.config.capacity,
                    self.config.fault,
                    self.tracer.enabled,
                ),
                name=f"repro-mp-shard-{index}",
                daemon=True,
            )
            for index in range(self.config.workers)
        ]
        self._dispatched = 0
        self._snapshot_token = 0
        self._closed = False
        for process in self._processes:
            process.start()

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def processed(self) -> int:
        """Stream elements dispatched to the pool so far."""
        return self._dispatched

    def __enter__(self) -> "ShardedProcessPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Stop, join and reap every worker; always safe to call again.

        Workers that do not exit within a grace period after the stop
        command are terminated.  Queues are closed with their feeder
        threads cancelled so the parent can never hang on shutdown.
        """
        if self._closed:
            return
        self._closed = True
        for tasks, process in zip(self._tasks, self._processes):
            if process.is_alive():
                try:
                    tasks.put_nowait(("stop",))
                except (queue_module.Full, ValueError, OSError):
                    pass  # full queue or dead pipe: terminate below
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for q in [*self._tasks, self._replies]:
            q.close()
            q.cancel_join_thread()

    def worker_exitcodes(self) -> List[Optional[int]]:
        """Exit codes of the (joined) workers; None while running."""
        return [process.exitcode for process in self._processes]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def count(self, stream: Iterable[Element]) -> int:
        """Route ``stream`` to the worker shards in pickled batches.

        Returns the number of elements dispatched.  The stream is
        consumed incrementally (any iterable works); each chunk is split
        with the configured partitioner and only non-empty batches are
        shipped.  Raises :class:`WorkerCrashError` /
        :class:`WorkerTimeoutError` (after closing the pool) if a worker
        died or stopped draining its queue.
        """
        self._ensure_open()
        tracer = self.tracer
        sent = 0
        for chunk in chunked(stream, self.config.chunk_elements):
            if tracer.enabled:
                dispatch_start = tracer.now()
            self._poll_for_errors()
            batches = partition(chunk, self.workers, self.config.partition_how)
            shipped = 0
            for index, batch in enumerate(batches):
                if batch:
                    self._put(index, ("count", batch))
                    self._m_batches.inc()
                    self._m_worker_items[index].inc(len(batch))
                    self.worker_items[index] += len(batch)
                    shipped += 1
            sent += len(chunk)
            self._dispatched += len(chunk)
            self._m_items.inc(len(chunk))
            if tracer.enabled:
                tracer.add_span(
                    "driver", "dispatch", "mp", dispatch_start, tracer.now(),
                    {"items": len(chunk), "batches": shipped},
                )
        return sent

    def _ensure_open(self) -> None:
        if self._closed:
            raise BackendError("pool is closed")

    def _put(self, index: int, message: tuple) -> None:
        process = self._processes[index]
        if not process.is_alive():
            self._fail_crashed(index)
        if self.metrics.enabled:
            try:
                self._m_queue_occupancy.observe(self._tasks[index].qsize())
            except NotImplementedError:  # pragma: no cover - macOS qsize
                pass
        try:
            self._tasks[index].put(message, timeout=self.config.timeout)
        except queue_module.Full:
            if not process.is_alive():
                self._fail_crashed(index)
            self.close()
            raise WorkerTimeoutError(
                index, self.config.timeout, "dispatch"
            ) from None

    def _fail_crashed(self, index: int, detail: str = "") -> None:
        """Close the pool and raise the typed crash error for ``index``."""
        if not detail:
            # The worker reports its exception on the reply queue right
            # before dying; give the in-flight message a moment to land
            # so the error carries the remote detail, not just the code.
            detail = self._drain_error_detail(
                wait=0.5, wait_for=index
            ).get(index, "")
        self._processes[index].join(timeout=0.5)
        exitcode = self._processes[index].exitcode
        self.close()
        raise WorkerCrashError(index, detail=detail, exitcode=exitcode)

    def _drain_error_detail(
        self, wait: float = 0.0, wait_for: Optional[int] = None
    ) -> Dict[int, str]:
        """Sweep the reply queue for error reports.

        With ``wait > 0`` reads keep blocking (in short slices, up to
        ``wait`` seconds total) until the report of worker ``wait_for``
        arrives — used when that worker is already known dead and its
        report may still be in flight.  Without it reads never block.
        """
        details: Dict[int, str] = {}
        deadline = time.monotonic() + wait
        while True:
            remaining = deadline - time.monotonic()
            block = remaining > 0 and (
                wait_for is None or wait_for not in details
            )
            try:
                if block:
                    message = self._replies.get(
                        timeout=min(remaining, 0.05)
                    )
                else:
                    message = self._replies.get_nowait()
            except queue_module.Empty:
                if not block:
                    return details
            except (OSError, ValueError):
                return details
            else:
                if message[1] == "error":
                    details[message[0]] = message[2]

    def _poll_for_errors(self) -> None:
        """Fail fast if any worker has already reported an error."""
        details = self._drain_error_detail()
        if details:
            index = min(details)
            self._fail_crashed(index, detail=details[index])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def snapshot(self) -> List[SpaceSaving]:
        """Rebuild every worker shard in the parent process.

        The snapshot command travels the same FIFO queues as the count
        batches, so each shard's reply reflects every batch dispatched
        before the call — queries are consistent with dispatch order.
        """
        self._ensure_open()
        started = time.perf_counter()
        self._snapshot_token += 1
        token = self._snapshot_token
        for index in range(self.workers):
            self._put(index, ("snapshot", token))
        states = self._collect_snapshots(token)
        shards: List[SpaceSaving] = []
        for entries, processed, capacity in states:
            shards.append(
                SpaceSaving.from_entries(
                    capacity,
                    [CounterEntry(e, count, error) for e, count, error in entries],
                    processed,
                )
            )
        self._m_snapshot_seconds.observe(time.perf_counter() - started)
        if self.tracer.enabled:
            self.tracer.add_span(
                "driver", "snapshot", "mp", started, self.tracer.now(),
                {"token": token, "shards": len(shards)},
            )
        return shards

    def _collect_snapshots(self, token: int) -> List[ShardState]:
        pending = set(range(self.workers))
        states: List[Optional[ShardState]] = [None] * self.workers
        while pending:
            try:
                message = self._replies.get(timeout=self.config.timeout)
            except queue_module.Empty:
                for index in sorted(pending):
                    if not self._processes[index].is_alive():
                        self._fail_crashed(index)
                index = min(pending)
                self.close()
                raise WorkerTimeoutError(
                    index, self.config.timeout, "snapshot"
                ) from None
            kind = message[1]
            if kind == "error":
                self._fail_crashed(message[0], detail=message[2])
            if kind != "snapshot" or message[2] != token:
                continue  # stale reply from an earlier, abandoned query
            index = message[0]
            states[index] = (message[3], message[4], message[5])
            if len(message) > 7 and self.tracer.enabled:
                # worker spans rode along: re-base them onto our clock.
                # perf_counter epochs can differ across processes; the
                # worker stamped the reply with its own clock reading, so
                # receive-time minus that reading is the offset (the
                # queue transit time is absorbed into it — spans land a
                # hair late but never out of order).
                offset = self.tracer.now() - message[7]
                self.tracer.ingest(
                    message[6], offset=offset, track_prefix=f"shard-{index}/"
                )
            pending.discard(index)
        return [state for state in states if state is not None]

    def merged(self, capacity: Optional[int] = None) -> SpaceSaving:
        """One queryable summary folding all shards via the tree merge.

        The result carries the mergeable-summaries guarantees the merge
        tests pin down: estimates stay upper bounds of true counts and
        ``estimate - error`` stays a lower bound, with absence widening
        charged per original shard.
        """
        shards = self.snapshot()
        started = time.perf_counter()
        merged = hierarchical_merge(
            shards, capacity=capacity or self.config.capacity
        )
        self._m_merge_seconds.observe(time.perf_counter() - started)
        if self.tracer.enabled:
            self.tracer.add_span(
                "driver", "merge", "mp", started, self.tracer.now(),
                {"shards": len(shards)},
            )
        return merged
