"""The parent-process side: a pool of sharded counting workers.

:class:`ShardedProcessPool` is the repo's first backend with *real*
wall-clock parallelism: ``workers`` OS processes (no GIL sharing), each
owning a private Space Saving shard.  Two data planes feed them
(``config.transport``):

* ``shm`` (default) — the zero-copy plane of :mod:`repro.mp.shm`: each
  dispatch chunk is pre-aggregated into distinct integer-coded
  ``(code, weight)`` pairs (one numpy/Counter pass, no per-element
  Python loop), hash-routed with vectorized numpy ops, and written into
  per-worker shared-memory ring segments; only a tiny ``("seg", ...)``
  control message crosses the task queue.  Workers count codes and the
  parent decodes them against its vocabulary at snapshot time.
* ``pickle`` — the original transport: the chunk is split with
  :func:`repro.workloads.partition.partition` and each batch is pickled
  whole onto the worker's task queue.  Slower (the pickling costs as
  much as the counting) but order-exact, so it stays as the fallback
  and the differential reference.

The life cycle is

1. **dispatch** — :meth:`count` reads the stream one chunk at a time
   (:func:`repro.workloads.partition.chunked`) and routes it to the
   worker shards.  Backpressure: the pickle plane blocks on the bounded
   task queue, the shm plane on ring-segment availability (stalls are
   metered, never silent);
2. **query** — :meth:`merged` snapshots every shard (a FIFO command on
   the same queue, so it observes all previously dispatched batches),
   rebuilds the shards in the parent via ``SpaceSaving.from_entries``
   and folds them through :func:`repro.core.merge.hierarchical_merge`,
   so answers carry the documented merge error bounds;
3. **shutdown** — :meth:`close` (or the context manager) stops, joins
   and if necessary terminates every worker; it is idempotent and runs
   on *every* error path, so a crash or timeout never leaves a hung
   pool behind.  Stop acknowledgements are drained (bounded wait)
   before the queues are torn down, so a clean shutdown never races a
   worker's last reply into a broken pipe.

Worker failure surfaces as typed :mod:`repro.errors` exceptions:
:class:`~repro.errors.WorkerCrashError` when a worker raised or died,
:class:`~repro.errors.WorkerTimeoutError` when one stopped responding
within ``config.timeout`` seconds.
"""

from __future__ import annotations

import collections
import multiprocessing
import queue as queue_module
import time
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.counters import CounterEntry
from repro.core.merge import hierarchical_merge
from repro.core.space_saving import SpaceSaving
from repro.errors import BackendError, WorkerCrashError, WorkerTimeoutError
from repro.mp.config import MPConfig
from repro.mp.shm import ShmRing, StreamCodec, route_coded
from repro.mp.worker import shard_main
from repro.obs.registry import TIME_BUCKETS, coerce, merge_snapshots
from repro.obs.tracing import coerce_tracer
from repro.workloads.partition import chunked, partition

Element = Hashable

#: (entries, processed, capacity) triple describing one shard snapshot
ShardState = Tuple[List[Tuple[Element, int, int]], int, int]

#: seconds between ring status polls while waiting on backpressure
_STALL_POLL_SECONDS = 0.0005

#: bounded wait for stop acknowledgements during a clean close
_STOP_ACK_SECONDS = 1.0


class ShardedProcessPool:
    """Process-pool sharded Space Saving with merge-on-query semantics.

    ``metrics`` optionally attaches a :class:`repro.obs.MetricsRegistry`
    (parent-side only; nothing crosses the process boundary): dispatched
    items/batches, per-worker routed items, task-queue occupancy sampled
    at each put, snapshot/merge latency histograms, and — on the shm
    plane — ring occupancy, dispatch stalls and payload bytes.

    ``tracer`` optionally attaches a :class:`repro.obs.tracing.Tracer`.
    The parent records dispatch/snapshot/merge spans on the ``driver``
    track; workers are started with tracing on and ship their batch
    spans back with each snapshot reply, where they are re-based onto
    the parent's ``perf_counter`` timeline under ``shard-<i>/`` tracks.
    """

    def __init__(
        self, config: Optional[MPConfig] = None, metrics=None, tracer=None
    ) -> None:
        self.config = config or MPConfig()
        self.metrics = coerce(metrics)
        self.tracer = coerce_tracer(tracer)
        self._m_items = self.metrics.counter("mp.dispatched.items")
        self._m_batches = self.metrics.counter("mp.dispatched.batches")
        self._m_worker_items = [
            self.metrics.counter(f"mp.worker.{index}.items")
            for index in range(self.config.workers)
        ]
        self._m_queue_occupancy = self.metrics.histogram(
            "mp.queue.occupancy", buckets=(0, 1, 2, 4, 8, 16, 32)
        )
        self._m_snapshot_seconds = self.metrics.histogram(
            "mp.snapshot.seconds", buckets=TIME_BUCKETS
        )
        self._m_merge_seconds = self.metrics.histogram(
            "mp.merge.seconds", buckets=TIME_BUCKETS
        )
        self._m_replies_discarded = self.metrics.counter(
            "mp.replies.discarded"
        )
        self._m_shm_bytes = self.metrics.counter("mp.shm.bytes")
        self._m_ring_stalls = self.metrics.counter("mp.shm.ring_stalls")
        self._m_stall_seconds = self.metrics.histogram(
            "mp.shm.stall_seconds", buckets=TIME_BUCKETS
        )
        self._m_ring_occupancy = self.metrics.histogram(
            "mp.shm.ring_occupancy", buckets=(0, 1, 2, 4, 8)
        )
        self._m_beacons_received = self.metrics.counter(
            "mp.beacons.received"
        )
        #: per-worker dispatched element counts (kept even without a
        #: registry, so callers can derive items/sec after a run)
        self.worker_items: List[int] = [0] * self.config.workers
        #: latest telemetry beacon per worker (registry-shaped snapshots)
        self.worker_beacons: Dict[int, Dict] = {}
        #: kinds of stale replies swallowed by error/shutdown sweeps
        self._discarded_replies: collections.Counter = collections.Counter()
        self._use_shm = self.config.transport == "shm"
        self._codec = StreamCodec() if self._use_shm else None
        self._rings: List[ShmRing] = []
        self._next_segment = [0] * self.config.workers
        if self._use_shm:
            # worst case one chunk is all-distinct and lands whole on a
            # single worker, so every segment must hold a full chunk
            self._rings = [
                ShmRing(self.config.chunk_elements, self.config.ring_segments)
                for _ in range(self.config.workers)
            ]
        context = multiprocessing.get_context(self.config.start_method)
        self._tasks = [
            context.Queue(maxsize=self.config.queue_depth)
            for _ in range(self.config.workers)
        ]
        self._replies = context.Queue()
        self._processes = []
        for index in range(self.config.workers):
            target, args = self._worker_spec(index)
            self._processes.append(context.Process(
                target=target,
                args=args,
                name=f"repro-mp-shard-{index}",
                daemon=True,
            ))
        self._dispatched = 0
        self._snapshot_token = 0
        self._closed = False
        try:
            for process in self._processes:
                process.start()
        except BaseException:
            self._release_rings()
            raise

    def _worker_spec(self, index: int) -> Tuple[Any, tuple]:
        """(target, args) for worker ``index`` — subclass extension point.

        The one-table pool swaps in a different worker main (same queue
        protocol, different counting structure) without re-implementing
        the pool life cycle.
        """
        return shard_main, (
            index,
            self._tasks[index],
            self._replies,
            self.config.capacity,
            self.config.fault,
            self.tracer.enabled,
            (
                self._rings[index].name,
                self.config.chunk_elements,
                self.config.ring_segments,
            ) if self._use_shm else None,
            self.config.beacon_every,
        )

    def _note_chunk(self, codes, weights) -> None:
        """Hook: one encoded chunk is about to be routed (shm plane only).

        The base pool does nothing; the one-table pool tracks heavy
        candidate codes here (the table alone cannot enumerate keys).
        """

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def processed(self) -> int:
        """Stream elements dispatched to the pool so far."""
        return self._dispatched

    def __enter__(self) -> "ShardedProcessPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Stop, join and reap every worker; always safe to call again.

        Clean-shutdown order matters: workers acknowledge ``("stop",)``
        on the reply queue, so those acks are drained (bounded wait)
        *before* the queues are closed — tearing the reply queue down
        with acks still in flight used to race a worker's last ``put``
        into a broken pipe and turn a clean exit into a crash exit.
        Workers that do not exit within a grace period after the stop
        command are terminated.  Queues are closed with their feeder
        threads cancelled so the parent can never hang on shutdown.
        """
        if self._closed:
            return
        self._closed = True
        acks_expected = 0
        for tasks, process in zip(self._tasks, self._processes):
            if process.is_alive():
                try:
                    tasks.put_nowait(("stop",))
                    acks_expected += 1
                except (queue_module.Full, ValueError, OSError):
                    pass  # full queue or dead pipe: terminate below
        self._drain_stop_acks(acks_expected)
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for q in [*self._tasks, self._replies]:
            q.close()
            q.cancel_join_thread()
        self._release_rings()

    def _release_rings(self) -> None:
        for ring in self._rings:
            ring.close()
        self._rings = []

    def _drain_stop_acks(self, expected: int) -> None:
        """Consume ``("stopped", ...)`` acks so queue teardown is race-free.

        Bounded: waits at most :data:`_STOP_ACK_SECONDS` total, so a
        worker that is wedged (or already dead) can never hang a close.
        Anything else still in flight (stale snapshots, late errors) is
        swallowed and counted as discarded — the pool is going away.
        """
        deadline = time.monotonic() + _STOP_ACK_SECONDS
        seen = 0
        while seen < expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            try:
                message = self._replies.get(timeout=min(remaining, 0.05))
            except queue_module.Empty:
                continue
            except (OSError, ValueError):
                return
            if message[1] == "stopped":
                seen += 1
            elif message[1] == "beacon":
                self._fold_beacon(message)
            else:
                self._m_replies_discarded.inc()
                self._discarded_replies[str(message[1])] += 1

    def worker_exitcodes(self) -> List[Optional[int]]:
        """Exit codes of the (joined) workers; None while running."""
        return [process.exitcode for process in self._processes]

    # ------------------------------------------------------------------
    # Worker telemetry beacons
    # ------------------------------------------------------------------
    def _fold_beacon(self, message: tuple) -> None:
        """Keep the latest beacon per worker (never counted as discarded)."""
        self.worker_beacons[message[0]] = message[2]
        self._m_beacons_received.inc()

    def poll_beacons(self) -> Dict[int, Dict]:
        """Drain pending replies and return the latest beacon per worker.

        Non-blocking: sweeps whatever is already on the reply queue
        (folding beacons, failing fast on worker errors like any
        dispatch does) and returns a copy of the per-worker beacon
        snapshots.  Workers that have not beaconed yet are absent.
        """
        self._ensure_open()
        self._poll_for_errors()
        return dict(self.worker_beacons)

    def beacon_snapshot(self) -> Dict[str, Dict]:
        """All workers' latest beacons merged into one registry snapshot.

        Per-worker names are disjoint (``mp.beacon.<i>.*``), so the
        merge is a union — the shape the serve tier folds into its own
        registry snapshot for exposition.
        """
        return merge_snapshots(*(
            self.worker_beacons[index]
            for index in sorted(self.worker_beacons)
        ))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def count(self, stream: Iterable[Element]) -> int:
        """Route ``stream`` to the worker shards chunk by chunk.

        Returns the number of elements dispatched.  The stream is
        consumed incrementally (any iterable works).  On the shm plane
        each chunk is pre-aggregated, integer-coded and written into
        ring segments; on the pickle plane it is split with the
        configured partitioner and shipped as pickled batches.  Raises
        :class:`WorkerCrashError` / :class:`WorkerTimeoutError` (after
        closing the pool) if a worker died or stopped draining.
        """
        self._ensure_open()
        if self._use_shm:
            return self._count_shm(stream)
        return self._count_pickle(stream)

    def _count_pickle(self, stream: Iterable[Element]) -> int:
        tracer = self.tracer
        sent = 0
        for chunk in chunked(stream, self.config.chunk_elements):
            if tracer.enabled:
                dispatch_start = tracer.now()
            self._poll_for_errors()
            batches = partition(chunk, self.workers, self.config.partition_how)
            shipped = 0
            for index, batch in enumerate(batches):
                if batch:
                    self._put(index, ("count", batch))
                    self._m_batches.inc()
                    self._m_worker_items[index].inc(len(batch))
                    self.worker_items[index] += len(batch)
                    shipped += 1
            sent += len(chunk)
            self._dispatched += len(chunk)
            self._m_items.inc(len(chunk))
            if tracer.enabled:
                tracer.add_span(
                    "driver", "dispatch", "mp", dispatch_start, tracer.now(),
                    {"items": len(chunk), "batches": shipped},
                )
        return sent

    def _count_shm(self, stream: Iterable[Element]) -> int:
        tracer = self.tracer
        codec = self._codec
        metrics_on = self.metrics.enabled
        sent = 0
        for chunk in chunked(stream, self.config.chunk_elements):
            if tracer.enabled:
                dispatch_start = tracer.now()
            self._poll_for_errors()
            codes, weights = codec.encode_chunk(chunk)
            self._note_chunk(codes, weights)
            routed = route_coded(
                codes, weights, self.workers, self.config.partition_how
            )
            shipped = 0
            for index, (shard_codes, shard_weights) in enumerate(routed):
                records = len(shard_codes)
                if not records:
                    continue
                ring = self._rings[index]
                segment = self._next_segment[index]
                if metrics_on:
                    self._m_ring_occupancy.observe(ring.busy_segments())
                self._wait_segment_free(index, ring, segment)
                payload = ring.fill(segment, shard_codes, shard_weights)
                weight_total = int(shard_weights.sum())
                self._put(index, ("seg", segment, records, weight_total))
                self._next_segment[index] = (segment + 1) % ring.segments
                self._m_shm_bytes.inc(payload)
                self._m_batches.inc()
                self._m_worker_items[index].inc(weight_total)
                self.worker_items[index] += weight_total
                shipped += 1
            sent += len(chunk)
            self._dispatched += len(chunk)
            self._m_items.inc(len(chunk))
            if tracer.enabled:
                tracer.add_span(
                    "driver", "dispatch", "mp", dispatch_start, tracer.now(),
                    {
                        "items": len(chunk),
                        "batches": shipped,
                        "distinct": len(codes),
                    },
                )
        return sent

    def _wait_segment_free(
        self, index: int, ring: ShmRing, segment: int
    ) -> None:
        """Block until the worker frees ``segment`` (shm backpressure).

        A full ring means the worker is behind by ``ring_segments``
        batches — the analogue of the pickle plane's bounded queue.
        The wait polls the one-byte status flag, metering the stall,
        and converts a dead worker / expired timeout into the same
        typed errors a blocked queue put raises.
        """
        if ring.is_free(segment):
            return
        self._m_ring_stalls.inc()
        stall_started = time.perf_counter()
        deadline = time.monotonic() + self.config.timeout
        while not ring.is_free(segment):
            if not self._processes[index].is_alive():
                self._fail_crashed(index)
            if time.monotonic() > deadline:
                self.close()
                raise WorkerTimeoutError(
                    index, self.config.timeout, "dispatch"
                )
            time.sleep(_STALL_POLL_SECONDS)
        self._m_stall_seconds.observe(time.perf_counter() - stall_started)

    def _ensure_open(self) -> None:
        if self._closed:
            raise BackendError("pool is closed")

    def _put(self, index: int, message: tuple) -> None:
        process = self._processes[index]
        if not process.is_alive():
            self._fail_crashed(index)
        if self.metrics.enabled:
            try:
                self._m_queue_occupancy.observe(self._tasks[index].qsize())
            except NotImplementedError:  # pragma: no cover - macOS qsize
                pass
        try:
            self._tasks[index].put(message, timeout=self.config.timeout)
        except queue_module.Full:
            if not process.is_alive():
                self._fail_crashed(index)
            self.close()
            raise WorkerTimeoutError(
                index, self.config.timeout, "dispatch"
            ) from None

    def _fail_crashed(self, index: int, detail: str = "") -> None:
        """Close the pool and raise the typed crash error for ``index``."""
        if not detail:
            # The worker reports its exception on the reply queue right
            # before dying; give the in-flight message a moment to land
            # so the error carries the remote detail, not just the code.
            detail = self._drain_error_detail(
                wait=0.5, wait_for=index
            ).get(index, "")
        if self._discarded_replies:
            stale = ", ".join(
                f"{kind} x{count}"
                for kind, count in sorted(self._discarded_replies.items())
            )
            suffix = f"[discarded stale replies: {stale}]"
            detail = f"{detail} {suffix}" if detail else suffix
        self._processes[index].join(timeout=0.5)
        exitcode = self._processes[index].exitcode
        self.close()
        raise WorkerCrashError(index, detail=detail, exitcode=exitcode)

    def _drain_error_detail(
        self, wait: float = 0.0, wait_for: Optional[int] = None
    ) -> Dict[int, str]:
        """Sweep the reply queue for error reports.

        With ``wait > 0`` reads keep blocking (in short slices, up to
        ``wait`` seconds total) until the report of worker ``wait_for``
        arrives — used when that worker is already known dead and its
        report may still be in flight.  Without it reads never block.

        Non-error replies crossing the sweep (stale snapshots from an
        abandoned query, stop acks) are *not* silently dropped: each is
        counted into ``mp.replies.discarded`` and remembered by kind so
        a raised :class:`WorkerCrashError` can surface them.
        """
        details: Dict[int, str] = {}
        deadline = time.monotonic() + wait
        while True:
            remaining = deadline - time.monotonic()
            block = remaining > 0 and (
                wait_for is None or wait_for not in details
            )
            try:
                if block:
                    message = self._replies.get(
                        timeout=min(remaining, 0.05)
                    )
                else:
                    message = self._replies.get_nowait()
            except queue_module.Empty:
                if not block:
                    return details
            except (OSError, ValueError):
                return details
            else:
                if message[1] == "error":
                    details[message[0]] = message[2]
                elif message[1] == "beacon":
                    self._fold_beacon(message)
                else:
                    self._m_replies_discarded.inc()
                    self._discarded_replies[str(message[1])] += 1

    def _poll_for_errors(self) -> None:
        """Fail fast if any worker has already reported an error."""
        details = self._drain_error_detail()
        if details:
            index = min(details)
            self._fail_crashed(index, detail=details[index])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def snapshot(self) -> List[SpaceSaving]:
        """Rebuild every worker shard in the parent process.

        The snapshot command travels the same FIFO queues as the count
        batches, so each shard's reply reflects every batch dispatched
        before the call — queries are consistent with dispatch order.
        Under the shm transport the replies carry integer codes; they
        are decoded against the parent-owned vocabulary here, so workers
        never need the key objects at all.
        """
        self._ensure_open()
        started = time.perf_counter()
        if self.tracer.enabled:
            span_start = self.tracer.now()
        self._snapshot_token += 1
        token = self._snapshot_token
        for index in range(self.workers):
            self._put(index, ("snapshot", token))
        states = self._collect_snapshots(token)
        shards: List[SpaceSaving] = []
        for entries, processed, capacity in states:
            if self._codec is not None:
                entries = self._codec.decode_entries(entries)
            shards.append(
                SpaceSaving.from_entries(
                    capacity,
                    [CounterEntry(e, count, error) for e, count, error in entries],
                    processed,
                )
            )
        self._m_snapshot_seconds.observe(time.perf_counter() - started)
        if self.tracer.enabled:
            self.tracer.add_span(
                "driver", "snapshot", "mp", span_start, self.tracer.now(),
                {"token": token, "shards": len(shards)},
            )
        return shards

    def _collect_snapshots(self, token: int) -> List[ShardState]:
        pending = set(range(self.workers))
        states: List[Optional[ShardState]] = [None] * self.workers
        while pending:
            try:
                message = self._replies.get(timeout=self.config.timeout)
            except queue_module.Empty:
                for index in sorted(pending):
                    if not self._processes[index].is_alive():
                        self._fail_crashed(index)
                index = min(pending)
                self.close()
                raise WorkerTimeoutError(
                    index, self.config.timeout, "snapshot"
                ) from None
            kind = message[1]
            if kind == "error":
                self._fail_crashed(message[0], detail=message[2])
            if kind == "beacon":
                self._fold_beacon(message)
                continue
            if kind != "snapshot" or message[2] != token:
                continue  # stale reply from an earlier, abandoned query
            index = message[0]
            states[index] = (message[3], message[4], message[5])
            if len(message) > 7 and self.tracer.enabled:
                # worker spans rode along: re-base them onto our clock.
                # perf_counter epochs can differ across processes; the
                # worker stamped the reply with its own clock reading, so
                # receive-time minus that reading is the offset (the
                # queue transit time is absorbed into it — spans land a
                # hair late but never out of order).
                offset = self.tracer.now() - message[7]
                self.tracer.ingest(
                    message[6], offset=offset, track_prefix=f"shard-{index}/"
                )
            pending.discard(index)
        return [state for state in states if state is not None]

    def merged(self, capacity: Optional[int] = None) -> SpaceSaving:
        """One queryable summary folding all shards via the tree merge.

        The result carries the mergeable-summaries guarantees the merge
        tests pin down: estimates stay upper bounds of true counts and
        ``estimate - error`` stays a lower bound, with absence widening
        charged per original shard.
        """
        shards = self.snapshot()
        started = time.perf_counter()
        if self.tracer.enabled:
            span_start = self.tracer.now()
        merged = hierarchical_merge(
            shards, capacity=capacity or self.config.capacity
        )
        self._m_merge_seconds.observe(time.perf_counter() - started)
        if self.tracer.enabled:
            self.tracer.add_span(
                "driver", "merge", "mp", span_start, self.tracer.now(),
                {"shards": len(shards)},
            )
        return merged
