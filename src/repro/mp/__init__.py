"""Real wall-clock parallelism: the multiprocess sharded backend.

Everything else in this repo demonstrates the paper's speedups on the
simulated CMP, because CPython's GIL forbids intra-operator speedup on
threads.  This package sidesteps the GIL entirely with *processes*:
each worker owns a private Space Saving shard, the parent pre-aggregates
and hash-routes the stream — by default as integer-coded ``(code,
weight)`` pairs through per-worker shared-memory rings
(``transport="shm"``, see :mod:`repro.mp.shm`), with the original
pickled-batch plane kept as ``transport="pickle"`` — and queries fold
shard snapshots through the hierarchical merge: the sharded/domain-split
design that QPOPSS and Cafaro et al. show actually scales on real cores.

>>> from repro.mp import MPConfig, run_mp
>>> result = run_mp(stream, MPConfig(workers=4, capacity=256))
>>> result.counter.top_k(5), result.throughput
"""

from repro.mp.config import MPConfig
from repro.mp.driver import MPResult, run_mp, summaries_equivalent
from repro.mp.one_table import OneTablePool, SharedCountMinTable
from repro.mp.pool import ShardedProcessPool

__all__ = [
    "MPConfig",
    "MPResult",
    "OneTablePool",
    "SharedCountMinTable",
    "ShardedProcessPool",
    "run_mp",
    "summaries_equivalent",
]
