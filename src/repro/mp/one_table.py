"""One shared Count-Min table updated by every worker (zero-merge queries).

"One Table to Count Them All" (Taşyaran et al., PAPERS.md) observes
that merge-based parallel sketches pay twice: per-worker tables multiply
memory by the worker count, and every query folds them back together.
The alternative is a single sketch table all workers update.  A naive
shared table is racy in pure Python — concurrent read-modify-write of
the same cell loses updates, and a *lost* update makes Count-Min
underestimate, destroying its one hard guarantee.  This module gets the
single table without locks or loss by **band partitioning**:

* the table is one ``multiprocessing.shared_memory`` block holding a
  ``(depth, band_width * workers)`` ``int64`` array;
* worker ``w`` owns the column band ``[w*band_width, (w+1)*band_width)``
  of *every* row — disjoint bytes, so concurrent updates never race;
* an element's home band is its hash route ``(code >> 1) % workers``
  (the same vectorized hash routing the sharded mode uses), and within
  the band its cells are ``band_offset + h_r(code) % band_width``.

The price is exactly the paper's: each element effectively lives in a
Count-Min sketch of width ``band_width = width / workers``, so the
additive bound per element widens from ``(e / width) * N`` to
``(e / band_width) * N_band`` — computed against its own band's traffic
and reported per entry, never hidden.  Queries are the win: a snapshot
is an array view of one table (no per-worker tables shipped, no
hierarchical merge), which is what makes the update path / query path
separation of QPOPSS cheap.

Consistency protocol: ring dispatches and ``("flush", token)`` commands
share one FIFO queue per worker, so a flush acknowledgement proves every
previously dispatched batch has been applied to the table.
:meth:`OneTablePool.merged` flushes by default — estimates are then
exact reads of a quiescent table.  :meth:`OneTablePool.peek` skips the
flush: reads are *boundedly stale* (at most the in-flight ring
contents), and the reported error widens by the measured staleness so
the ``estimate - error <= true <= estimate + bound`` contract survives
even mid-stream.

Workers never enumerate keys — a sketch cannot — so the parent tracks
candidate heavy hitters while routing: each chunk's heaviest codes feed
a parent-side :class:`~repro.core.space_saving.SpaceSaving` *identifier*
(its counts are never used as estimates; every reported count is read
from the table).
"""

from __future__ import annotations

import math
import os
import queue as queue_module
import time
from multiprocessing import shared_memory
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core.coding import SENTINEL_CODE
from repro.core.counters import CounterEntry
from repro.core.sketches.count_min import CountMinSketch
from repro.core.sketches.kernels import row_hashes
from repro.core.space_saving import SpaceSaving
from repro.errors import BackendError, WorkerTimeoutError
from repro.mp.config import MPConfig
from repro.mp.pool import ShardedProcessPool
from repro.mp.worker import CRASH_EXIT_CODE, _HANG_SECONDS, put_beacon
from repro.obs.registry import TIME_BUCKETS
from repro.obs.tracing import NULL_TRACER, Tracer

#: per-worker header slot: one int64 processed counter padded to a
#: cache line so adjacent workers' counters never share one
_COUNTER_STRIDE = 64


class SharedCountMinTable:
    """Parent-owned shm block: per-worker counters + the banded table."""

    def __init__(
        self, workers: int, depth: int, band_width: int,
        name: Optional[str] = None,
    ) -> None:
        self.workers = workers
        self.depth = depth
        self.band_width = band_width
        self.width = band_width * workers
        table_bytes = self.depth * self.width * 8
        size = workers * _COUNTER_STRIDE + table_bytes
        if name is None:
            self._shm = shared_memory.SharedMemory(create=True, size=size)
            self.owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self.owner = False
        buf = self._shm.buf
        self._counters = np.frombuffer(
            buf, dtype="<i8", count=workers * (_COUNTER_STRIDE // 8)
        ).reshape(workers, _COUNTER_STRIDE // 8)
        self.table = np.frombuffer(
            buf, dtype="<i8", count=self.depth * self.width,
            offset=workers * _COUNTER_STRIDE,
        ).reshape(self.depth, self.width)
        if self.owner:
            self._counters[:] = 0
            self.table[:] = 0
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    def applied(self, worker: int) -> int:
        """Occurrences worker ``worker`` has applied to its band so far."""
        return int(self._counters[worker, 0])

    def applied_total(self) -> int:
        return int(self._counters[:, 0].sum())

    def add_applied(self, worker: int, weight: int) -> None:
        """Bump a worker's applied counter (worker-side, own slot only)."""
        self._counters[worker, 0] += weight

    def band(self, worker: int) -> np.ndarray:
        """Writable view of the columns worker ``worker`` owns."""
        lo = worker * self.band_width
        return self.table[:, lo:lo + self.band_width]

    def close(self) -> None:
        """Release views; the owner also destroys the block. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._counters = None
        self.table = None
        self._shm.close()
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def one_table_main(
    index: int,
    tasks: Any,
    replies: Any,
    table_spec: Tuple[str, int, int, int],
    hash_a: List[int],
    hash_b: List[int],
    ring: Tuple[str, int, int],
    fault: Optional[str] = None,
    trace: bool = False,
    beacon_every: int = 0,
) -> None:
    """Entry point of one one-table worker process (top-level: spawn-safe).

    Speaks the same queue protocol as ``shard_main`` (``seg`` / ``stop``
    plus ``flush`` instead of ``snapshot``) but owns no counting state of
    its own: every batch is hashed with the shared parameters and
    scatter-added into this worker's column band of the shared table.
    """
    from repro.mp.shm import ShmRingReader

    tracer = Tracer() if trace else NULL_TRACER
    table = SharedCountMinTable(
        workers=table_spec[1], depth=table_spec[2],
        band_width=table_spec[3], name=table_spec[0],
    )
    band = table.band(index)
    band_width = table.band_width
    va = np.array(hash_a, dtype=np.uint64)
    vb = np.array(hash_b, dtype=np.uint64)
    reader = ShmRingReader(ring[0], ring[1], ring[2])
    batches_done = 0
    try:
        while True:
            message = tasks.get()
            kind = message[0]
            if kind == "seg":
                if fault == "raise":
                    raise RuntimeError("injected fault: raise during count")
                if fault == "exit":
                    os._exit(CRASH_EXIT_CODE)
                if fault == "hang":
                    time.sleep(_HANG_SECONDS)
                with tracer.span(
                    "worker", "batch", "mp.one_table",
                    {"items": message[3]} if trace else None,
                ):
                    codes, weights = reader.read_arrays(message[1], message[2])
                    cells = row_hashes(codes, va, vb, band_width)
                    for row in range(table.depth):
                        np.add.at(band[row], cells[row], weights)
                    # publish progress only after the cells landed: the
                    # parent derives staleness bounds from this counter
                    table.add_applied(index, int(weights.sum()))
                batches_done += 1
                if beacon_every and batches_done % beacon_every == 0:
                    put_beacon(
                        replies, index, table.applied(index), batches_done,
                        reader.busy_segments(),
                    )
            elif kind == "flush":
                # FIFO queue: every batch dispatched before this command
                # is already applied, so the ack certifies quiescence
                replies.put((index, "flushed", message[1],
                             table.applied(index)))
                if trace:
                    payload = tracer.serialize()
                    tracer.drain()
                    replies.put((index, "spans", message[1],
                                 payload, tracer.now()))
            elif kind == "stop":
                try:
                    replies.put((index, "stopped", table.applied(index)))
                except Exception:
                    pass
                reader.close()
                table.close()
                return
            else:
                raise ValueError(f"unknown command {kind!r}")
    except BaseException as exc:  # noqa: BLE001 - reported, then re-die
        try:
            replies.put((index, "error", f"{type(exc).__name__}: {exc}"))
            replies.close()
            replies.join_thread()
        finally:
            os._exit(CRASH_EXIT_CODE)


class OneTablePool(ShardedProcessPool):
    """Process pool whose workers share one banded Count-Min table.

    Reuses the sharded pool's entire life cycle (queues, rings,
    backpressure, typed crash/timeout propagation, clean shutdown) and
    replaces the counting structure: workers scatter-add into their
    column band of a :class:`SharedCountMinTable`, and queries read the
    table through a parent-side :class:`~repro.core.sketches.count_min.
    CountMinSketch` facade instead of merging per-worker summaries.
    """

    def __init__(
        self, config: Optional[MPConfig] = None, metrics=None, tracer=None
    ) -> None:
        config = config or MPConfig(mode="one_table")
        if config.mode != "one_table":
            raise BackendError(
                f"OneTablePool requires mode='one_table', got {config.mode!r}"
            )
        # the reference sketch fixes width/depth/hash parameters; the
        # shared table reproduces its geometry rounded up to a whole
        # number of equal bands
        self._reference = CountMinSketch(
            epsilon=config.sketch_epsilon,
            delta=config.sketch_delta,
            seed=config.sketch_seed,
        )
        band_width = max(
            1, math.ceil(self._reference.width / config.workers)
        )
        self._table = SharedCountMinTable(
            workers=config.workers,
            depth=self._reference.depth,
            band_width=band_width,
        )
        self._hash_a = [h.a for h in self._reference._hashes]
        self._hash_b = [h.b for h in self._reference._hashes]
        self._va = np.array(self._hash_a, dtype=np.uint64)
        self._vb = np.array(self._hash_b, dtype=np.uint64)
        #: candidate *identifier* (counts never used as estimates)
        self._hot = SpaceSaving(capacity=config.capacity)
        self._hot_codes: Optional[np.ndarray] = None
        self._flush_token = 0
        super().__init__(config, metrics=metrics, tracer=tracer)
        self._m_sketch_updates = self.metrics.counter("sketch.updates")
        self._m_cells_touched = self.metrics.counter("sketch.cells_touched")
        self._m_occupancy = self.metrics.gauge("sketch.table.occupancy")
        self._m_merge_avoided = self.metrics.counter(
            "backend.merge_avoided.bytes"
        )
        self._m_flush_seconds = self.metrics.histogram(
            "sketch.flush.seconds", buckets=TIME_BUCKETS
        )

    # ------------------------------------------------------------------
    # Pool plumbing overrides
    # ------------------------------------------------------------------
    def _worker_spec(self, index: int):
        return one_table_main, (
            index,
            self._tasks[index],
            self._replies,
            (
                self._table.name,
                self.config.workers,
                self._table.depth,
                self._table.band_width,
            ),
            self._hash_a,
            self._hash_b,
            (
                self._rings[index].name,
                self.config.chunk_elements,
                self.config.ring_segments,
            ),
            self.config.fault,
            self.tracer.enabled,
            self.config.beacon_every,
        )

    def _note_chunk(self, codes, weights) -> None:
        """Track each chunk's heaviest codes as heavy-hitter candidates.

        Only the top ``capacity`` codes of the chunk feed the identifier
        — a numpy partial sort plus a bounded Space Saving pass, so the
        parent stays off the per-element path.  An overall-heavy element
        is chunk-heavy somewhere, so it keeps re-entering the candidate
        set; its reported count comes from the table, never from here.
        """
        n = len(codes)
        if not n:
            return
        cap = self.config.capacity
        if n > cap:
            top = np.argpartition(weights, n - cap)[n - cap:]
            pairs = zip(codes[top].tolist(), weights[top].tolist())
        else:
            pairs = zip(codes.tolist(), weights.tolist())
        self._hot.process_weighted(pairs)
        self._hot_codes = None  # candidate set moved; rebuild on peek
        if self.metrics.enabled:
            self._m_sketch_updates.inc(n)
            self._m_cells_touched.inc(n * self._table.depth)

    def _release_rings(self) -> None:
        super()._release_rings()
        self._table.close()

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Round-trip every worker's queue; returns occurrences applied.

        On return the shared table reflects every batch dispatched
        before the call (FIFO queues), so subsequent reads are exact —
        this is the end-of-ingest barrier, deliberately separate from
        the query path (:meth:`merged` / :meth:`peek` never touch the
        workers once the stream is flushed).
        """
        self._ensure_open()
        started = time.perf_counter()
        self._flush_token += 1
        token = self._flush_token
        for index in range(self.workers):
            self._put(index, ("flush", token))
        pending = set(range(self.workers))
        applied = 0
        while pending:
            message = self._reply_or_fail(pending, phase="flush")
            kind = message[1]
            if kind == "error":
                self._fail_crashed(message[0], detail=message[2])
            elif kind == "flushed" and message[2] == token:
                applied += message[3]
                pending.discard(message[0])
            elif kind == "spans" and message[2] == token:
                if self.tracer.enabled:
                    offset = self.tracer.now() - message[4]
                    self.tracer.ingest(
                        message[3], offset=offset,
                        track_prefix=f"shard-{message[0]}/",
                    )
            elif kind == "beacon":
                self._fold_beacon(message)
            else:
                self._m_replies_discarded.inc()
                self._discarded_replies[str(kind)] += 1
        self._m_flush_seconds.observe(time.perf_counter() - started)
        return applied

    def _reply_or_fail(self, pending: set, phase: str):
        try:
            return self._replies.get(timeout=self.config.timeout)
        except queue_module.Empty:
            for index in sorted(pending):
                if not self._processes[index].is_alive():
                    self._fail_crashed(index)
            index = min(pending)
            self.close()
            raise WorkerTimeoutError(
                index, self.config.timeout, phase
            ) from None

    def staleness(self) -> int:
        """Dispatched occurrences not yet visible in the table (>= 0)."""
        dispatched = sum(self.worker_items)
        return max(0, dispatched - self._table.applied_total())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate_codes(self, codes: np.ndarray) -> np.ndarray:
        """Vectorized row-min table reads for an array of codec codes."""
        bands = (codes >> 1) % self.workers
        offsets = bands * self._table.band_width
        cells = row_hashes(
            codes, self._va, self._vb, self._table.band_width
        ) + offsets
        return np.take_along_axis(
            self._table.table, cells, axis=1
        ).min(axis=0)

    def band_bounds(self) -> np.ndarray:
        """Per-band additive error bound ``ceil((e / band_width) * N_band)``.

        ``N_band`` is the traffic *dispatched* to the band (>= applied,
        so the bound stays conservative under staleness).
        """
        eps_band = math.e / self._table.band_width
        return np.ceil(
            eps_band * np.asarray(self.worker_items, dtype=np.float64)
        ).astype(np.int64)

    def top_k(self, k: int = 10, strict: bool = False) -> List[CounterEntry]:
        """The top-k answer straight off the shared table (the fast read).

        This is the query path the one-table mode exists for: no worker
        round-trip, no per-worker summaries to merge, no full summary
        object to materialize — a vectorized table read over the cached
        candidate codes, a partial sort, and ``k`` decoded entries.
        ``strict=False`` widens counts and bounds by the measured
        staleness exactly like :meth:`peek`.  Use :meth:`peek` /
        :meth:`merged` when a full queryable :class:`SpaceSaving` is
        needed.
        """
        self._ensure_open()
        started = time.perf_counter()
        slack = 0 if strict else self.staleness()
        codes = self._candidate_codes()
        n = len(codes)
        if not n:
            return []
        estimates = self.estimate_codes(codes)
        if k < n:
            keep = np.argpartition(estimates, n - k)[n - k:]
            codes = codes[keep]
            estimates = estimates[keep]
        order = np.argsort(-estimates, kind="stable")
        codes = codes[order]
        estimates = estimates[order]
        bounds = self.band_bounds()[(codes >> 1) % self.workers]
        decode = self._codec.decode
        entries = [
            CounterEntry(decode(int(code)), int(estimate) + slack,
                         int(bound) + slack)
            for code, estimate, bound in zip(
                codes.tolist(), estimates.tolist(), bounds.tolist()
            )
        ]
        self._m_snapshot_seconds.observe(time.perf_counter() - started)
        return entries

    def _candidate_codes(self) -> np.ndarray:
        """The candidate identifier's codes (cached between chunks)."""
        if self._hot_codes is None:
            self._hot_codes = np.array(
                [entry.element for entry in self._hot.entries()],
                dtype=np.int64,
            )
        return self._hot_codes

    def peek(
        self, capacity: Optional[int] = None, strict: bool = False
    ) -> SpaceSaving:
        """Queryable summary read straight off the shared table.

        ``strict=False`` (live read) widens every bound by the measured
        staleness — updates still in flight can only make estimates
        *lower* than the eventual truth-dominating value, and staleness
        bounds the gap.  With ``strict=True`` the caller has flushed
        (or accepts a flush happening here via :meth:`merged`).

        The result is a :class:`SpaceSaving` in shape only: counts are
        Count-Min table reads (upper bounds post-flush) and errors the
        widened band bounds, so ``count - error <= true`` holds with
        probability ``1 - delta`` per element.
        """
        self._ensure_open()
        started = time.perf_counter()
        slack = 0 if strict else self.staleness()
        candidate_codes = self._candidate_codes()
        processed = self._dispatched
        if len(candidate_codes):
            estimates = self.estimate_codes(candidate_codes)
            bounds = self.band_bounds()[
                (candidate_codes >> 1) % self.workers
            ]
            decode = self._codec.decode
            entries = [
                CounterEntry(
                    decode(int(code)),
                    # a live read may lag truth by the in-flight weight;
                    # publishing estimate+slack keeps the upper-bound
                    # contract, and the widened error keeps the lower one
                    int(estimate) + slack,
                    int(bound) + slack,
                )
                for code, estimate, bound in zip(
                    candidate_codes.tolist(), estimates, bounds
                )
            ]
        else:
            entries = []
        if self.metrics.enabled:
            table = self._table.table
            self._m_occupancy.set(
                float(np.count_nonzero(table)) / table.size
            )
            # a sharded design would ship + fold one private table per
            # worker; reading the single shared table avoids all but one
            self._m_merge_avoided.inc(table.nbytes * (self.workers - 1))
        summary = SpaceSaving.from_entries(
            capacity or self.config.capacity, entries, processed
        )
        self._m_snapshot_seconds.observe(time.perf_counter() - started)
        return summary

    def merged(self, capacity: Optional[int] = None) -> SpaceSaving:
        """Strictly consistent summary: flush, then read the table.

        Name kept from the sharded pool so drivers treat both modes
        uniformly — but nothing is merged: the "merge" is an array read
        of the one table (that is the point of the design).
        """
        self.flush()
        return self.peek(capacity=capacity, strict=True)

    def snapshot(self):
        """Per-worker snapshots do not exist in one-table mode."""
        raise BackendError(
            "one-table workers own no private summaries; query with "
            "merged() / peek() / sketch()"
        )

    def sketch(self) -> CountMinSketch:
        """Detached :class:`CountMinSketch` facade over a table copy.

        The copy survives :meth:`close` and answers ``estimate(element)``
        for arbitrary keys through the parent codec; its error bound is
        pre-widened to the worst band's ``eps_band * N_band``.
        """
        facade = CountMinSketch(
            epsilon=self.config.sketch_epsilon,
            delta=self.config.sketch_delta,
            seed=self.config.sketch_seed,
        )
        facade.width = self._table.width
        facade.depth = self._table.depth
        for h in facade._hashes:
            h.width = self._table.band_width
        table_copy = self._table.table.copy()
        facade._table = table_copy
        facade._processed = self._dispatched
        facade.codec = self._codec
        bounds = self.band_bounds()
        base = math.ceil(facade.epsilon * facade._processed)
        facade.widen(max(0, int(bounds.max(initial=0)) - base))
        # estimates must route through the banded geometry, not the
        # uniform row hash — rebind the estimator over the *copy* so the
        # facade keeps answering after the pool (and its shm) is closed
        band_width = self._table.band_width
        workers = self.workers
        va, vb = self._va, self._vb

        def estimate_code(code: int) -> int:
            if code == SENTINEL_CODE:
                return 0
            arr = np.array([code], dtype=np.int64)
            cells = row_hashes(arr, va, vb, band_width) + (
                (arr >> 1) % workers
            ) * band_width
            return int(np.take_along_axis(table_copy, cells, axis=1).min())

        facade.estimate_code = estimate_code  # type: ignore[method-assign]
        return facade
