"""The zero-copy shared-memory data plane of the multiprocess backend.

The original (and still available) ``transport="pickle"`` ships every
routed batch as a pickled list of Python objects over a
``multiprocessing`` queue — measured on the mp bench ladder, the
pickle/unpickle cost eats the entire parallel win (BENCH_mp.json topped
out at 1.01x vs sequential).  This module is the replacement shape, the
one the merge-based parallel Space Saving literature (Cafaro et al.,
QPOPSS) gets its near-linear scaling from: shards exchange *compact
fixed-width data*, never per-item Python objects.

Three pieces:

:class:`StreamCodec`
    The parent-owned shared vocabulary.  Stream keys are mapped to
    ``int64`` codes; workers count codes and never see a key — the
    parent decodes codes back to keys only at snapshot time.  Coding is
    two-lane: keys that *are* machine-size ints are coded as
    ``key << 1`` (even codes, no dictionary, fully vectorizable), every
    other key gets a vocabulary index coded ``(index << 1) | 1`` (odd
    codes).  One chunk whose elements form a numpy integer array is
    pre-aggregated with ``np.unique`` — one C pass instead of a
    per-element Python loop; anything else falls back to one
    ``collections.Counter`` pass plus a per-*distinct*-key dict lookup.

    Known (documented) semantic edge: keys of different types that
    compare equal (``1`` vs ``1.0``) are merged by the pickle transport
    (dict semantics) but coded separately by the int fast lane.  Streams
    relying on cross-type key equality should use
    ``transport="pickle"``.

:func:`route_coded`
    Vectorized hash/round-robin/block routing of a pre-aggregated
    ``(codes, weights)`` chunk to per-worker arrays — numpy masks, no
    per-element Python loop (the old ``hash_partition`` was one).

:class:`ShmRing` / :class:`ShmRingReader`
    One ``multiprocessing.shared_memory`` block per worker, split into
    ``segments`` fixed-size segments (default 2: double buffering — the
    parent fills one segment while the worker drains the other).  A
    segment carries up to ``slots`` records of two little-endian
    ``int64`` arrays (codes, then weights); its one-byte status flag is
    the entire synchronization protocol:

    * parent observes ``FREE``, writes the payload, sets ``BUSY`` and
      sends a tiny ``("seg", segment, n, weight)`` control message on
      the existing task queue (the queue gives FIFO ordering and a
      blocking wait; the data never travels through it);
    * worker copies the payload out (``tolist`` — one C pass) and sets
      ``FREE`` *before* counting, so the parent can refill the segment
      while the worker is still updating its shard;
    * a parent that finds no ``FREE`` segment is experiencing
      backpressure from a slow worker: it polls (the stall is metered
      as ``mp.shm.ring_stalls`` / ``mp.shm.stall_seconds``) and raises
      the usual :class:`~repro.errors.WorkerTimeoutError` if the
      segment never frees within the configured timeout.

    Single-producer/single-consumer per ring and one-byte flags make
    the protocol race-free without locks; the parent owns segment
    allocation (round-robin), the worker only ever flips BUSY -> FREE.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import List, Tuple

import numpy as np

# StreamCodec moved to repro.core.coding when the sketches started
# hashing codec codes (PR 8) — core cannot import mp without inverting
# the layering.  Re-exported here so existing imports keep working.
from repro.core.coding import INT_CODE_BOUND, StreamCodec  # noqa: F401
from repro.errors import StreamError

#: segment status flag values (one byte at each segment's offset 0)
SEG_FREE = 0
SEG_BUSY = 1

#: per-segment header size; one status byte, padded to a cache line so
#: adjacent segment flags never share a line (false sharing)
HEADER_BYTES = 64

#: bytes per (code, weight) record — two little-endian int64s
RECORD_BYTES = 16

def segment_bytes(slots: int) -> int:
    """On-disk size of one ring segment holding up to ``slots`` records."""
    return HEADER_BYTES + slots * RECORD_BYTES


# ----------------------------------------------------------------------
# Vectorized routing
# ----------------------------------------------------------------------
def route_coded(
    codes: np.ndarray,
    weights: np.ndarray,
    parts: int,
    how: str = "hash",
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split a pre-aggregated chunk across ``parts`` workers.

    Mirrors :func:`repro.workloads.partition.partition` semantics on
    the *distinct* pairs: ``hash`` gives every element a home shard
    (all its occurrences, in every chunk, land on one worker — the
    key-value is the shard selector, so the full-stream Space Saving
    guarantees hold per shard); ``round_robin`` and ``block`` spread
    the distinct pairs positionally, splitting elements across shards.
    """
    if parts < 1:
        raise StreamError(f"parts must be >= 1, got {parts}")
    if parts == 1 or not len(codes):
        return [(codes, weights)] + [
            (codes[:0], weights[:0]) for _ in range(parts - 1)
        ]
    if how == "hash":
        shards = (codes >> 1) % parts
    elif how == "round_robin":
        shards = np.arange(len(codes), dtype=np.int64) % parts
    elif how == "block":
        bounds = np.linspace(0, len(codes), parts + 1).astype(np.int64)
        return [
            (codes[bounds[i]: bounds[i + 1]], weights[bounds[i]: bounds[i + 1]])
            for i in range(parts)
        ]
    else:
        raise StreamError(
            f"unknown partitioning {how!r}; pick one of "
            "['block', 'hash', 'round_robin']"
        )
    return [
        (codes[shards == index], weights[shards == index])
        for index in range(parts)
    ]


# ----------------------------------------------------------------------
# Shared-memory rings
# ----------------------------------------------------------------------
class ShmRing:
    """Parent side of one worker's ring: create, fill, free-poll, unlink."""

    def __init__(self, slots: int, segments: int) -> None:
        if slots < 1:
            raise StreamError(f"slots must be >= 1, got {slots}")
        if segments < 1:
            raise StreamError(f"segments must be >= 1, got {segments}")
        self.slots = slots
        self.segments = segments
        self._seg_bytes = segment_bytes(slots)
        self._shm = shared_memory.SharedMemory(
            create=True, size=self._seg_bytes * segments
        )
        buf = self._shm.buf
        self._status = [buf[self._offset(s):self._offset(s) + 1]
                        for s in range(segments)]
        self._codes = []
        self._weights = []
        for s in range(segments):
            base = self._offset(s) + HEADER_BYTES
            self._codes.append(np.frombuffer(
                buf, dtype="<i8", count=slots, offset=base))
            self._weights.append(np.frombuffer(
                buf, dtype="<i8", count=slots, offset=base + slots * 8))
        for s in range(segments):
            self._status[s][0] = SEG_FREE
        self._closed = False

    @property
    def name(self) -> str:
        """System-wide shm block name (hand to :class:`ShmRingReader`)."""
        return self._shm.name

    def _offset(self, segment: int) -> int:
        return segment * self._seg_bytes

    def is_free(self, segment: int) -> bool:
        return self._status[segment][0] == SEG_FREE

    def busy_segments(self) -> int:
        """Segments currently owned by the worker (ring occupancy)."""
        return sum(
            1 for s in range(self.segments) if self._status[s][0] != SEG_FREE
        )

    def fill(
        self, segment: int, codes: np.ndarray, weights: np.ndarray
    ) -> int:
        """Write one routed batch into ``segment``; returns payload bytes.

        The caller must have observed :meth:`is_free` — the flag flip to
        BUSY is the publication point the worker's reader relies on.
        """
        n = len(codes)
        if n > self.slots:
            raise StreamError(
                f"batch of {n} records exceeds ring segment capacity "
                f"{self.slots}"
            )
        self._codes[segment][:n] = codes
        self._weights[segment][:n] = weights
        self._status[segment][0] = SEG_BUSY
        return n * RECORD_BYTES

    def close(self) -> None:
        """Release views and destroy the block; idempotent, parent-only."""
        if self._closed:
            return
        self._closed = True
        # numpy views and the status memoryviews pin the exported
        # buffer: drop them before close() or SharedMemory warns
        self._codes = []
        self._weights = []
        for view in self._status:
            view.release()
        self._status = []
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class ShmRingReader:
    """Worker side: attach by name, copy batches out, flip segments free."""

    def __init__(self, name: str, slots: int, segments: int) -> None:
        self.slots = slots
        self.segments = segments
        self._seg_bytes = segment_bytes(slots)
        # Python 3.11 registers the block with the resource tracker on
        # *attach* too, but multiprocessing children share the parent's
        # tracker process and its cache is a set — the worker's
        # registration is an idempotent no-op there, and unregistering
        # would strip the *parent's* entry (its later unlink then makes
        # the tracker trip a KeyError).  So: attach, touch nothing.
        self._shm = shared_memory.SharedMemory(name=name)
        buf = self._shm.buf
        self._status = [buf[s * self._seg_bytes: s * self._seg_bytes + 1]
                        for s in range(segments)]
        self._codes = []
        self._weights = []
        for s in range(segments):
            base = s * self._seg_bytes + HEADER_BYTES
            self._codes.append(np.frombuffer(
                buf, dtype="<i8", count=slots, offset=base))
            self._weights.append(np.frombuffer(
                buf, dtype="<i8", count=slots, offset=base + slots * 8))
        self._closed = False

    def busy_segments(self) -> int:
        """Segments currently published BUSY (the worker's backlog).

        The worker-side twin of :meth:`ShmRing.busy_segments`, read for
        telemetry beacons: how far the parent is ahead of this worker.
        """
        return sum(
            1 for s in range(self.segments) if self._status[s][0] != SEG_FREE
        )

    def read(self, segment: int, count: int) -> Tuple[List[int], List[int]]:
        """Copy ``count`` records out of ``segment`` and free it.

        The copy (two ``tolist`` C passes) decouples the worker from the
        buffer immediately: the segment is flipped FREE *before* the
        worker counts the batch, so the parent can refill it while the
        shard update runs — that overlap is the double buffering.
        """
        codes = self._codes[segment][:count].tolist()
        weights = self._weights[segment][:count].tolist()
        self._status[segment][0] = SEG_FREE
        return codes, weights

    def read_arrays(self, segment: int, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Like :meth:`read`, but returns ``int64`` array copies.

        The vectorized consumers (one-table sketch workers) feed numpy
        kernels directly — materializing Python ints via ``tolist`` just
        to re-box them into arrays would throw the zero-copy win away.
        The copies decouple from the buffer exactly like :meth:`read`
        does, and the segment is freed before returning.
        """
        codes = self._codes[segment][:count].copy()
        weights = self._weights[segment][:count].copy()
        self._status[segment][0] = SEG_FREE
        return codes, weights

    def close(self) -> None:
        """Detach (never unlink — the parent owns the block)."""
        if self._closed:
            return
        self._closed = True
        self._codes = []
        self._weights = []
        for view in self._status:
            view.release()
        self._status = []
        self._shm.close()
