"""Configuration for the multiprocess sharded counting backend.

:class:`MPConfig` mirrors :class:`repro.parallel.base.SchemeConfig` — the
same (workers, capacity) core, validated the same way, raising the same
:class:`~repro.errors.ConfigurationError` — so the experiments/CLI layer
can treat the real-parallelism backend as just another scheme driver.
The extra knobs are the ones a *process* pool needs and a simulated one
does not: dispatch chunk size (pickling amortization), partitioning
strategy, worker timeout, and the multiprocessing start method.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import ConfigurationError

#: partitioning strategies understood by the dispatcher (the names of
#: :func:`repro.workloads.partition.partition`).  ``hash`` is the
#: default because it gives every element a *home* shard: all
#: occurrences of one element land on one worker, so shard estimates
#: keep the full-stream Space Saving guarantees for their elements.
PARTITION_STRATEGIES = ("hash", "round_robin", "block")

#: fault-injection hooks understood by the worker loop (testing only)
FAULTS = ("raise", "exit", "hang")

#: data-plane transports.  ``shm`` (default) pre-aggregates each chunk
#: into integer-coded (code, weight) pairs and ships them through
#: per-worker shared-memory ring buffers — compact fixed-width data, no
#: per-item pickling (see :mod:`repro.mp.shm`).  ``pickle`` is the
#: original transport (routed batches of raw elements pickled over the
#: task queues), kept as the fallback and the differential reference:
#: it preserves exact stream order within each shard, which the
#: pre-aggregating shm plane intentionally trades away.
TRANSPORTS = ("shm", "pickle")

#: counting modes.  ``sharded`` (default) gives every worker a private
#: Space Saving shard merged at query time.  ``one_table`` follows the
#: "One Table to Count Them All" design: all workers update a single
#: shared-memory Count-Min table (each worker owns a disjoint column
#: band, so updates are race-free without locks) and queries read the
#: table directly — zero merge, at the cost of a widened eps*N bound
#: (each element only enjoys its band's width).  One-table requires the
#: shm transport (the table and the rings share the data plane) and
#: hash partitioning (an element's home shard *is* its column band).
MODES = ("sharded", "one_table")


@dataclasses.dataclass
class MPConfig:
    """Parameters of one multiprocess sharded counting run.

    Tuning notes, in the order the knobs usually matter:

    * ``workers`` — one process per shard.  Speedup tops out at the
      physical core count, and skew caps it sooner: with ``hash``
      partitioning all occurrences of the hottest element land on one
      shard, so at high zipf α that shard carries most of the stream
      (see docs/benchmarks.md on the α = 1.1 presets).
    * ``chunk_elements`` — stream elements read per dispatch chunk;
      each chunk is split into at most ``workers`` pickled batches.
      This is the pickling-amortization lever: far smaller values turn
      a counting run into an IPC benchmark.
    * ``capacity`` — *per-shard* Space Saving budget; the merged query
      result is built at the same capacity by default.
    * ``queue_depth`` — pending batches per worker before ``put``
      blocks: the backpressure that keeps a slow worker from buffering
      the whole stream in its queue.
    * ``timeout`` — seconds a blocked dispatch/snapshot waits before
      declaring a worker hung (raises
      :class:`~repro.errors.WorkerTimeoutError` after closing the
      pool).
    * ``transport`` — the data plane: ``shm`` (shared-memory rings of
      integer-coded, chunk-pre-aggregated pairs; the fast path) or
      ``pickle`` (routed raw batches over the queues; exact stream
      order, kept as fallback/reference).  See :data:`TRANSPORTS`.
    * ``ring_segments`` — shm segments per worker ring; 2 gives double
      buffering (the parent fills one while the worker drains the
      other), more deepens the dispatch pipeline at the cost of
      ``ring_segments * chunk_elements * 16`` bytes per worker.

    ``beacon_every`` makes workers ship a small telemetry snapshot
    (elements processed, batches drained, live ring occupancy) on the
    reply queue every N batches; the parent folds the latest beacon per
    worker and the live-telemetry plane (``repro top``) renders them.
    Beacons are observation only — they never touch counts — and 0
    disables them entirely.

    ``fault`` is a testing-only hook that makes workers misbehave on
    purpose (``raise``: raise during counting; ``exit``: hard-exit the
    process; ``hang``: stop draining the task queue) so the typed
    crash/timeout propagation paths are testable without real crashes.
    """

    workers: int = 4
    capacity: int = 256              #: per-shard Space Saving budget
    chunk_elements: int = 32_768     #: stream elements per dispatch chunk
    partition_how: str = "hash"      #: see :data:`PARTITION_STRATEGIES`
    timeout: float = 60.0            #: seconds before a worker is hung
    queue_depth: int = 8             #: pending batches per worker (backpressure)
    start_method: Optional[str] = None  #: fork/spawn/forkserver (None = default)
    fault: Optional[str] = None      #: testing-only fault injection
    transport: str = "shm"           #: see :data:`TRANSPORTS`
    ring_segments: int = 2           #: shm segments per worker (2 = double buffer)
    mode: str = "sharded"            #: see :data:`MODES`
    beacon_every: int = 32           #: batches between worker telemetry beacons (0 = off)
    sketch_epsilon: float = 0.001    #: one-table Count-Min eps (pre-widening)
    sketch_delta: float = 0.01       #: one-table Count-Min failure probability
    sketch_seed: Optional[int] = 0   #: one-table hash seed (shared by workers)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {self.capacity}"
            )
        if self.chunk_elements < 1:
            raise ConfigurationError(
                f"chunk_elements must be >= 1, got {self.chunk_elements}"
            )
        if self.partition_how not in PARTITION_STRATEGIES:
            raise ConfigurationError(
                f"partition_how must be one of {PARTITION_STRATEGIES}, "
                f"got {self.partition_how!r}"
            )
        if self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be > 0, got {self.timeout}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ConfigurationError(
                f"start_method must be fork, spawn, forkserver or None, "
                f"got {self.start_method!r}"
            )
        if self.fault is not None and self.fault not in FAULTS:
            raise ConfigurationError(
                f"fault must be one of {FAULTS} or None, got {self.fault!r}"
            )
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {TRANSPORTS}, "
                f"got {self.transport!r}"
            )
        if self.ring_segments < 1:
            raise ConfigurationError(
                f"ring_segments must be >= 1, got {self.ring_segments}"
            )
        if self.mode not in MODES:
            raise ConfigurationError(
                f"mode must be one of {MODES}, got {self.mode!r}"
            )
        if self.beacon_every < 0:
            raise ConfigurationError(
                f"beacon_every must be >= 0 (0 disables beacons), "
                f"got {self.beacon_every}"
            )
        if not 0 < self.sketch_epsilon < 1:
            raise ConfigurationError(
                f"sketch_epsilon must be in (0, 1), got {self.sketch_epsilon}"
            )
        if not 0 < self.sketch_delta < 1:
            raise ConfigurationError(
                f"sketch_delta must be in (0, 1), got {self.sketch_delta}"
            )
        if self.mode == "one_table":
            if self.transport != "shm":
                raise ConfigurationError(
                    "mode='one_table' requires transport='shm' (the table "
                    f"and the rings share the data plane), got "
                    f"{self.transport!r}"
                )
            if self.partition_how != "hash":
                raise ConfigurationError(
                    "mode='one_table' requires partition_how='hash' (an "
                    "element's home shard is its column band), got "
                    f"{self.partition_how!r}"
                )
