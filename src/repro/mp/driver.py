"""Driver API for the multiprocess backend, mirroring the scheme drivers.

``run_mp(stream, MPConfig(...))`` is shaped like the simulated drivers
(:func:`repro.parallel.sequential.run_sequential` etc.): one call takes
a stream plus a config and returns a result object exposing ``counter``,
``seconds`` and ``throughput`` — except here the seconds are *host wall
clock* on real cores, not simulated cycles.  That symmetry is what lets
the bench/experiments/CLI layer treat "real processes" as just another
scheme.

:func:`summaries_equivalent` is the result-equivalence check the bench
suite and CI smoke rely on: both summaries bound the same true counts,
so for every top-k element of the reference the two uncertainty
intervals ``[count - error, count]`` must intersect (and an element the
reference *guarantees* frequent may only be absent from the candidate
if the candidate's own max-error bound allows it).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, Hashable, Optional, Sequence

from repro.core.space_saving import SpaceSaving
from repro.mp.config import MPConfig
from repro.mp.pool import ShardedProcessPool


@dataclasses.dataclass
class MPResult:
    """Outcome of one multiprocess run (the wall-clock SchemeResult)."""

    scheme: str
    workers: int
    elements: int
    wall_seconds: float          #: count + merge, pool already started
    startup_seconds: float       #: process spawn/bootstrap cost
    counter: SpaceSaving         #: merged queryable summary
    extras: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Wall-clock seconds of the counting+query phase."""
        return self.wall_seconds

    @property
    def throughput(self) -> float:
        """Stream elements per host second (counting + merge)."""
        return self.elements / self.wall_seconds if self.wall_seconds else 0.0


def run_mp(
    stream: Sequence[Hashable],
    config: Optional[MPConfig] = None,
    metrics=None,
    tracer=None,
) -> MPResult:
    """Count ``stream`` on a fresh worker pool and return the merged result.

    The pool is started, fed, queried and always closed — also on error
    paths, so typed worker failures propagate without leaking processes.
    Startup (process spawn) is timed separately from counting+merge
    because the former is a fixed cost that amortizes over a long-lived
    pool while the latter is the paper's scaling quantity.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) instruments the
    parent side: dispatch volume, per-worker routed items and items/sec,
    queue occupancy, and snapshot/merge latency; the snapshot rides on
    ``result.extras["metrics"]`` in the same schema simulated runs emit,
    so the two kinds of run are directly comparable.

    ``tracer`` (a :class:`repro.obs.tracing.Tracer`) additionally
    records a span timeline: dispatch/snapshot/merge on the parent's
    ``driver`` track plus per-batch worker spans re-based from the shard
    processes (``shard-<i>/worker`` tracks) — exportable with
    :func:`repro.obs.export.write_chrome_trace`.
    """
    config = config or MPConfig()
    one_table = config.mode == "one_table"
    started = time.perf_counter()
    if one_table:
        from repro.mp.one_table import OneTablePool

        pool = OneTablePool(config, metrics=metrics, tracer=tracer)
    else:
        pool = ShardedProcessPool(config, metrics=metrics, tracer=tracer)
    startup = time.perf_counter() - started
    extras = {
        "partition_how": config.partition_how,
        "chunk_elements": config.chunk_elements,
        "capacity": config.capacity,
        "transport": config.transport,
        "mode": config.mode,
    }
    try:
        counting_started = time.perf_counter()
        elements = pool.count(stream)
        counter = pool.merged()
        wall = time.perf_counter() - counting_started
        if one_table:
            # ingest is quiescent after merged()'s flush; time the pure
            # query path separately — the zero-merge read is the mode's
            # entire reason to exist, so benches gate on it
            query_started = time.perf_counter()
            counter = pool.merged()
            extras["snapshot_seconds"] = time.perf_counter() - query_started
            extras["table"] = {
                "depth": pool._table.depth,
                "width": pool._table.width,
                "band_width": pool._table.band_width,
                "epsilon": config.sketch_epsilon,
                "delta": config.sketch_delta,
                "max_band_bound": int(pool.band_bounds().max(initial=0)),
            }
    finally:
        pool.close()
    if metrics is not None:
        for index, items in enumerate(pool.worker_items):
            metrics.gauge(f"mp.worker.{index}.items_per_sec").set(
                items / wall if wall else 0.0
            )
        extras["metrics"] = metrics.snapshot()
    return MPResult(
        scheme="mp-one-table" if one_table else "mp-sharded",
        workers=config.workers,
        elements=elements,
        wall_seconds=wall,
        startup_seconds=startup,
        counter=counter,
        extras=extras,
    )


def summaries_equivalent(
    reference: SpaceSaving, candidate: SpaceSaving, k: int = 10
) -> bool:
    """Are two summaries consistent answers for the same stream?

    Space Saving guarantees ``count - error <= true <= count`` per
    monitored element, and the merge preserves both bounds (absence
    widening only grows ``error``).  Two correct summaries of the same
    stream therefore have intersecting ``[count - error, count]``
    intervals for every common element; and an element the reference
    guarantees frequent (``count - error > 0``) can be missing from the
    candidate only if the candidate's max-error bound covers its
    guaranteed count.  ``processed`` totals must match exactly.
    """
    if reference.processed != candidate.processed:
        return False
    for entry in reference.top_k(k):
        estimate = candidate.estimate(entry.element)
        if estimate == 0:
            if entry.count - entry.error > candidate.max_error():
                return False
            continue
        error = candidate.error(entry.element)
        if estimate < entry.count - entry.error:
            return False
        if entry.count < estimate - error:
            return False
    return True
