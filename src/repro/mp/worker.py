"""The worker-process side of the sharded counting backend.

Each worker owns one *private* :class:`~repro.core.space_saving.
SpaceSaving` shard — the shared-nothing design of §4.1, here on real OS
processes so the GIL is out of the picture.  The loop is command-driven:

``("count", elements)``
    Pickle transport: drain the (already routed) batch through
    ``process_many`` — the chunked, pre-aggregating fast lane.
``("seg", segment, n, weight)``
    Shm transport: copy ``n`` integer-coded ``(code, weight)`` records
    out of ring ``segment`` (two ``tolist`` C passes), flip the segment
    free so the parent can refill it, and drain the pairs through
    ``process_weighted`` — one update per *distinct* code, the parent
    already pre-aggregated the chunk.  ``weight`` (the batch's total
    occurrence count) only feeds the batch span's args.
``("snapshot", token)``
    Reply with the shard's queryable state: the ``(element, count,
    error)`` triples (integer codes under the shm transport — the
    parent decodes them against its vocabulary), the processed count
    and the capacity — everything :meth:`SpaceSaving.from_entries`
    needs to rebuild the shard in the parent for merging.
``("stop",)``
    Best-effort acknowledge and return (normal process exit).  The ack
    is advisory: a parent tearing down quickly may already have closed
    the reply queue, and failing to deliver the ack must never turn a
    clean shutdown into a crash exit — so it is swallowed, not raised.

With ``beacon_every > 0`` the worker additionally ships an
``(index, "beacon", snapshot)`` message every that many drained
batches: a tiny registry-shaped snapshot (``mp.beacon.<i>.*`` names
from the catalogue) carrying elements processed, batches drained and
the live shm-ring occupancy.  Beacons are advisory telemetry — an
undeliverable beacon is dropped, never raised — and the parent folds
only the latest one per worker.

Failures never disappear: any exception is reported on the reply queue
as an ``("error", ...)`` message before the process exits non-zero, so
the parent can raise a typed :class:`~repro.errors.WorkerCrashError`
with the remote detail instead of a bare hang.

With ``trace=True`` the worker keeps a local
:class:`~repro.obs.tracing.Tracer` (span per drained batch, span per
snapshot build, all on the ``worker`` track) and ships the serialized
spans — plus its current ``perf_counter`` reading — as two extra fields
on every snapshot reply.  The parent re-bases them onto its own
timeline; older parents simply ignore the extra fields, so the reply
shape stays backward compatible.
"""

from __future__ import annotations

import os
import time
from typing import Any, Optional, Tuple

from repro.core.space_saving import SpaceSaving
from repro.obs.tracing import NULL_TRACER, Tracer

#: exit code of a worker that died via the error path (parent reads it)
CRASH_EXIT_CODE = 17

#: how long a ``fault="hang"`` worker sleeps (far beyond any test timeout)
_HANG_SECONDS = 600.0


def beacon_snapshot(
    index: int, processed: int, batches: int, ring_busy: int
) -> dict:
    """A worker's telemetry beacon, shaped like a registry snapshot.

    Snapshot-shaped on purpose: the parent (and the serve tier above
    it) folds beacons with :func:`repro.obs.registry.merge_snapshots`
    and renders them through the same exposition paths as every other
    metric.  Names follow the ``mp.beacon.<i>.*`` catalogue templates.
    """
    prefix = f"mp.beacon.{index}"
    return {
        "counters": {
            f"{prefix}.processed": processed,
            f"{prefix}.batches": batches,
        },
        "gauges": {f"{prefix}.ring_busy": float(ring_busy)},
        "histograms": {},
    }


def put_beacon(
    replies: Any, index: int, processed: int, batches: int, ring_busy: int
) -> None:
    """Best-effort beacon delivery (telemetry must never kill a worker)."""
    try:
        replies.put((index, "beacon",
                     beacon_snapshot(index, processed, batches, ring_busy)))
    except Exception:
        pass


def shard_main(
    index: int,
    tasks: Any,
    replies: Any,
    capacity: int,
    fault: Optional[str] = None,
    trace: bool = False,
    ring: Optional[Tuple[str, int, int]] = None,
    beacon_every: int = 0,
) -> None:
    """Entry point of one worker process (top-level: spawn-safe).

    ``ring`` is ``(shm_name, slots, segments)`` when the pool runs the
    shared-memory transport; the worker attaches read-write (it flips
    the segment status flags) but never unlinks — the parent owns the
    blocks and destroys them after the workers are joined.
    """
    tracer = Tracer() if trace else NULL_TRACER
    shard = SpaceSaving(capacity=capacity)
    reader = None
    if ring is not None:
        from repro.mp.shm import ShmRingReader

        reader = ShmRingReader(ring[0], ring[1], ring[2])
    batches_done = 0
    try:
        while True:
            message = tasks.get()
            kind = message[0]
            if kind == "count" or kind == "seg":
                if fault == "raise":
                    raise RuntimeError("injected fault: raise during count")
                if fault == "exit":
                    os._exit(CRASH_EXIT_CODE)
                if fault == "hang":
                    time.sleep(_HANG_SECONDS)
                if kind == "count":
                    with tracer.span(
                        "worker", "batch", "mp.worker",
                        {"items": len(message[1])} if trace else None,
                    ):
                        shard.process_many(message[1])
                else:
                    with tracer.span(
                        "worker", "batch", "mp.worker",
                        {"items": message[3]} if trace else None,
                    ):
                        codes, weights = reader.read(message[1], message[2])
                        shard.process_weighted(zip(codes, weights))
                batches_done += 1
                if beacon_every and batches_done % beacon_every == 0:
                    put_beacon(
                        replies, index, shard.processed, batches_done,
                        reader.busy_segments() if reader is not None else 0,
                    )
            elif kind == "snapshot":
                with tracer.span("worker", "snapshot", "mp.worker"):
                    entries = [
                        (entry.element, entry.count, entry.error)
                        for entry in shard.entries()
                    ]
                reply = (
                    index,
                    "snapshot",
                    message[1],
                    entries,
                    shard.processed,
                    shard.capacity,
                )
                if trace:
                    # spans ride back with the reply; the worker's clock
                    # reading lets the parent re-base them (its receive
                    # time minus this value is the clock offset)
                    payload = tracer.serialize()
                    tracer.drain()
                    reply = reply + (payload, tracer.now())
                replies.put(reply)
            elif kind == "stop":
                try:
                    replies.put((index, "stopped", shard.processed))
                except Exception:
                    # the parent may already be tearing the queues down;
                    # an undeliverable ack must not fail a clean stop
                    pass
                if reader is not None:
                    reader.close()
                return
            else:
                raise ValueError(f"unknown command {kind!r}")
    except BaseException as exc:  # noqa: BLE001 - reported, then re-die
        try:
            replies.put((index, "error", f"{type(exc).__name__}: {exc}"))
            # put() only hands the message to the queue's feeder thread;
            # close+join makes sure it reaches the pipe before we die.
            replies.close()
            replies.join_thread()
        finally:
            # Hard exit: skip inherited atexit/flush machinery so a
            # failing fork child cannot corrupt the parent's streams.
            os._exit(CRASH_EXIT_CODE)
