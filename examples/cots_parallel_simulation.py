#!/usr/bin/env python
"""Head-to-head on the simulated quad-core: naive schemes vs CoTS.

Reproduces the paper's core narrative on one stream:

1. the Shared design collapses under lock contention,
2. Independent Structures pay for every periodic merge,
3. CoTS turns the same contention into cooperation (delegation + bulk
   increments) and scales with thread count,

and prints the delegation telemetry that explains *why*.

    python examples/cots_parallel_simulation.py
"""

from repro.cots import CoTSRunConfig, run_cots
from repro.parallel import (
    SchemeConfig,
    run_independent,
    run_sequential,
    run_shared,
)
from repro.workloads import zipf_stream


def main() -> None:
    stream = zipf_stream(length=20_000, alphabet=20_000, alpha=2.5, seed=5)
    capacity = 200

    print(f"stream: {len(stream)} elements, zipf alpha=2.5, "
          f"{capacity} counters, simulated Intel Q6600 (4 cores)\n")

    sequential = run_sequential(stream, SchemeConfig(capacity=capacity))
    print(f"sequential:          {sequential.seconds * 1e3:8.3f} ms "
          f"({sequential.throughput / 1e6:5.1f}M elem/s)")

    shared = run_shared(stream, SchemeConfig(threads=4, capacity=capacity))
    print(f"shared (4 threads):  {shared.seconds * 1e3:8.3f} ms "
          f"({shared.throughput / 1e6:5.1f}M elem/s)   "
          f"{shared.seconds / sequential.seconds:.1f}x slower than sequential")

    independent = run_independent(
        stream,
        SchemeConfig(threads=4, capacity=capacity),
        merge_every=len(stream) // 100,
    )
    print(f"independent (4 thr): {independent.seconds * 1e3:8.3f} ms "
          f"({independent.throughput / 1e6:5.1f}M elem/s)   "
          f"{independent.extras['merge_rounds']} merges")

    print()
    for threads in (4, 16, 64, 256):
        result = run_cots(
            stream, CoTSRunConfig(threads=threads, capacity=capacity)
        )
        stats = result.extras["stats"]
        bulk = stats.get("bulk_increments", 0)
        absorbed = stats.get("bulk_total", 0)
        print(f"CoTS ({threads:>3} threads): {result.seconds * 1e3:8.3f} ms "
              f"({result.throughput / 1e6:5.1f}M elem/s)   "
              f"{absorbed} updates absorbed into {bulk} bulk increments")

    best = run_cots(stream, CoTSRunConfig(threads=256, capacity=capacity))
    print(f"\nCoTS best vs sequential: "
          f"{sequential.seconds / best.seconds:.2f}x "
          f"(paper's Table 2 reports 2-4x for skewed streams)")

    # the breakdown that Figure 5 plots for the shared design
    print("\nwhere the shared design's time went:")
    for tag, fraction in sorted(
        shared.breakdown().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {tag:10s} {fraction:6.1%}")


if __name__ == "__main__":
    main()
