#!/usr/bin/env python
"""One framework, three algorithms — the §5.3 generalization, running.

The CoTS framework hosts any counter-based algorithm whose frequencies
increase monotonically.  This example runs the same skewed stream
through all three shipped adaptations on the simulated quad-core:

* **Space Saving** — Overwrite requests bound the monitored set;
* **Lossy Counting** — round-boundary Prune requests evict the minimum
  bucket instead (the paper's own example of the generalization);
* **Sample-and-Hold** — admission is decided at the boundary crossing.

All three keep their sequential accuracy contracts *under concurrency*:
Space Saving never underestimates, the other two never overestimate.

    python examples/cots_adapters.py
"""

from repro.core import ExactCounter
from repro.cots import (
    CoTSRunConfig,
    LossyCoTSConfig,
    SampleHoldCoTSConfig,
    run_cots,
    run_lossy_cots,
    run_sample_hold_cots,
)
from repro.workloads import zipf_stream


def main() -> None:
    stream = zipf_stream(12_000, 12_000, 2.0, seed=9)
    exact = ExactCounter()
    exact.process_many(stream)
    threads = 32

    runs = {
        "space-saving": run_cots(
            stream, CoTSRunConfig(threads=threads, capacity=128)
        ),
        "lossy-counting": run_lossy_cots(
            stream, LossyCoTSConfig(threads=threads, epsilon=0.005)
        ),
        "sample-and-hold": run_sample_hold_cots(
            stream,
            SampleHoldCoTSConfig(
                threads=threads, capacity=128, sample_rate=0.05
            ),
        ),
    }

    print(f"{'adapter':16s} {'sim ms':>8s} {'top-3':24s} "
          f"{'hot est/true':>14s}  notes")
    hot, hot_true = exact.top_k(1)[0]
    for name, result in runs.items():
        top3 = [entry.element for entry in result.counter.top_k(3)]
        estimate = result.counter.estimate(hot)
        stats = result.extras["stats"]
        if name == "space-saving":
            note = f"{stats.get('overwrites', 0)} overwrites"
            assert estimate >= hot_true
        elif name == "lossy-counting":
            note = f"{stats.get('pruned', 0)} pruned"
            assert estimate <= hot_true
        else:
            note = f"{result.extras['unsampled']} unsampled"
            assert estimate <= hot_true
        print(f"{name:16s} {result.seconds * 1e3:8.3f} {str(top3):24s} "
              f"{estimate:>6d}/{hot_true:<6d}  {note}")

    print("\nexact top-3:", [e for e, _ in exact.top_k(3)])
    print("every adapter found the same heavy hitters while honouring its "
          "own error contract.")


if __name__ == "__main__":
    main()
