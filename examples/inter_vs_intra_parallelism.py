#!/usr/bin/env python
"""Inter- vs intra-operator parallelism — the paper's §1 framing, measured.

*Inter-operator* parallelism runs independent operators on different
cores: trivial scaling up to the core count, nothing beyond it, and —
crucially — it does nothing for a *single* long-standing query that
must keep up with one fast stream.  *Intra-operator* parallelism (the
paper's subject) splits one operator across threads.

This example measures both on the simulated quad-core:

1. four independent operators run as fast as one (inter-operator win);
2. eight independent operators take twice as long (cores exhausted);
3. one operator over one fast stream: inter-operator parallelism cannot
   help at all, while the CoTS framework speeds it up.

    python examples/inter_vs_intra_parallelism.py
"""

from repro.cots import CoTSRunConfig, run_cots
from repro.parallel import (
    OperatorSpec,
    SchemeConfig,
    run_inter_operator,
    run_sequential,
)
from repro.workloads import zipf_stream


def specs(count: int, length: int = 5_000):
    return [
        OperatorSpec(
            name=f"query-{i}",
            stream=zipf_stream(length, length, 2.0, seed=i),
            capacity=100,
        )
        for i in range(count)
    ]


def main() -> None:
    print("== inter-operator parallelism (independent queries) ==")
    for count in (1, 4, 8):
        result = run_inter_operator(specs(count))
        print(f"  {count} operators on 4 cores: "
              f"{result.seconds * 1e3:8.3f} ms")

    print("\n== one hot operator: only intra-operator parallelism helps ==")
    # note: the CoTS win factor varies ~1.4-2.2x across stream seeds
    # (see EXPERIMENTS.md, deviation 3); this seed shows a typical win
    stream = zipf_stream(20_000, 20_000, 2.5, seed=7)
    sequential = run_sequential(stream, SchemeConfig(capacity=200))
    print(f"  sequential operator:        {sequential.seconds * 1e3:8.3f} ms")
    # inter-operator parallelism gives this single query exactly nothing:
    # it still runs on one core.
    lone = run_inter_operator(
        [OperatorSpec("lone", stream, capacity=200)]
    )
    print(f"  same, as 1-of-N operators:  {lone.seconds * 1e3:8.3f} ms "
          "(no improvement by construction)")
    cots = run_cots(stream, CoTSRunConfig(threads=128, capacity=200))
    print(f"  CoTS, 128 threads:          {cots.seconds * 1e3:8.3f} ms "
          f"({sequential.seconds / cots.seconds:.2f}x vs sequential)")


if __name__ == "__main__":
    main()
