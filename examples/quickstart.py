#!/usr/bin/env python
"""Quickstart: frequency counting, frequent elements and top-k queries.

Runs sequential Space Saving over a synthetic zipfian click stream and
answers the paper's §3.2 query types, then shows the same stream going
through the parallel CoTS framework on the simulated quad-core machine.

    python examples/quickstart.py
"""

from repro.core import (
    ExactCounter,
    FrequentSetQuery,
    PointFrequentQuery,
    SpaceSaving,
    TopKSetQuery,
    answer,
)
from repro.cots import CoTSRunConfig, run_cots
from repro.workloads import zipf_stream


def main() -> None:
    # --- a skewed stream: 50k clicks over a 10k-ad alphabet -------------
    stream = zipf_stream(length=50_000, alphabet=10_000, alpha=2.0, seed=1)

    # --- sequential Space Saving with 100 counters (epsilon = 1%) -------
    counter = SpaceSaving(capacity=100)
    counter.process_many(stream)

    print("== Sequential Space Saving ==")
    print(f"processed {counter.processed} elements, "
          f"monitoring {len(counter)} of them")

    top5 = answer(TopKSetQuery(k=5), counter)
    print("top-5 advertisements:")
    for entry in top5:
        print(f"  ad {entry.element}: ~{entry.count} clicks "
              f"(over-count at most {entry.error})")

    frequent = answer(FrequentSetQuery(phi=0.01), counter)
    print(f"ads above 1% of all clicks: "
          f"{[entry.element for entry in frequent]}")

    hot = top5[0].element
    print(f"point query IsElementFrequent({hot}, 1%): "
          f"{answer(PointFrequentQuery(hot, 0.01), counter)}")

    # --- validate against exact ground truth ----------------------------
    exact = ExactCounter()
    exact.process_many(stream)
    print("exact top-5:", [element for element, _ in exact.top_k(5)])

    # --- the same stream through the CoTS framework ---------------------
    print("\n== CoTS on the simulated quad-core (64 cooperating threads) ==")
    result = run_cots(stream[:10_000], CoTSRunConfig(threads=64, capacity=100))
    print(f"simulated time: {result.seconds * 1e3:.3f} ms "
          f"({result.throughput / 1e6:.1f}M elements/s)")
    stats = result.extras["stats"]
    print(f"delegated elements: {stats.get('delegated_elements', 0)}, "
          f"bulk increments: {stats.get('bulk_increments', 0)}")
    print("CoTS top-3:",
          [entry.element for entry in result.counter.top_k(3)])


if __name__ == "__main__":
    main()
