#!/usr/bin/env python
"""Accuracy shoot-out across the frequency-counting family.

A Cormode-&-Hadjieleftheriou-style comparison (the paper's reference [5])
of every algorithm in this package on the same streams: counter-based
(Space Saving, Lossy Counting, Misra-Gries, Sticky Sampling) and
sketch-based (Count-Min, Count Sketch), measured on

* top-k recall,
* frequent-elements precision/recall at phi = 0.5%,
* average relative error over the true top-50.

    python examples/accuracy_comparison.py
"""

from repro.analysis import (
    average_relative_error,
    frequent_accuracy,
    top_k_accuracy,
)
from repro.core import (
    CountMinSketch,
    CountSketch,
    ExactCounter,
    LossyCounting,
    MisraGries,
    SpaceSaving,
    StickySampling,
)
from repro.workloads import zipf_stream

PHI = 0.005
TOP_K = 20
BUDGET = 200  # counters / heap entries for every algorithm


def build_algorithms():
    return [
        ("SpaceSaving", SpaceSaving(capacity=BUDGET)),
        ("LossyCounting", LossyCounting(epsilon=1.0 / BUDGET)),
        ("MisraGries", MisraGries(k=BUDGET)),
        ("StickySampling",
         StickySampling(support=PHI, epsilon=PHI / 2, seed=1)),
        ("CountMin",
         CountMinSketch(epsilon=1.0 / BUDGET, delta=0.01,
                        track_candidates=BUDGET, seed=1)),
        ("CountSketch",
         CountSketch(width=4 * BUDGET, depth=5,
                     track_candidates=BUDGET, seed=1)),
    ]


def main() -> None:
    header = (f"{'algorithm':15s} {'alpha':>5s} {'topk-recall':>12s} "
              f"{'freq-prec':>10s} {'freq-rec':>9s} {'avg-rel-err':>12s}")
    print(header)
    print("-" * len(header))
    for alpha in (1.1, 1.5, 2.0):
        stream = zipf_stream(60_000, 30_000, alpha, seed=13)
        exact = ExactCounter()
        exact.process_many(stream)
        for name, algo in build_algorithms():
            algo.process_many(stream)
            entries = algo.entries()
            topk = top_k_accuracy(entries, exact, k=TOP_K)
            freq = frequent_accuracy(algo.frequent(PHI), exact, phi=PHI)
            err = average_relative_error(entries, exact, top=50)
            print(f"{name:15s} {alpha:5.1f} {topk.recall:12.2f} "
                  f"{freq.precision:10.2f} {freq.recall:9.2f} {err:12.3f}")
        print()

    print("reading: counter-based techniques hold high recall at a small "
          "memory budget;\nsketches pay with noisier estimates at the same "
          "budget — the trade-off the paper's §2 describes.")


if __name__ == "__main__":
    main()
